//! Criterion bench for paper Fig. 3: per-point online detection latency of
//! every method.
//!
//! The paper's headline efficiency claim is that RL4OASD processes each
//! newly generated point in well under 0.1 ms; the relative ordering
//! (DBTOD fastest, CTSS slowest, GM-VSAE/SAE slower than SD-VSAE/VSAE) is
//! the reproduction target.

use bench_suite::{City, Context, Method};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn per_point(c: &mut Criterion) {
    let ctx = Context::build_light(City::Chengdu);
    // A fixed batch of test trajectories, reused for every method.
    let trajs: Vec<_> = ctx.test.trajectories.iter().take(40).cloned().collect();
    let points: usize = trajs.iter().map(|t| t.len()).sum();

    let mut group = c.benchmark_group("fig3_per_point");
    group.sample_size(10);
    for method in Method::ALL {
        group.bench_function(method.name(), |b| {
            b.iter(|| {
                let mut det = ctx.detector(method);
                let mut acc = 0usize;
                for t in &trajs {
                    acc += det.label_trajectory(black_box(t)).len();
                }
                assert_eq!(acc, points);
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, per_point);
criterion_main!(benches);
