//! Criterion bench for paper Fig. 4: per-trajectory detection latency by
//! trajectory-length group (G1 < 15, G2 15-29, G3 30-44, G4 >= 45).
//!
//! The reproduction target is the scaling *shape*: CTSS diverges with
//! trajectory length (its per-point cost is linear in the reference), the
//! others grow linearly, DBTOD stays cheapest.

use bench_suite::{City, Context, Method};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eval::{group_of_len, LengthGroup};
use std::hint::black_box;

fn per_group(c: &mut Criterion) {
    let ctx = Context::build_light(City::Chengdu);
    let mut group = c.benchmark_group("fig4_per_trajectory");
    group.sample_size(10);
    // Representative fast / learned / similarity / ours.
    for method in [Method::Dbtod, Method::GmVsae, Method::Ctss, Method::Rl4oasd] {
        for g in LengthGroup::ALL {
            let sub: Vec<_> = ctx
                .test
                .trajectories
                .iter()
                .filter(|t| group_of_len(t.len()) == g)
                .take(15)
                .cloned()
                .collect();
            if sub.is_empty() {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(method.name(), g.name()), &sub, |b, sub| {
                b.iter(|| {
                    let mut det = ctx.detector(method);
                    for t in sub {
                        black_box(det.label_trajectory(black_box(t)));
                    }
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, per_group);
criterion_main!(benches);
