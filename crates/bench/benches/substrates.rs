//! Micro-benchmarks of the substrates behind the O(n) complexity analysis
//! (paper §IV-E): one LSTM streaming step + policy decision dominates the
//! per-point cost of RL4OASD; Dijkstra and Viterbi dominate preprocessing.

use criterion::{criterion_group, criterion_main, Criterion};
use mapmatch::{MapMatcher, MatchConfig};
use rnet::{CityBuilder, CityConfig, NodeId};
use std::hint::black_box;
use traj::{Dataset, TrafficConfig, TrafficSimulator};

fn substrates(c: &mut Criterion) {
    let net = CityBuilder::new(CityConfig::chengdu_like()).build();
    let sim_cfg = TrafficConfig {
        num_sd_pairs: 8,
        trajs_per_pair: (40, 60),
        generate_raw: true,
        ..Default::default()
    };
    let sim = TrafficSimulator::new(&net, sim_cfg);
    let generated = sim.generate();
    let train = Dataset::from_generated(&generated);

    c.bench_function("dijkstra_full_city", |b| {
        b.iter(|| {
            let (dist, _) =
                rnet::dijkstra(&net, NodeId(0), f64::INFINITY, |s| net.segment(s).length);
            black_box(dist)
        })
    });

    let matcher = MapMatcher::new(&net, MatchConfig::default());
    let raw = generated.raw[0].clone();
    c.bench_function("viterbi_map_match_one_trajectory", |b| {
        b.iter(|| black_box(matcher.match_trajectory(black_box(&raw))))
    });

    let cfg = rl4oasd::Rl4oasdConfig {
        joint_trajs: 100,
        pretrain_trajs: 100,
        ..Default::default()
    };
    let model = rl4oasd::train(&net, &train, &cfg);
    let t0 = &train.trajectories[0];
    c.bench_function("preprocessor_features_one_trajectory", |b| {
        b.iter(|| black_box(model.preprocessor.features(black_box(t0))))
    });

    c.bench_function("rsrnet_stream_step", |b| {
        let mut stream = model.rsrnet.stream();
        let seg = t0.segments[0];
        b.iter(|| black_box(model.rsrnet.stream_step(&mut stream, black_box(seg), 0)))
    });

    c.bench_function("policy_decision", |b| {
        let mut stream = model.rsrnet.stream();
        let z = model.rsrnet.stream_step(&mut stream, t0.segments[0], 0);
        b.iter(|| {
            let state = model.asdnet.state(black_box(&z), 0);
            black_box(model.asdnet.greedy(&state))
        })
    });

    c.bench_function("rsrnet_train_step_one_trajectory", |b| {
        let mut m = model.clone();
        let feats = model.preprocessor.features(t0);
        b.iter(|| {
            black_box(
                m.rsrnet
                    .train_step(&t0.segments, &feats.nrf, &feats.noisy_labels, 0.01),
            )
        })
    });
}

criterion_group!(benches, substrates);
criterion_main!(benches);
