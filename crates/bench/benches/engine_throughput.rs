//! Criterion bench: stream-engine serving throughput (points/sec) at 1,
//! 100 and 10,000 concurrent sessions, single-engine and sharded.
//!
//! The reproduction target is *scaling shape*, not absolute numbers: the
//! batched LSTM pass amortises the weight-matrix walk across every lane
//! that advanced in a tick, holding per-point cost roughly flat from 1 to
//! 10,000 concurrent sessions even as the aggregate session state
//! outgrows the cache; sharding then multiplies that by the core count
//! (each `ShardedEngine` shard runs its own batched pass on its own
//! worker thread). `cargo run --release -p bench_suite --bin engine`
//! writes the same measurement to `BENCH_engine.json`.

use bench_suite::throughput::drive_interleaved;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rl4oasd::{train, Rl4oasdConfig, ShardedEngine, StreamEngine};
use rnet::{CityBuilder, CityConfig};
use std::hint::black_box;
use std::sync::Arc;
use traj::{Dataset, MappedTrajectory, TrafficConfig, TrafficSimulator};

#[allow(clippy::type_complexity)]
fn setup() -> (
    Arc<rnet::RoadNetwork>,
    Arc<rl4oasd::TrainedModel>,
    Vec<MappedTrajectory>,
) {
    let net = CityBuilder::new(CityConfig::chengdu_like()).build();
    let sim = TrafficSimulator::new(
        &net,
        TrafficConfig {
            num_sd_pairs: 10,
            trajs_per_pair: (50, 80),
            ..TrafficConfig::default()
        },
    );
    let generated = sim.generate();
    let train_set = Dataset::from_generated(&generated);
    let model = train(
        &net,
        &train_set,
        &Rl4oasdConfig {
            joint_trajs: 200,
            pretrain_trajs: 100,
            ..Rl4oasdConfig::default()
        },
    );
    let trajs: Vec<_> = train_set.trajectories.iter().take(200).cloned().collect();
    (Arc::new(net), Arc::new(model), trajs)
}

fn engine_throughput(c: &mut Criterion) {
    let (net, model, trajs) = setup();
    let mut group = c.benchmark_group("engine_points_per_sec");
    group.sample_size(10);
    for sessions in [1usize, 100, 10_000] {
        let min_points = (sessions as u64 * 20).max(50_000);
        group.bench_with_input(
            BenchmarkId::new("sessions", sessions),
            &sessions,
            |b, &sessions| {
                b.iter(|| {
                    let mut engine = StreamEngine::new(Arc::clone(&model), Arc::clone(&net));
                    let sample = drive_interleaved(&mut engine, &trajs, sessions, min_points);
                    black_box(sample.points)
                })
            },
        );
        for shards in [2usize, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("sessions_{sessions}_shards"), shards),
                &shards,
                |b, &shards| {
                    b.iter(|| {
                        let mut engine =
                            ShardedEngine::new(Arc::clone(&model), Arc::clone(&net), shards);
                        let sample = drive_interleaved(&mut engine, &trajs, sessions, min_points);
                        black_box(sample.points)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, engine_throughput);
criterion_main!(benches);
