//! Benchmark harness regenerating every table and figure of the RL4OASD
//! paper (see DESIGN.md §5 for the experiment index).
//!
//! The harness builds one [`Context`] per synthetic city — network, traffic
//! simulation, trained RL4OASD model, fitted baselines with dev-set-tuned
//! thresholds — and the experiment modules ([`experiments`], [`figures`])
//! drive the detectors over labelled test sets to produce paper-style
//! reports. Binaries under `src/bin/` are thin wrappers; `repro_all`
//! composes everything into `EXPERIMENTS.md`.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod experiments;
pub mod figures;
pub mod throughput;

use baselines::{
    ctss_engine, dbtod_engine, iboat_engine, sharded_ctss_engine, sharded_dbtod_engine,
    sharded_iboat_engine, Ctss, Dbtod, Iboat, RouteStats, ScoringDetector, Seq2SeqDetector,
    Seq2SeqKind, Thresholded, VsaeConfig,
};
use rl4oasd::{
    train_with_dev, Rl4oasdConfig, Rl4oasdDetector, ShardedEngine, StreamEngine, TrainedModel,
};
use rnet::{CityBuilder, CityConfig, RoadNetwork};
use std::sync::Arc;
use std::time::Instant;
use traj::{Dataset, OnlineDetector, SessionEngine, SessionMux, TrafficConfig, TrafficSimulator};

/// The two evaluation cities (synthetic stand-ins for the paper's datasets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum City {
    /// Chengdu-scale city (~4.9k segments in the paper).
    Chengdu,
    /// Xi'an-scale city (~5.1k segments in the paper).
    Xian,
}

impl City {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            City::Chengdu => "Chengdu-sim",
            City::Xian => "Xian-sim",
        }
    }

    /// Road-network preset.
    pub fn net_config(self) -> CityConfig {
        match self {
            City::Chengdu => CityConfig::chengdu_like(),
            City::Xian => CityConfig::xian_like(),
        }
    }

    /// Traffic preset: Xi'an has fewer, shorter trajectories (paper
    /// Table II / §V-D observes shorter trajectories in Xi'an).
    pub fn traffic_config(self) -> TrafficConfig {
        match self {
            City::Chengdu => TrafficConfig {
                num_sd_pairs: 50,
                trajs_per_pair: (80, 160),
                anomaly_ratio: 0.05,
                min_route_len: 10,
                max_route_len: 70,
                seed: 0xC4E6,
                ..Default::default()
            },
            City::Xian => TrafficConfig {
                num_sd_pairs: 40,
                trajs_per_pair: (70, 140),
                anomaly_ratio: 0.06,
                min_route_len: 8,
                max_route_len: 45,
                seed: 0x71A6,
                ..Default::default()
            },
        }
    }
}

/// The eight detection methods of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// IBOAT \[8\].
    Iboat,
    /// DBTOD \[9\].
    Dbtod,
    /// GM-VSAE \[11\].
    GmVsae,
    /// SD-VSAE \[11\].
    SdVsae,
    /// SAE \[11\].
    Sae,
    /// VSAE \[11\].
    Vsae,
    /// CTSS \[10\].
    Ctss,
    /// This paper.
    Rl4oasd,
}

impl Method {
    /// All methods in the paper's table order.
    pub const ALL: [Method; 8] = [
        Method::Iboat,
        Method::Dbtod,
        Method::GmVsae,
        Method::SdVsae,
        Method::Sae,
        Method::Vsae,
        Method::Ctss,
        Method::Rl4oasd,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Method::Iboat => "IBOAT",
            Method::Dbtod => "DBTOD",
            Method::GmVsae => "GM-VSAE",
            Method::SdVsae => "SD-VSAE",
            Method::Sae => "SAE",
            Method::Vsae => "VSAE",
            Method::Ctss => "CTSS",
            Method::Rl4oasd => "RL4OASD",
        }
    }
}

/// A fully prepared evaluation context for one city.
pub struct Context {
    /// Which city.
    pub city: City,
    /// Road network (shared with serving engines).
    pub net: Arc<RoadNetwork>,
    /// Route families (for test-set generation and case studies).
    pub generated: traj::generator::GeneratedTraffic,
    /// Training corpus (unlabelled).
    pub train: Dataset,
    /// Labelled dev set (threshold tuning, model selection; paper: 100
    /// trajectories).
    pub dev: Dataset,
    /// Labelled test set (anomaly-heavy, like the paper's labelled routes).
    pub test: Dataset,
    /// Trained RL4OASD model (shared with serving engines).
    pub model: Arc<TrainedModel>,
    /// Historical statistics shared by the heuristic baselines.
    pub stats: Arc<RouteStats>,
    /// Trained GM-VSAE model (SD-VSAE reuses it; SAE and VSAE are trained
    /// separately).
    pub gm_vsae: Seq2SeqDetector,
    /// Trained SAE model.
    pub sae: Seq2SeqDetector,
    /// Trained VSAE model.
    pub vsae: Seq2SeqDetector,
    /// Fitted DBTOD weights.
    pub dbtod_weights: [f64; 6],
    /// Dev-tuned thresholds per method (score-based methods only).
    pub thresholds: Thresholds,
    /// Wall-clock seconds spent preparing (per stage).
    pub prep: PrepTimings,
}

/// Dev-set-tuned decision thresholds.
#[derive(Debug, Clone, Copy, Default)]
pub struct Thresholds {
    /// IBOAT threshold on `1 - support`.
    pub iboat: f64,
    /// DBTOD threshold on per-choice NLL.
    pub dbtod: f64,
    /// GM-VSAE threshold on generation NLL.
    pub gm_vsae: f64,
    /// SD-VSAE threshold.
    pub sd_vsae: f64,
    /// SAE threshold.
    pub sae: f64,
    /// VSAE threshold.
    pub vsae: f64,
    /// CTSS threshold on Fréchet deviation (metres).
    pub ctss: f64,
}

/// Preparation timings (used by Table V).
#[derive(Debug, Clone, Copy, Default)]
pub struct PrepTimings {
    /// RL4OASD training seconds.
    pub rl4oasd_train: f64,
    /// Seq2seq baselines training seconds (total).
    pub vsae_train: f64,
}

impl Context {
    /// Builds the full context for a city (simulation, training, tuning).
    pub fn build(city: City) -> Self {
        Self::build_custom(
            city,
            &Rl4oasdConfig::default(),
            city.traffic_config(),
            VsaeConfig::default(),
        )
    }

    /// Builds with a custom RL4OASD configuration.
    pub fn build_with(city: City, config: &Rl4oasdConfig) -> Self {
        Self::build_custom(city, config, city.traffic_config(), VsaeConfig::default())
    }

    /// Lightweight context for latency benchmarks: full-size road network
    /// and model dimensions (what latency depends on) but reduced corpus
    /// and training budgets (what latency does not depend on).
    pub fn build_light(city: City) -> Self {
        let traffic = TrafficConfig {
            num_sd_pairs: 12,
            trajs_per_pair: (60, 100),
            ..city.traffic_config()
        };
        let config = Rl4oasdConfig {
            joint_trajs: 300,
            ..Default::default()
        };
        let vsae = VsaeConfig {
            epochs: 1,
            max_train: 400,
            ..Default::default()
        };
        Self::build_custom(city, &config, traffic, vsae)
    }

    /// Fully customisable build.
    pub fn build_custom(
        city: City,
        config: &Rl4oasdConfig,
        traffic: TrafficConfig,
        vsae_config: VsaeConfig,
    ) -> Self {
        let net = CityBuilder::new(city.net_config()).build();
        let sim = TrafficSimulator::new(&net, traffic);
        let generated = sim.generate();
        let train = Dataset::from_generated(&generated);
        // Dev: ~100 labelled trajectories (paper §V-A); test: anomaly-heavy
        // labelled set sharing the route families.
        let dev_data = sim.generate_from_pairs(&generated.pairs, (2, 3), 0.35, 0xDE);
        let dev = Dataset::from_generated(&dev_data);
        let test_data = sim.generate_from_pairs(&generated.pairs, (8, 12), 0.40, 0x7E57);
        let test = Dataset::from_generated(&test_data);

        let t0 = Instant::now();
        let (model, _) = train_with_dev(&net, &train, Some(&dev), config);
        let rl4oasd_train = t0.elapsed().as_secs_f64();

        let stats = Arc::new(RouteStats::fit(&train));

        let t1 = Instant::now();
        let vocab = net.num_segments();
        let mut gm_vsae = Seq2SeqDetector::new(Seq2SeqKind::GmVsae(5), vocab, vsae_config.clone());
        gm_vsae.fit(&train);
        let mut sae = Seq2SeqDetector::new(Seq2SeqKind::Sae, vocab, vsae_config.clone());
        sae.fit(&train);
        let mut vsae = Seq2SeqDetector::new(Seq2SeqKind::Vsae, vocab, vsae_config);
        vsae.fit(&train);
        let vsae_train = t1.elapsed().as_secs_f64();

        let mut dbtod = Dbtod::new(&net, Arc::clone(&stats));
        dbtod.fit(&train, 2, 0.05);
        let dbtod_weights = dbtod.weights;

        let mut ctx = Context {
            city,
            net: Arc::new(net),
            generated,
            train,
            dev,
            test,
            model: Arc::new(model),
            stats,
            gm_vsae,
            sae,
            vsae,
            dbtod_weights,
            thresholds: Thresholds::default(),
            prep: PrepTimings {
                rl4oasd_train,
                vsae_train,
            },
        };
        ctx.thresholds = ctx.tune_thresholds();
        ctx
    }

    /// Tunes every score-based method's threshold on the dev set.
    fn tune_thresholds(&mut self) -> Thresholds {
        let truths: Vec<Vec<u8>> = self
            .dev
            .trajectories
            .iter()
            .map(|t| self.dev.truth(t.id).expect("dev is labelled").to_vec())
            .collect();
        let tune = |scores: Vec<Vec<f64>>| -> f64 {
            // Replace infinities with a large finite ceiling for tuning.
            let scores: Vec<Vec<f64>> = scores
                .into_iter()
                .map(|tr| tr.into_iter().map(|s| s.min(1e6)).collect())
                .collect();
            eval::tune_threshold(&scores, &truths, 60).0
        };
        let dev = &self.dev;
        let score_all = |d: &mut dyn ScoringDetector| -> Vec<Vec<f64>> {
            dev.trajectories
                .iter()
                .map(|t| d.score_trajectory(t))
                .collect()
        };
        let mut iboat = Iboat::new(Arc::clone(&self.stats), 0.05);
        let iboat_thr = tune(score_all(&mut iboat));
        let mut dbtod = Dbtod::new(&self.net, Arc::clone(&self.stats));
        dbtod.weights = self.dbtod_weights;
        let dbtod_thr = tune(score_all(&mut dbtod));
        let mut ctss = Ctss::new(&self.net, Arc::clone(&self.stats));
        let ctss_thr = tune(score_all(&mut ctss));
        let gm_thr = tune(score_all(&mut self.gm_vsae));
        let mut sd = self.sd_vsae();
        let sd_thr = tune(score_all(&mut sd));
        let sae_thr = tune(score_all(&mut self.sae));
        let vsae_thr = tune(score_all(&mut self.vsae));
        Thresholds {
            iboat: iboat_thr,
            dbtod: dbtod_thr,
            gm_vsae: gm_thr,
            sd_vsae: sd_thr,
            sae: sae_thr,
            vsae: vsae_thr,
            ctss: ctss_thr,
        }
    }

    /// SD-VSAE is the fast inference variant of the trained GM-VSAE model.
    pub fn sd_vsae(&self) -> Seq2SeqDetector {
        let mut clone = Seq2SeqDetector::new(
            Seq2SeqKind::SdVsae(5),
            self.net.num_segments(),
            VsaeConfig::default(),
        );
        clone.copy_weights_from(&self.gm_vsae);
        clone
    }

    /// Ground-truth labels of the test set, aligned with its trajectories.
    pub fn test_truths(&self) -> Vec<Vec<u8>> {
        self.test
            .trajectories
            .iter()
            .map(|t| self.test.truth(t.id).expect("test is labelled").to_vec())
            .collect()
    }

    /// Runs a method over the test set, returning `(labels per trajectory,
    /// total points, total seconds)`.
    pub fn run_method(&self, method: Method) -> (Vec<Vec<u8>>, usize, f64) {
        self.run_method_on(method, &self.test)
    }

    /// Runs a method over an arbitrary dataset.
    pub fn run_method_on(&self, method: Method, data: &Dataset) -> (Vec<Vec<u8>>, usize, f64) {
        let mut detector: Box<dyn OnlineDetector + '_> = self.detector(method);
        let mut outputs = Vec::with_capacity(data.len());
        let mut points = 0usize;
        let t0 = Instant::now();
        for t in &data.trajectories {
            points += t.len();
            outputs.push(detector.label_trajectory(t));
        }
        (outputs, points, t0.elapsed().as_secs_f64())
    }

    /// Constructs a fleet-scale session engine for a method (the
    /// [`SessionEngine`] serving API: `open`/`observe`/`close` over many
    /// concurrent trips).
    ///
    /// RL4OASD multiplexes every session over the shared `Arc` model via
    /// [`StreamEngine`], with batched nn ticks; IBOAT/DBTOD/CTSS multiplex
    /// cheap per-session detector values over their shared fitted
    /// statistics; the seq2seq family falls back to a generic mux whose
    /// per-session values copy the trained weights (correct, but heavy —
    /// open few sessions for those).
    pub fn engine(&self, method: Method) -> Box<dyn SessionEngine + '_> {
        match method {
            Method::Iboat => Box::new(iboat_engine(
                Arc::clone(&self.stats),
                0.05,
                self.thresholds.iboat,
            )),
            Method::Dbtod => Box::new(dbtod_engine(
                &self.net,
                Arc::clone(&self.stats),
                self.dbtod_weights,
                self.thresholds.dbtod,
            )),
            Method::Ctss => Box::new(ctss_engine(
                &self.net,
                Arc::clone(&self.stats),
                self.thresholds.ctss,
            )),
            Method::GmVsae | Method::SdVsae | Method::Sae | Method::Vsae => {
                Box::new(SessionMux::named(method.name(), move || {
                    self.detector(method)
                }))
            }
            Method::Rl4oasd => Box::new(StreamEngine::new(
                Arc::clone(&self.model),
                Arc::clone(&self.net),
            )),
        }
    }

    /// Constructs a shard-parallel session engine for a method: `shards`
    /// independent engines behind the shared fitted state, sessions hashed
    /// to shards, ticks driven across scoped worker threads (one per shard)
    /// — labels byte-identical to [`Context::engine`] for every shard
    /// count.
    ///
    /// The seq2seq family multiplexes heavyweight per-session detectors
    /// (see [`Context::engine`]); until its shared-weights session split
    /// lands (ROADMAP), those methods fall back to the unsharded mux.
    pub fn sharded_engine(&self, method: Method, shards: usize) -> Box<dyn SessionEngine + '_> {
        match method {
            Method::Iboat => Box::new(sharded_iboat_engine(
                Arc::clone(&self.stats),
                0.05,
                self.thresholds.iboat,
                shards,
            )),
            Method::Dbtod => Box::new(sharded_dbtod_engine(
                &self.net,
                Arc::clone(&self.stats),
                self.dbtod_weights,
                self.thresholds.dbtod,
                shards,
            )),
            Method::Ctss => Box::new(sharded_ctss_engine(
                &self.net,
                Arc::clone(&self.stats),
                self.thresholds.ctss,
                shards,
            )),
            Method::GmVsae | Method::SdVsae | Method::Sae | Method::Vsae => {
                // Loud, not silent: results for these rows must not be
                // mistaken for sharded numbers.
                eprintln!(
                    "warning: {} has no sharded engine yet (seq2seq session split pending); \
                     serving unsharded",
                    method.name()
                );
                self.engine(method)
            }
            Method::Rl4oasd => Box::new(ShardedEngine::new(
                Arc::clone(&self.model),
                Arc::clone(&self.net),
                shards,
            )),
        }
    }

    /// Constructs a ready-to-run detector for a method.
    pub fn detector(&self, method: Method) -> Box<dyn OnlineDetector + '_> {
        match method {
            Method::Iboat => Box::new(Thresholded::new(
                Iboat::new(Arc::clone(&self.stats), 0.05),
                self.thresholds.iboat,
            )),
            Method::Dbtod => {
                let mut d = Dbtod::new(&self.net, Arc::clone(&self.stats));
                d.weights = self.dbtod_weights;
                Box::new(Thresholded::new(d, self.thresholds.dbtod))
            }
            Method::Ctss => Box::new(Thresholded::new(
                Ctss::new(&self.net, Arc::clone(&self.stats)),
                self.thresholds.ctss,
            )),
            Method::GmVsae => {
                let mut d = Seq2SeqDetector::new(
                    Seq2SeqKind::GmVsae(5),
                    self.net.num_segments(),
                    VsaeConfig::default(),
                );
                d.copy_weights_from(&self.gm_vsae);
                Box::new(Thresholded::new(d, self.thresholds.gm_vsae))
            }
            Method::SdVsae => Box::new(Thresholded::new(self.sd_vsae(), self.thresholds.sd_vsae)),
            Method::Sae => {
                let mut d = Seq2SeqDetector::new(
                    Seq2SeqKind::Sae,
                    self.net.num_segments(),
                    VsaeConfig::default(),
                );
                d.copy_weights_from(&self.sae);
                Box::new(Thresholded::new(d, self.thresholds.sae))
            }
            Method::Vsae => {
                let mut d = Seq2SeqDetector::new(
                    Seq2SeqKind::Vsae,
                    self.net.num_segments(),
                    VsaeConfig::default(),
                );
                d.copy_weights_from(&self.vsae);
                Box::new(Thresholded::new(d, self.thresholds.vsae))
            }
            Method::Rl4oasd => Box::new(Rl4oasdDetector::new(&self.model, &self.net)),
        }
    }
}
