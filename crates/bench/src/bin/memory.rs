//! `memory` — cost of the two-tier session store (hot slab + frozen-state
//! arena), written to `BENCH_memory.json`.
//!
//! The serving engines keep every open session resident by default; the
//! memory tier ([`rl4oasd::HibernationConfig`]) freezes idle sessions into
//! a compact delta-encoded blob in a bump arena and thaws them
//! transparently on their next event. This bin measures what that buys and
//! what it costs, per fleet size (10k and 1M open sessions) and serving
//! width (`hidden_dim` 32 and 64):
//!
//! * `resident` rows — hibernation off: bytes to keep the whole fleet hot,
//!   and steady-state throughput over a small working set;
//! * `hibernate` rows — the whole fleet frozen except the working set:
//!   frozen bytes/session (the cold-tier unit cost), freeze ratio,
//!   rehydrate latency (p50/p99 of an event landing on a frozen session),
//!   and the same working-set throughput with periodic idle sweeps on.
//!
//! Headline: a million open sessions in well under 1 GB total. The
//! invariant half of the story — freeze/thaw never changes any label —
//! is `tests/hibernate.rs`; this bin measures the tier, not correctness.
//!
//! ```text
//! cargo run --release -p bench_suite --bin memory [-- out.json]
//! ```

use obs::{Obs, ObsConfig, Snapshot};
use rl4oasd::{train, HibernationConfig, Rl4oasdConfig, StreamEngine, TrainedModel};
use rnet::{CityBuilder, CityConfig, RoadNetwork};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;
use traj::{Dataset, MappedTrajectory, SessionEngine, SessionId, TrafficConfig, TrafficSimulator};

#[derive(Serialize)]
struct Row {
    mode: String,
    hidden_dim: usize,
    sessions: usize,
    events_per_session: usize,
    resident_sessions: u64,
    frozen_sessions: u64,
    freeze_ratio: f64,
    resident_bytes: u64,
    frozen_bytes: u64,
    frozen_footprint_bytes: u64,
    /// Hot tier + cold-tier footprint: the whole session store.
    total_session_bytes: u64,
    bytes_per_frozen_session: f64,
    rehydrate_p50_us: f64,
    rehydrate_p99_us: f64,
    throughput_points_per_sec: f64,
}

#[derive(Serialize)]
struct Report {
    bench: String,
    city: String,
    host_cores: usize,
    working_set: usize,
    throughput_ticks: usize,
    rehydrate_samples: usize,
    /// Final telemetry snapshot of the last hibernate scenario
    /// (sweep spans + tier gauges included).
    obs: Snapshot,
    results: Vec<Row>,
}

/// Sessions that stay hot during the throughput phase.
const WORKING_SET: usize = 2048;
const THROUGHPUT_TICKS: usize = 50;
const REHYDRATE_SAMPLES: usize = 2000;

/// Opens `sessions` sessions and advances each through a short event
/// prefix (so the frozen blobs carry real stream state and labels), in
/// ticks of distinct sessions so the batched kernels apply.
fn populate(
    engine: &mut StreamEngine,
    trajs: &[MappedTrajectory],
    sessions: usize,
    events_per_session: usize,
) -> Vec<SessionId> {
    let handles: Vec<SessionId> = (0..sessions)
        .map(|i| {
            let t = &trajs[i % trajs.len()];
            engine.open(t.sd_pair().expect("non-empty"), t.start_time)
        })
        .collect();
    let mut out = Vec::new();
    let mut events = Vec::new();
    for chunk in (0..sessions).collect::<Vec<_>>().chunks(8192) {
        for e in 0..events_per_session {
            events.clear();
            events.extend(chunk.iter().map(|&i| {
                let t = &trajs[i % trajs.len()];
                (handles[i], t.segments[e % t.len()])
            }));
            engine.observe_batch(&events, &mut out);
        }
    }
    handles
}

/// Steady-state drive: `WORKING_SET` sessions each get one event per tick
/// for `THROUGHPUT_TICKS` ticks; everything else stays idle.
fn throughput(
    engine: &mut StreamEngine,
    trajs: &[MappedTrajectory],
    handles: &[SessionId],
    events_per_session: usize,
) -> f64 {
    let w = WORKING_SET.min(handles.len());
    let mut out = Vec::new();
    let mut events = Vec::with_capacity(w);
    let t0 = Instant::now();
    for tick in 0..THROUGHPUT_TICKS {
        events.clear();
        events.extend((0..w).map(|i| {
            let t = &trajs[i % trajs.len()];
            (
                handles[i],
                t.segments[(events_per_session + tick) % t.len()],
            )
        }));
        engine.observe_batch(&events, &mut out);
    }
    (w * THROUGHPUT_TICKS) as f64 / t0.elapsed().as_secs_f64().max(1e-12)
}

fn scenario(
    model: &Arc<TrainedModel>,
    net: &Arc<RoadNetwork>,
    trajs: &[MappedTrajectory],
    hidden_dim: usize,
    sessions: usize,
) -> (Vec<Row>, Snapshot) {
    // Keep the populate phase affordable at a million sessions; smaller
    // fleets get a longer prefix so label RLE has real runs to encode.
    let events_per_session = if sessions >= 100_000 { 1 } else { 3 };
    let mut rows = Vec::new();

    // One telemetry spine per scenario (small rings so the embedded
    // snapshot stays a readable size in the JSON).
    let obs = Obs::new(ObsConfig {
        enabled: true,
        event_capacity: 64,
        span_capacity: 64,
        sample_capacity: 64,
    });
    for mode in ["resident", "hibernate"] {
        let mut engine = StreamEngine::new(Arc::clone(model), Arc::clone(net)).with_obs(&obs, 0);
        let handles = populate(&mut engine, trajs, sessions, events_per_session);

        let (mut rehydrate_p50_us, mut rehydrate_p99_us) = (0.0, 0.0);
        if mode == "hibernate" {
            // Freeze the entire fleet at one boundary, then disable the
            // policy so the latency probe measures exactly one thaw per
            // event (no sweeps interleaved with the measurement).
            engine.set_hibernation(Some(HibernationConfig::freeze_every_tick()));
            engine.maintain();
            engine.set_hibernation(None);

            let step = (sessions / REHYDRATE_SAMPLES).max(1);
            let mut lat_us: Vec<f64> = handles
                .iter()
                .step_by(step)
                .take(REHYDRATE_SAMPLES)
                .map(|&h| {
                    let seg = trajs[0].segments[0];
                    let t0 = Instant::now();
                    engine.observe(h, seg);
                    t0.elapsed().as_secs_f64() * 1e6
                })
                .collect();
            lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let pick = |q: f64| lat_us[((lat_us.len() - 1) as f64 * q) as usize];
            rehydrate_p50_us = pick(0.50);
            rehydrate_p99_us = pick(0.99);

            // Re-freeze the probed sessions so the gauges below describe
            // the idle fleet, then leave a production-ish policy on for
            // the throughput phase (sweeps included in the measured cost).
            engine.set_hibernation(Some(HibernationConfig::freeze_every_tick()));
            engine.maintain();
            engine.set_hibernation(Some(HibernationConfig {
                idle_ticks: 8,
                sweep_every: 32,
            }));
        }

        let stats = engine.stats();
        let points_per_sec = throughput(&mut engine, trajs, &handles, events_per_session);

        rows.push(Row {
            mode: mode.to_string(),
            hidden_dim,
            sessions,
            events_per_session,
            resident_sessions: stats.resident_sessions,
            frozen_sessions: stats.frozen_sessions,
            freeze_ratio: stats.frozen_sessions as f64 / sessions as f64,
            resident_bytes: stats.resident_bytes,
            frozen_bytes: stats.frozen_bytes,
            frozen_footprint_bytes: stats.frozen_footprint_bytes,
            total_session_bytes: stats.resident_bytes + stats.frozen_footprint_bytes,
            bytes_per_frozen_session: stats.frozen_bytes as f64
                / (stats.frozen_sessions as f64).max(1.0),
            rehydrate_p50_us,
            rehydrate_p99_us,
            throughput_points_per_sec: points_per_sec,
        });
        let row = rows.last().unwrap();
        eprintln!(
            "hidden {:>3} | {:>9} sessions | {:>9}: {:>6.1} MB total ({:>5.1}% frozen, {:>6.1} B/frozen) | \
             thaw p50 {:>6.2}us p99 {:>6.2}us | {:>9.0} points/sec",
            hidden_dim,
            sessions,
            row.mode,
            row.total_session_bytes as f64 / 1e6,
            row.freeze_ratio * 100.0,
            row.bytes_per_frozen_session,
            row.rehydrate_p50_us,
            row.rehydrate_p99_us,
            row.throughput_points_per_sec,
        );
        // Refresh the mirrored gauges so the snapshot describes the
        // fleet as the throughput phase left it.
        let _ = engine.stats();
    }
    (rows, obs.snapshot())
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_memory.json".to_string());

    eprintln!("building city + training serving models (one-time setup)...");
    let net = CityBuilder::new(CityConfig::chengdu_like()).build();
    let sim = TrafficSimulator::new(
        &net,
        TrafficConfig {
            num_sd_pairs: 10,
            trajs_per_pair: (50, 80),
            ..TrafficConfig::default()
        },
    );
    let train_set = Dataset::from_generated(&sim.generate());
    let trajs: Vec<MappedTrajectory> = train_set
        .trajectories
        .iter()
        .filter(|t| !t.is_empty())
        .take(200)
        .cloned()
        .collect();
    let net = Arc::new(net);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut results = Vec::new();
    let mut snapshot = Snapshot::default();
    // Sweep the serving width: hidden 64 is the default serving config;
    // hidden 32 is the compact config the 1M-session headline quotes.
    for hidden_dim in [32usize, 64] {
        let config = Rl4oasdConfig {
            hidden_dim,
            embed_dim: hidden_dim,
            pretrain_trajs: 60,
            joint_trajs: 120,
            ..Rl4oasdConfig::default()
        };
        let model = Arc::new(train(&net, &train_set, &config));
        model.packed();
        for sessions in [10_000usize, 1_000_000] {
            let (rows, snap) = scenario(&model, &net, &trajs, hidden_dim, sessions);
            results.extend(rows);
            snapshot = snap;
        }
    }

    // Headline guard: the compact serving config must fit a million open
    // sessions comfortably under a gigabyte with the cold tier on.
    let headline = results
        .iter()
        .find(|r| r.mode == "hibernate" && r.sessions == 1_000_000 && r.hidden_dim == 32)
        .expect("headline row present");
    eprintln!(
        "headline: 1M sessions @ hidden 32 = {:.1} MB total, {:.1} B per frozen session",
        headline.total_session_bytes as f64 / 1e6,
        headline.bytes_per_frozen_session,
    );

    let report = Report {
        bench: "session_memory_tier".to_string(),
        city: "Chengdu-sim".to_string(),
        host_cores,
        working_set: WORKING_SET,
        throughput_ticks: THROUGHPUT_TICKS,
        rehydrate_samples: REHYDRATE_SAMPLES,
        obs: snapshot,
        results,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out_path, json).expect("write BENCH_memory.json");
    eprintln!("wrote {out_path}");
}
