//! Regenerates Table V (preprocessing and training time vs data size).
use bench_suite::{experiments, City};
use rl4oasd::Rl4oasdConfig;

fn main() {
    let sizes = [1000, 2000, 3000, 4000, 5000];
    println!(
        "{}",
        experiments::table5(City::Chengdu, &sizes, &Rl4oasdConfig::default())
    );
}
