//! Regenerates Figure 6 (detection in varying traffic conditions).
use bench_suite::{figures, City};
use rl4oasd::Rl4oasdConfig;

fn main() {
    let setup = figures::drift_setup(City::Chengdu);
    let xis = [1, 2, 3, 4, 6, 8, 12, 24];
    println!("{}", figures::fig6(&setup, &Rl4oasdConfig::default(), &xis));
}
