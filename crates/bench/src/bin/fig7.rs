//! Regenerates Figure 7 (concept-drift case study).
use bench_suite::{figures, City};
use rl4oasd::Rl4oasdConfig;

fn main() {
    let setup = figures::drift_setup(City::Chengdu);
    println!("{}", figures::fig7(&setup, &Rl4oasdConfig::default()));
}
