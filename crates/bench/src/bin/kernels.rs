//! `kernels` — micro-GEMM kernel layer benchmark, written to
//! `BENCH_kernels.json`.
//!
//! Measures ns/op and GFLOP/s of the vectorized kernel layer
//! (`nn::ops::kernels`) against the seed's scalar implementations
//! (`nn::ops::kernels::reference`) for the three inference-hot-path
//! shapes:
//!
//! * `matvec` — one `dims × dims` matrix–vector product (scalar session
//!   ticks, per-point policy/classifier heads);
//! * `matvec_batch` — the engine's batched tick over `batch` lanes on raw
//!   row-major weights;
//! * `gemm_micro` — the same batched shape on a [`nn::PackedWeights`]
//!   matrix (row-padded layout, the form every serving engine holds via
//!   `TrainedModel::packed`).
//!
//! Sweeps dims {64, 128, 256} × batch {1, 8, 64, 256} (batch applies to
//! the batched ops; `matvec` rows carry batch 1). The `speedup` column is
//! `ns_old / ns_new` per row. FLOP count per op is `2 · rows · cols ·
//! batch` (one multiply + one add per matrix element per lane).
//!
//! ```text
//! cargo run --release -p bench_suite --bin kernels [-- out.json]
//! ```

use nn::ops::kernels::{self, reference};
use nn::PackedWeights;
use obs::{names, Obs, ObsConfig, Snapshot};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Row {
    op: String,
    rows: usize,
    cols: usize,
    batch: usize,
    ns_old: f64,
    ns_new: f64,
    gflops_old: f64,
    gflops_new: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Report {
    bench: String,
    host_cores: usize,
    lanes: usize,
    /// The measured `ns_new` timings mirrored as `oasd_kernel_nanos`
    /// histograms, labelled `{op, dims, batch}`.
    obs: Snapshot,
    results: Vec<Row>,
}

/// Deterministic pseudo-random fill (no RNG dependency needed for
/// benchmark inputs; values in roughly [-1, 1]).
fn fill(n: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
        })
        .collect()
}

/// Times `f` (which must fully recompute its output each call) and
/// returns mean ns per call, self-calibrating the iteration count to
/// ~80ms of measurement.
fn time_ns(mut f: impl FnMut()) -> f64 {
    // warm up + calibrate
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = t.elapsed();
        if elapsed.as_millis() >= 20 {
            let target = (iters as f64 * 0.08 / elapsed.as_secs_f64()).max(1.0) as u64;
            let t = Instant::now();
            for _ in 0..target {
                f();
            }
            return t.elapsed().as_nanos() as f64 / target as f64;
        }
        iters *= 4;
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut results = Vec::new();

    for dims in [64usize, 128, 256] {
        let (rows, cols) = (dims, dims);
        let w = fill(rows * cols, dims as u64);
        let packed = PackedWeights::pack(&w, rows, cols);

        // -- matvec (batch 1) ------------------------------------------
        {
            let x = fill(cols, 7 + dims as u64);
            let mut y = vec![0.0f32; rows];
            let ns_old = time_ns(|| {
                reference::matvec(
                    std::hint::black_box(&w),
                    rows,
                    cols,
                    std::hint::black_box(&x),
                    &mut y,
                );
                std::hint::black_box(&y);
            });
            let ns_new = time_ns(|| {
                nn::ops::matvec(
                    std::hint::black_box(&w),
                    rows,
                    cols,
                    std::hint::black_box(&x),
                    &mut y,
                );
                std::hint::black_box(&y);
            });
            let flops = (2 * rows * cols) as f64;
            results.push(Row {
                op: "matvec".into(),
                rows,
                cols,
                batch: 1,
                ns_old,
                ns_new,
                gflops_old: flops / ns_old,
                gflops_new: flops / ns_new,
                speedup: ns_old / ns_new,
            });
            eprintln!(
                "matvec        dims {dims:>3}            {:>9.1} -> {:>9.1} ns  ({:.2}x)",
                ns_old,
                ns_new,
                ns_old / ns_new
            );
        }

        // -- matvec_batch and packed gemm_micro ------------------------
        for batch in [1usize, 8, 64, 256] {
            let xs = fill(batch * cols, 31 + (dims + batch) as u64);
            let mut ys = vec![0.0f32; batch * rows];
            let flops = (2 * rows * cols * batch) as f64;

            let ns_old = time_ns(|| {
                reference::matvec_batch(
                    std::hint::black_box(&w),
                    rows,
                    cols,
                    std::hint::black_box(&xs),
                    batch,
                    &mut ys,
                );
                std::hint::black_box(&ys);
            });
            let ns_new = time_ns(|| {
                nn::ops::matvec_batch(
                    std::hint::black_box(&w),
                    rows,
                    cols,
                    std::hint::black_box(&xs),
                    batch,
                    &mut ys,
                );
                std::hint::black_box(&ys);
            });
            results.push(Row {
                op: "matvec_batch".into(),
                rows,
                cols,
                batch,
                ns_old,
                ns_new,
                gflops_old: flops / ns_old,
                gflops_new: flops / ns_new,
                speedup: ns_old / ns_new,
            });
            eprintln!(
                "matvec_batch  dims {dims:>3} batch {batch:>3}  {:>9.1} -> {:>9.1} ns  ({:.2}x)",
                ns_old,
                ns_new,
                ns_old / ns_new
            );

            let ns_packed = time_ns(|| {
                std::hint::black_box(&packed).matvec_batch(
                    std::hint::black_box(&xs),
                    batch,
                    &mut ys,
                );
                std::hint::black_box(&ys);
            });
            results.push(Row {
                op: "gemm_micro".into(),
                rows,
                cols,
                batch,
                ns_old,
                ns_new: ns_packed,
                gflops_old: flops / ns_old,
                gflops_new: flops / ns_packed,
                speedup: ns_old / ns_packed,
            });
            eprintln!(
                "gemm_micro    dims {dims:>3} batch {batch:>3}  {:>9.1} -> {:>9.1} ns  ({:.2}x)",
                ns_old,
                ns_packed,
                ns_old / ns_packed
            );
        }
    }

    // Mirror the measured timings into the telemetry spine so this bin
    // exports the same snapshot shape as the serving-stack bins.
    let obs = Obs::new(ObsConfig {
        enabled: true,
        event_capacity: 16,
        span_capacity: 16,
        sample_capacity: 16,
    });
    for row in &results {
        let dims = row.rows.to_string();
        let batch = row.batch.to_string();
        obs.histogram(
            names::KERNEL_NANOS,
            &[("op", row.op.as_str()), ("dims", &dims), ("batch", &batch)],
        )
        .record_nanos(row.ns_new as u64);
    }

    let report = Report {
        bench: "micro_gemm_kernels".to_string(),
        host_cores,
        lanes: kernels::LANES,
        obs: obs.snapshot(),
        results,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialise report");
    std::fs::write(&out_path, json).expect("write BENCH_kernels.json");
    eprintln!("wrote {out_path}");
}
