//! Regenerates Figure 5 (detour case study with ASCII map).
use bench_suite::{figures, City, Context};

fn main() {
    let ctx = Context::build(City::Chengdu);
    println!("{}", figures::fig5(&ctx));
}
