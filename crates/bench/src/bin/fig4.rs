//! Regenerates Figure 4 (detection scalability by trajectory length).
use bench_suite::{figures, City, Context};

fn main() {
    for city in [City::Chengdu, City::Xian] {
        let ctx = Context::build(city);
        println!("{}", figures::fig4(&ctx));
    }
}
