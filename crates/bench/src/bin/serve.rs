//! `serve` — over-the-wire serving throughput + latency, written to
//! `BENCH_serve.json`.
//!
//! Stands up a loopback `oasd-serve` server (wire + ops listeners over
//! the ingest front door) and drives it with the serve crate's load
//! generator: `connections` concurrent TCP clients, each multiplexing
//! `sessions_per_conn` trip sessions, each session streaming
//! `points_per_session` road-segment events. Reported per row: sustained
//! points/sec **and p50/p99 submit→label latency measured at the
//! client** — the full round trip through encode → TCP → decode →
//! ingress queue → micro-batch flush → label outbox → TCP → decode, i.e.
//! what a remote producer actually experiences, unlike
//! `BENCH_ingest.json`'s in-process histogram.
//!
//! The client pipelines with a bounded window: each session keeps at
//! most 8 submits in flight (draining non-blockingly between sends and
//! blocking when the window fills), so the latency percentiles measure
//! submit→label under sustained load as a producer with finite
//! buffering experiences it — not unbounded queue depth.
//!
//! ```text
//! cargo run --release -p bench_suite --bin serve [-- out.json]
//! ```

use obs::{Obs, ObsConfig, Snapshot};
use rl4oasd::{train, Rl4oasdConfig};
use rnet::{CityBuilder, CityConfig};
use serde::Serialize;
use serve::{run_load, LoadSpec, Server, ServerConfig};
use std::sync::Arc;
use std::time::Duration;
use traj::{Dataset, FlushPolicy, IngestConfig, TrafficConfig, TrafficSimulator};

#[derive(Serialize)]
struct Row {
    connections: usize,
    sessions_per_conn: usize,
    sessions: u64,
    points_per_session: usize,
    shards: usize,
    labels_streamed: u64,
    seconds: f64,
    points_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    mean_us: f64,
    faults: u64,
    opens_rejected: u64,
    accounting_exact: bool,
}

#[derive(Serialize)]
struct Report {
    bench: String,
    city: String,
    host_cores: usize,
    max_batch: usize,
    max_delay_us: u64,
    queue_capacity: usize,
    /// Final telemetry snapshot of the largest row (serve counters +
    /// ingest histograms).
    obs: Snapshot,
    results: Vec<Row>,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    eprintln!("building city + training model (one-time setup)...");
    let net = CityBuilder::new(CityConfig::chengdu_like()).build();
    let sim = TrafficSimulator::new(
        &net,
        TrafficConfig {
            num_sd_pairs: 10,
            trajs_per_pair: (50, 80),
            ..TrafficConfig::default()
        },
    );
    let train_set = Dataset::from_generated(&sim.generate());
    let config = Rl4oasdConfig {
        joint_trajs: 200,
        pretrain_trajs: 100,
        ..Rl4oasdConfig::default()
    };
    let model = Arc::new(train(&net, &train_set, &config));
    let net = Arc::new(net);
    let num_segments = net.num_segments() as u32;
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let flush = FlushPolicy::new(128, Duration::from_millis(1));
    let queue_capacity = 512;
    // Small rings keep the embedded snapshot a readable size in the JSON.
    let obs_rings = ObsConfig {
        enabled: true,
        event_capacity: 64,
        span_capacity: 64,
        sample_capacity: 64,
    };

    let mut results = Vec::new();
    let mut snapshot = Snapshot::default();
    for (connections, sessions_per_conn, shards) in [(1, 25, 1), (4, 25, 1), (4, 25, 4), (8, 50, 4)]
    {
        // Fresh server (and telemetry) per row so counters don't bleed
        // across configurations.
        let server = Server::start(
            Arc::clone(&model),
            Arc::clone(&net),
            ServerConfig {
                shards,
                ingest: IngestConfig {
                    flush,
                    queue_capacity,
                    obs: Obs::new(obs_rings.clone()),
                    ..IngestConfig::default()
                },
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback serve listeners");
        let points_per_session = 60;
        let load = run_load(
            server.wire_addr(),
            LoadSpec {
                connections,
                sessions_per_conn,
                points_per_session,
                tenant: 0,
                num_segments,
            },
        );
        let report = server.shutdown();
        let stats = &report.ingest;
        let accounting_exact =
            stats.submitted == stats.flushed_events + stats.shed_events + stats.quarantined_events;
        snapshot = report.obs;

        let seconds = load.elapsed.as_secs_f64();
        let us = |q: f64| load.latency.percentile(q).as_secs_f64() * 1e6;
        let row = Row {
            connections,
            sessions_per_conn,
            sessions: load.sessions_opened,
            points_per_session,
            shards,
            labels_streamed: load.labels_streamed,
            seconds,
            points_per_sec: load.labels_streamed as f64 / seconds.max(1e-12),
            p50_us: us(0.50),
            p99_us: us(0.99),
            mean_us: load.latency.mean().as_secs_f64() * 1e6,
            faults: load.faults,
            opens_rejected: load.opens_rejected,
            accounting_exact,
        };
        eprintln!(
            "{:>2} conns x {:>3} sessions x {} shards: {:>7} labels in {:>6.2}s = \
             {:>8.0} points/sec | wire p50 {:>7.0}us p99 {:>7.0}us | accounting {}",
            row.connections,
            row.sessions_per_conn,
            row.shards,
            row.labels_streamed,
            row.seconds,
            row.points_per_sec,
            row.p50_us,
            row.p99_us,
            if row.accounting_exact {
                "exact"
            } else {
                "BROKEN"
            },
        );
        assert!(row.accounting_exact, "serve accounting broke");
        assert_eq!(row.faults, 0, "unexpected wire faults");
        results.push(row);
    }

    let report = Report {
        bench: "serve_wire".to_string(),
        city: "Chengdu-sim".to_string(),
        host_cores,
        max_batch: flush.max_batch,
        max_delay_us: flush.max_delay.as_micros() as u64,
        queue_capacity,
        obs: snapshot,
        results,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out_path, json).expect("write BENCH_serve.json");
    eprintln!("wrote {out_path}");
}
