//! `hotswap` — serving cost of zero-downtime model hot-swap, written to
//! `BENCH_hotswap.json`.
//!
//! Drives a live [`rl4oasd::IngestEngine`] with closed-loop producers (the
//! `--bin ingest` workload) while a publisher thread hot-swaps the serving
//! model through [`rl4oasd::SwapModel::swap_model`], and reports sustained
//! points/sec + p50/p99 submit→label latency per mode:
//!
//! * `baseline` — no swaps (the `--bin ingest` numbers for this config);
//! * `swap_Nms` — a prebuilt second model republished every N ms: measures
//!   the pure swap overhead (queue broadcast + flush-boundary apply +
//!   epoch bookkeeping) at an absurdly hot cadence;
//! * `fine_tune_live` — the drift-adaptation closed loop: an
//!   [`rl4oasd::OnlineLearner`] fine-tunes on recorded trips in the
//!   publisher thread and publishes each refreshed snapshot into the
//!   running engine (swap cadence = fine-tune duration).
//!
//! Every row also records how many swaps were applied (per shard) during
//! the run. The invariant half of the story — swaps never change any
//! in-flight session's labels — is `tests/hotswap.rs`; this bin measures
//! that the freedom is close to free.
//!
//! ```text
//! cargo run --release -p bench_suite --bin hotswap [-- out.json]
//! ```

use obs::{Obs, ObsConfig, Snapshot};
use rl4oasd::{
    train, IngestEngine, OnlineLearner, Rl4oasdConfig, StreamEngine, SwapModel, TrainedModel,
};
use rnet::{CityBuilder, CityConfig, RoadNetwork};
use serde::Serialize;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use traj::{
    Dataset, FlushPolicy, IngestConfig, IngestHandle, MappedTrajectory, SubmitError, Subscription,
    TrafficConfig, TrafficSimulator,
};

#[derive(Serialize)]
struct Row {
    mode: String,
    sessions: usize,
    shards: usize,
    producers: usize,
    points: u64,
    seconds: f64,
    points_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    swaps_per_shard: u64,
    queue_full_retries: u64,
}

#[derive(Serialize)]
struct Report {
    bench: String,
    city: String,
    hidden_dim: usize,
    host_cores: usize,
    max_batch: usize,
    max_delay_us: u64,
    /// Final telemetry snapshot of the last row (swap events + spans
    /// included).
    obs: Snapshot,
    results: Vec<Row>,
}

struct Lane {
    session: traj::SessionId,
    sub: Subscription,
    traj: usize,
    pos: usize,
}

fn open_lane(
    handle: &IngestHandle<StreamEngine>,
    trajs: &[MappedTrajectory],
    next_traj: &mut usize,
) -> Lane {
    let ti = *next_traj % trajs.len();
    *next_traj += 1;
    let (session, sub) = loop {
        match handle.open(
            trajs[ti].sd_pair().expect("non-empty"),
            trajs[ti].start_time,
        ) {
            Ok(opened) => break opened,
            Err(SubmitError::QueueFull) => std::thread::yield_now(),
            Err(SubmitError::ShutDown) => panic!("front door closed mid-benchmark"),
            Err(e) => panic!("unexpected open error: {e}"),
        }
    };
    Lane {
        session,
        sub,
        traj: ti,
        pos: 0,
    }
}

/// Closed-loop producer (same shape as `--bin ingest`): `lanes` concurrent
/// trips, one point per lane per round, recycling finished trips.
fn produce(
    handle: IngestHandle<StreamEngine>,
    trajs: Arc<Vec<MappedTrajectory>>,
    lanes: usize,
    first_traj: usize,
    total: Arc<AtomicU64>,
    min_points: u64,
) -> u64 {
    let mut next_traj = first_traj;
    let mut open: Vec<Lane> = (0..lanes)
        .map(|_| open_lane(&handle, &trajs, &mut next_traj))
        .collect();
    let mut retries = 0u64;
    let mut sink = Vec::new();
    while total.load(Ordering::Relaxed) < min_points {
        for lane in open.iter_mut() {
            sink.clear();
            lane.sub.drain_into(&mut sink);
            let segment = trajs[lane.traj].segments[lane.pos];
            loop {
                match handle.submit(lane.session, segment) {
                    Ok(()) => break,
                    Err(SubmitError::QueueFull) => {
                        retries += 1;
                        sink.clear();
                        lane.sub.drain_into(&mut sink);
                        std::thread::yield_now();
                    }
                    Err(SubmitError::ShutDown) => return retries,
                    Err(e) => panic!("unexpected submit error: {e}"),
                }
            }
            total.fetch_add(1, Ordering::Relaxed);
            lane.pos += 1;
            if lane.pos == trajs[lane.traj].len() {
                let closed = std::mem::replace(lane, open_lane(&handle, &trajs, &mut next_traj));
                wait_close(&handle, closed);
            }
        }
    }
    for lane in open {
        wait_close(&handle, lane);
    }
    retries
}

fn wait_close(handle: &IngestHandle<StreamEngine>, lane: Lane) {
    let ticket = loop {
        match handle.close(lane.session) {
            Ok(ticket) => break ticket,
            Err(SubmitError::QueueFull) => std::thread::yield_now(),
            Err(SubmitError::ShutDown) => return,
            Err(e) => panic!("unexpected close error: {e}"),
        }
    };
    ticket.wait().unwrap();
}

/// What the publisher thread does while the producers hammer the engine.
enum Publisher {
    None,
    /// Republish prebuilt models alternately every `period`.
    Alternate {
        period: Duration,
    },
    /// Fine-tune an [`OnlineLearner`] on `recent` and publish each
    /// snapshot as soon as it is ready (cadence = fine-tune duration).
    FineTune {
        recent: Dataset,
    },
}

#[allow(clippy::too_many_arguments)]
fn measure(
    mode: &str,
    v1: &Arc<TrainedModel>,
    v2: &Arc<TrainedModel>,
    net: &Arc<RoadNetwork>,
    trajs: &Arc<Vec<MappedTrajectory>>,
    sessions: usize,
    shards: usize,
    min_points: u64,
    config: IngestConfig,
    publisher: Publisher,
) -> (Row, Snapshot) {
    let engine = IngestEngine::new(Arc::clone(v1), Arc::clone(net), shards, config);
    let producers = sessions.min(4);
    let per = sessions.div_ceil(producers);
    let total = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    let swapper = {
        let handle = engine.handle();
        let stop = Arc::clone(&stop);
        let (v1, v2) = (Arc::clone(v1), Arc::clone(v2));
        let net = Arc::clone(net);
        match publisher {
            Publisher::None => None,
            Publisher::Alternate { period } => Some(std::thread::spawn(move || {
                let mut flip = false;
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(period);
                    let next = if flip { &v1 } else { &v2 };
                    flip = !flip;
                    if handle.swap_model(Arc::clone(next)).is_err() {
                        break;
                    }
                }
            })),
            Publisher::FineTune { recent } => Some(std::thread::spawn(move || {
                let mut learner = OnlineLearner::new(TrainedModel::clone(&v1));
                while !stop.load(Ordering::Relaxed) {
                    learner.fine_tune(&net, &recent);
                    if handle.swap_model(Arc::new(learner.model.clone())).is_err() {
                        break;
                    }
                }
            })),
        }
    };

    let t0 = Instant::now();
    let joins: Vec<_> = (0..producers)
        .filter_map(|p| {
            let lanes = per.min(sessions.saturating_sub(p * per));
            if lanes == 0 {
                return None;
            }
            let handle = engine.handle();
            let trajs = Arc::clone(trajs);
            let total = Arc::clone(&total);
            Some(std::thread::spawn(move || {
                produce(handle, trajs, lanes, p * 31, total, min_points)
            }))
        })
        .collect();
    let retries: u64 = joins.into_iter().map(|j| j.join().expect("producer")).sum();
    let seconds = t0.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    if let Some(swapper) = swapper {
        swapper.join().expect("publisher thread");
    }
    let report = engine.shutdown();

    let points = report.ingest.submitted;
    let lat = &report.ingest.latency;
    let us = |q: f64| lat.percentile(q).as_secs_f64() * 1e6;
    let row = Row {
        mode: mode.to_string(),
        sessions,
        shards,
        producers,
        points,
        seconds,
        points_per_sec: points as f64 / seconds.max(1e-12),
        p50_us: us(0.50),
        p99_us: us(0.99),
        swaps_per_shard: report.engine.model_swaps / shards as u64,
        queue_full_retries: retries,
    };
    (row, report.obs)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_hotswap.json".to_string());

    eprintln!("building city + training two model generations (one-time setup)...");
    let net = CityBuilder::new(CityConfig::chengdu_like()).build();
    let sim = TrafficSimulator::new(
        &net,
        TrafficConfig {
            num_sd_pairs: 10,
            trajs_per_pair: (50, 80),
            ..TrafficConfig::default()
        },
    );
    let train_set = Dataset::from_generated(&sim.generate());
    let config = Rl4oasdConfig {
        joint_trajs: 200,
        pretrain_trajs: 100,
        ..Rl4oasdConfig::default()
    };
    let v1 = Arc::new(train(&net, &train_set, &config));
    let v2 = Arc::new(train(
        &net,
        &train_set,
        &Rl4oasdConfig {
            seed: config.seed ^ 0x5A11AD,
            ..config.clone()
        },
    ));
    // Pre-pack both generations: the bench measures swap cost, not the
    // one-time packing either model would pay on its first epoch anyway.
    v1.packed();
    v2.packed();
    let trajs: Arc<Vec<MappedTrajectory>> = Arc::new(
        train_set
            .trajectories
            .iter()
            .filter(|t| !t.is_empty())
            .take(200)
            .cloned()
            .collect(),
    );
    // A small "recorded" slice for the live fine-tune mode: big enough to
    // be a real fine-tune, small enough to publish several times per run.
    let recent = train_set.filter(|t| t.id.0 < 40);
    let net = Arc::new(net);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let ingest_config = IngestConfig {
        flush: FlushPolicy::new(128, Duration::from_millis(1)),
        queue_capacity: 512,
        outbox_capacity: 256,
        obs: Obs::disabled(),
    };
    // Small rings keep the embedded snapshot a readable size in the JSON.
    let obs_rings = ObsConfig {
        enabled: true,
        event_capacity: 64,
        span_capacity: 64,
        sample_capacity: 64,
    };

    let sessions = 10_000usize;
    let min_points = 200_000u64;
    let mut results = Vec::new();
    let mut snapshot = Snapshot::default();
    for shards in [1usize, 4] {
        for (mode, publisher) in [
            ("baseline", Publisher::None),
            (
                "swap_50ms",
                Publisher::Alternate {
                    period: Duration::from_millis(50),
                },
            ),
            (
                "fine_tune_live",
                Publisher::FineTune {
                    recent: recent.clone(),
                },
            ),
        ] {
            // Fresh telemetry per row so shard-labelled series don't
            // bleed across configurations.
            let (row, snap) = measure(
                mode,
                &v1,
                &v2,
                &net,
                &trajs,
                sessions,
                shards,
                min_points,
                IngestConfig {
                    obs: Obs::new(obs_rings.clone()),
                    ..ingest_config.clone()
                },
                publisher,
            );
            snapshot = snap;
            eprintln!(
                "{:>15} x {} shards: {:>8} points in {:>7.3}s = {:>9.0} points/sec | \
                 p50 {:>8.0}us p99 {:>8.0}us | {} swaps/shard, {} retries",
                row.mode,
                row.shards,
                row.points,
                row.seconds,
                row.points_per_sec,
                row.p50_us,
                row.p99_us,
                row.swaps_per_shard,
                row.queue_full_retries,
            );
            results.push(row);
        }
    }

    let report = Report {
        bench: "model_hotswap".to_string(),
        city: "Chengdu-sim".to_string(),
        hidden_dim: config.hidden_dim,
        host_cores,
        max_batch: ingest_config.flush.max_batch,
        max_delay_us: ingest_config.flush.max_delay.as_micros() as u64,
        obs: snapshot,
        results,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out_path, json).expect("write BENCH_hotswap.json");
    eprintln!("wrote {out_path}");
}
