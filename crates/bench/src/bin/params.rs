//! Regenerates the parameter study (alpha, delta, D sweeps; §V-C).
use bench_suite::{experiments, City, Context};
use rl4oasd::Rl4oasdConfig;

fn main() {
    let ctx = Context::build(City::Chengdu);
    println!("{}", experiments::params(&ctx, &Rl4oasdConfig::default()));
}
