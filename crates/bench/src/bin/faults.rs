//! `faults` — the fault-injection chaos drill, written to
//! `BENCH_faults.json`.
//!
//! Replays one scenario trace through the **supervised** ingest front door
//! under each fault class ([`scenario::Fault`]) and a seeded mixed plan,
//! next to a fault-free baseline through the same shape. Reported per
//! row: delivered throughput, p50/p99 submit→label latency, labels lost
//! to quarantine, shed/quarantined event accounting, worker restarts,
//! recovery time (MTTR in scenario ticks) and whether degraded-mode
//! admission control engaged.
//!
//! Two invariants are **asserted** on every run, not just reported:
//!
//! * zero loss outside the blast radius — sessions without a terminal
//!   fault must produce labels byte-identical to the baseline replay;
//! * exact accounting — `submitted == flushed + shed + quarantined` after
//!   every drill.
//!
//! ```text
//! cargo run --release -p bench_suite --bin faults [-- [--smoke] [out.json]]
//! ```
//!
//! `--smoke` shrinks to the tiny world and a short trace for CI's chaos
//! step; the full run uses the city-scale preset.

use rl4oasd::Rl4oasdConfig;
use scenario::{
    Backpressure, Driver, EventTrace, Fault, FaultPlan, NetworkKind, RunOutcome, ScenarioRunner,
    ScenarioSpec, World,
};
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};
use traj::FlushPolicy;

#[derive(Serialize)]
struct Row {
    fault_class: String,
    shards: usize,
    queue_capacity: usize,
    sessions: usize,
    delivered: u64,
    events_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    labels_lost: u64,
    quarantined_events: u64,
    shed_events: u64,
    worker_restarts: u64,
    /// Scenario ticks from panic injection to full restart; `None` for
    /// classes that never kill a worker.
    mttr_ticks: Option<u64>,
    degraded_entered: bool,
    seconds: f64,
}

#[derive(Serialize)]
struct Report {
    bench: String,
    mode: String,
    network: String,
    seed: u64,
    ticks: u32,
    arrivals_per_tick: f64,
    shards: usize,
    max_batch: usize,
    max_delay_us: u64,
    queue_capacity: usize,
    host_cores: usize,
    baseline_events_per_sec: f64,
    results: Vec<Row>,
}

/// One drill per fault class: `(class, plan, queue_capacity)`. The
/// degraded-admission drill pairs a long stall with a capacity-1 queue so
/// the rejection streak crosses the degraded watermark (256 consecutive
/// `QueueFull`s at a backoff capped at 2 ms needs a stall of ~400 ms).
fn plans(ticks: u32, seed: u64, queue_capacity: usize) -> Vec<(&'static str, FaultPlan, usize)> {
    let mid = ticks / 3;
    vec![
        ("baseline", FaultPlan::none(), queue_capacity),
        (
            "poison",
            FaultPlan {
                faults: vec![Fault::Poison {
                    at_tick: mid,
                    victims: 3,
                }],
            },
            queue_capacity,
        ),
        (
            "worker_panic",
            FaultPlan {
                faults: vec![Fault::WorkerPanic { at_tick: mid }],
            },
            queue_capacity,
        ),
        (
            "queue_stall",
            FaultPlan {
                faults: vec![Fault::QueueStall {
                    at_tick: mid,
                    millis: 20,
                }],
            },
            queue_capacity,
        ),
        (
            "slow_shard",
            FaultPlan {
                faults: vec![Fault::SlowShard {
                    from_tick: mid,
                    every: 4,
                    micros: 400,
                }],
            },
            queue_capacity,
        ),
        (
            "degraded_admission",
            FaultPlan {
                faults: vec![Fault::QueueStall {
                    at_tick: mid,
                    millis: 600,
                }],
            },
            1,
        ),
        ("seeded_mix", FaultPlan::seeded(seed, ticks), queue_capacity),
    ]
}

/// Sessions without a terminal fault must match the baseline labels
/// byte-for-byte — the zero-loss assertion of the drill.
fn assert_zero_loss(out: &scenario::FaultOutcome, baseline: &RunOutcome, class: &str) {
    for (id, fault) in out.faults.iter().enumerate() {
        if fault.is_none() {
            assert_eq!(
                out.labels[id], baseline.labels[id],
                "[{class}] session {id} outside the blast radius diverged"
            );
        }
    }
    assert_eq!(
        out.labels_lost(),
        out.faults.iter().filter(|f| f.is_some()).count() as u64,
        "[{class}] labels_lost out of step with the fault ledger"
    );
    assert!(
        out.accounting_exact(),
        "[{class}] accounting leak: submitted={} flushed={} shed={} quarantined={}",
        out.ingest.submitted,
        out.ingest.flushed_events,
        out.ingest.shed_events,
        out.ingest.quarantined_events
    );
}

fn main() {
    traj::silence_injected_panic_output();
    let mut smoke = false;
    let mut out_path = "BENCH_faults.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }

    let seed = 0xFA17_2026u64;
    let kind = NetworkKind::ChengduGrid;
    let (ticks, arrivals, shards) = if smoke {
        (48u32, 0.8f64, 2usize)
    } else {
        (240u32, 1.5f64, 4usize)
    };
    let flush = FlushPolicy::new(64, Duration::from_millis(1));
    let queue_capacity = 256;
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    eprintln!("[{}] building world + training model...", kind.label());
    let world = if smoke {
        World::tiny(kind, seed)
    } else {
        World::city(kind, seed)
    };
    let train_cfg = if smoke {
        Rl4oasdConfig::tiny(seed)
    } else {
        Rl4oasdConfig {
            joint_trajs: 200,
            pretrain_trajs: 100,
            ..Rl4oasdConfig::default()
        }
    };
    let model = Arc::new(world.train(&train_cfg));
    let runner = ScenarioRunner::new(Arc::clone(&model), Arc::clone(&world.net));

    let spec = ScenarioSpec {
        name: "fault_drill".into(),
        network: kind,
        ticks,
        arrivals_per_tick: arrivals,
        regimes: Vec::new(),
    };
    let trace = EventTrace::generate(&world, &spec, seed);

    // Fault-free reference labels through the same ingest shape under
    // lossless retry — the byte-identity yardstick for every drill.
    let baseline = runner.run(
        &trace,
        &Driver::Ingest {
            shards,
            flush,
            queue_capacity,
            backpressure: Backpressure::Retry,
        },
    );
    let mut baseline_events_per_sec = 0.0f64;

    let mut results = Vec::new();
    for (class, plan, capacity) in plans(trace.ticks.len() as u32, seed, queue_capacity) {
        let t0 = Instant::now();
        let out = runner.run_supervised(&trace, shards, flush, capacity, &plan);
        let seconds = t0.elapsed().as_secs_f64();
        assert_zero_loss(&out, &baseline, class);

        let events_per_sec = out.delivered as f64 / seconds.max(1e-12);
        if class == "baseline" {
            baseline_events_per_sec = events_per_sec;
            assert_eq!(out.labels_lost(), 0, "the baseline drill must lose nothing");
        }
        if class == "degraded_admission" {
            assert!(
                out.degraded_entered,
                "the capacity-1 stall drill must cross the degraded watermark"
            );
        }
        let us = |q: f64| out.ingest.latency.percentile(q).as_secs_f64() * 1e6;
        let row = Row {
            fault_class: class.to_string(),
            shards,
            queue_capacity: capacity,
            sessions: out.sessions,
            delivered: out.delivered,
            events_per_sec,
            p50_us: us(0.50),
            p99_us: us(0.99),
            labels_lost: out.labels_lost(),
            quarantined_events: out.ingest.quarantined_events,
            shed_events: out.ingest.shed_events,
            worker_restarts: out.worker_restarts,
            mttr_ticks: out.mttr_ticks,
            degraded_entered: out.degraded_entered,
            seconds,
        };
        eprintln!(
            "[{:<12}] {:>5} sessions {:>7} events | {:>9.0} ev/s p99 {:>7.0}us | \
             lost {:>3} restarts {:>2} mttr {:?} | {:.2}s",
            row.fault_class,
            row.sessions,
            row.delivered,
            row.events_per_sec,
            row.p99_us,
            row.labels_lost,
            row.worker_restarts,
            row.mttr_ticks,
            row.seconds,
        );
        results.push(row);
    }

    let report = Report {
        bench: "fault_drill".to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        network: kind.label().to_string(),
        seed,
        ticks,
        arrivals_per_tick: arrivals,
        shards,
        max_batch: flush.max_batch,
        max_delay_us: flush.max_delay.as_micros() as u64,
        queue_capacity,
        host_cores,
        baseline_events_per_sec,
        results,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out_path, json).expect("write BENCH_faults.json");
    eprintln!("wrote {out_path}");
}
