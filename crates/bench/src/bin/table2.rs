//! Regenerates Table II (dataset statistics).
use bench_suite::{experiments, City, Context};

fn main() {
    let chengdu = Context::build(City::Chengdu);
    let xian = Context::build(City::Xian);
    println!("{}", experiments::table2(&[&chengdu, &xian]));
}
