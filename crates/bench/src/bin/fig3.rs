//! Regenerates Figure 3 (overall detection efficiency).
use bench_suite::{figures, City, Context};

fn main() {
    let chengdu = Context::build(City::Chengdu);
    let xian = Context::build(City::Xian);
    println!("{}", figures::fig3(&[&chengdu, &xian]));
}
