//! `ingest` — async front-door throughput + latency measurement, written
//! to `BENCH_ingest.json`.
//!
//! Drives the RL4OASD [`rl4oasd::IngestEngine`] the way production would:
//! producer threads submit independent per-point events through a cloned
//! [`traj::IngestHandle`] (retrying on `QueueFull` backpressure), persistent
//! per-shard workers micro-batch them into `observe_batch` ticks under the
//! [`traj::FlushPolicy`] latency SLO, and labels stream back through
//! per-session subscriptions. Reported per row: sustained points/sec
//! **and p50/p95/p99 submit→label latency** (from the front door's HDR
//! histogram — queue wait counts against the SLO), sweeping shard count
//! {1, 4} × concurrent sessions {100, 10k}.
//!
//! Closed-loop producers saturate the engine, so tail latency here is the
//! *backpressured* latency — bounded by `queue_capacity / service_rate`,
//! not by `max_delay` (which dominates only below saturation).
//!
//! ```text
//! cargo run --release -p bench_suite --bin ingest [-- out.json]
//! ```

use obs::{Obs, ObsConfig, Snapshot};
use rl4oasd::{train, IngestEngine, Rl4oasdConfig, StreamEngine, TrainedModel};
use rnet::{CityBuilder, CityConfig, RoadNetwork};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use traj::{
    Dataset, FlushPolicy, IngestConfig, IngestHandle, MappedTrajectory, SubmitError, Subscription,
    TrafficConfig, TrafficSimulator,
};

#[derive(Serialize)]
struct Row {
    sessions: usize,
    shards: usize,
    threads: usize,
    producers: usize,
    points: u64,
    seconds: f64,
    points_per_sec: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    mean_us: f64,
    queue_full_retries: u64,
    flushes: u64,
    max_flush_batch: usize,
}

#[derive(Serialize)]
struct Report {
    bench: String,
    city: String,
    hidden_dim: usize,
    embed_dim: usize,
    host_cores: usize,
    max_batch: usize,
    max_delay_us: u64,
    queue_capacity: usize,
    /// Overhead probe on the smallest row (100 sessions × 1 shard):
    /// best of 3 alternated runs with telemetry off vs on.
    obs_off_points_per_sec: f64,
    obs_on_points_per_sec: f64,
    /// `(1 - on/off) · 100` — positive means telemetry cost throughput.
    obs_overhead_pct: f64,
    /// Final telemetry snapshot of the largest obs-on row.
    obs: Snapshot,
    results: Vec<Row>,
}

struct Lane {
    session: traj::SessionId,
    sub: Subscription,
    traj: usize,
    pos: usize,
}

fn open_lane(
    handle: &IngestHandle<StreamEngine>,
    trajs: &[MappedTrajectory],
    next_traj: &mut usize,
) -> Lane {
    let ti = *next_traj % trajs.len();
    *next_traj += 1;
    let (session, sub) = loop {
        match handle.open(
            trajs[ti].sd_pair().expect("non-empty"),
            trajs[ti].start_time,
        ) {
            Ok(opened) => break opened,
            Err(SubmitError::QueueFull) => std::thread::yield_now(),
            Err(SubmitError::ShutDown) => panic!("front door closed mid-benchmark"),
            Err(e) => panic!("unexpected open error: {e}"),
        }
    };
    Lane {
        session,
        sub,
        traj: ti,
        pos: 0,
    }
}

/// One producer: owns `lanes` concurrent trips, submits one point per lane
/// per round (closed loop), drains label subscriptions, recycles finished
/// trips. Returns `QueueFull` retry count.
fn produce(
    handle: IngestHandle<StreamEngine>,
    trajs: Arc<Vec<MappedTrajectory>>,
    lanes: usize,
    first_traj: usize,
    total: Arc<AtomicU64>,
    min_points: u64,
) -> u64 {
    let mut next_traj = first_traj;
    let mut open: Vec<Lane> = (0..lanes)
        .map(|_| open_lane(&handle, &trajs, &mut next_traj))
        .collect();
    let mut retries = 0u64;
    let mut sink = Vec::new();
    while total.load(Ordering::Relaxed) < min_points {
        for lane in open.iter_mut() {
            sink.clear();
            lane.sub.drain_into(&mut sink);
            let segment = trajs[lane.traj].segments[lane.pos];
            loop {
                match handle.submit(lane.session, segment) {
                    Ok(()) => break,
                    Err(SubmitError::QueueFull) => {
                        retries += 1;
                        sink.clear();
                        lane.sub.drain_into(&mut sink);
                        std::thread::yield_now();
                    }
                    Err(SubmitError::ShutDown) => return retries,
                    Err(e) => panic!("unexpected submit error: {e}"),
                }
            }
            total.fetch_add(1, Ordering::Relaxed);
            lane.pos += 1;
            if lane.pos == trajs[lane.traj].len() {
                let closed = std::mem::replace(lane, open_lane(&handle, &trajs, &mut next_traj));
                wait_close(&handle, closed);
            }
        }
    }
    for lane in open {
        wait_close(&handle, lane);
    }
    retries
}

fn wait_close(handle: &IngestHandle<StreamEngine>, lane: Lane) {
    let ticket = loop {
        match handle.close(lane.session) {
            Ok(ticket) => break ticket,
            Err(SubmitError::QueueFull) => std::thread::yield_now(),
            Err(SubmitError::ShutDown) => return,
            Err(e) => panic!("unexpected close error: {e}"),
        }
    };
    ticket.wait().unwrap();
}

fn measure(
    model: &Arc<TrainedModel>,
    net: &Arc<RoadNetwork>,
    trajs: &Arc<Vec<MappedTrajectory>>,
    sessions: usize,
    shards: usize,
    min_points: u64,
    config: IngestConfig,
) -> (Row, Snapshot) {
    let engine = IngestEngine::new(Arc::clone(model), Arc::clone(net), shards, config);
    let producers = sessions.min(4);
    let per = sessions.div_ceil(producers);
    let total = Arc::new(AtomicU64::new(0));

    let t0 = Instant::now();
    let joins: Vec<_> = (0..producers)
        .filter_map(|p| {
            let lanes = per.min(sessions.saturating_sub(p * per));
            if lanes == 0 {
                return None; // a laneless producer would only busy-wait
            }
            let handle = engine.handle();
            let trajs = Arc::clone(trajs);
            let total = Arc::clone(&total);
            Some(std::thread::spawn(move || {
                produce(handle, trajs, lanes, p * 31, total, min_points)
            }))
        })
        .collect();
    let retries: u64 = joins.into_iter().map(|j| j.join().expect("producer")).sum();
    let seconds = t0.elapsed().as_secs_f64();
    let report = engine.shutdown();

    let points = report.ingest.submitted;
    let lat = &report.ingest.latency;
    let us = |q: f64| lat.percentile(q).as_secs_f64() * 1e6;
    let row = Row {
        sessions,
        shards,
        threads: shards,
        producers,
        points,
        seconds,
        points_per_sec: points as f64 / seconds.max(1e-12),
        p50_us: us(0.50),
        p95_us: us(0.95),
        p99_us: us(0.99),
        mean_us: lat.mean().as_secs_f64() * 1e6,
        queue_full_retries: retries,
        flushes: report.ingest.flushes,
        max_flush_batch: report.ingest.max_flush_batch,
    };
    (row, report.obs)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_ingest.json".to_string());

    eprintln!("building city + training model (one-time setup)...");
    let net = CityBuilder::new(CityConfig::chengdu_like()).build();
    let sim = TrafficSimulator::new(
        &net,
        TrafficConfig {
            num_sd_pairs: 10,
            trajs_per_pair: (50, 80),
            ..TrafficConfig::default()
        },
    );
    let generated = sim.generate();
    let train_set = Dataset::from_generated(&generated);
    let config = Rl4oasdConfig {
        joint_trajs: 200,
        pretrain_trajs: 100,
        ..Rl4oasdConfig::default()
    };
    let model = Arc::new(train(&net, &train_set, &config));
    let trajs: Arc<Vec<MappedTrajectory>> = Arc::new(
        train_set
            .trajectories
            .iter()
            .filter(|t| !t.is_empty())
            .take(200)
            .cloned()
            .collect(),
    );
    let net = Arc::new(net);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let ingest_config = IngestConfig {
        flush: FlushPolicy::new(128, Duration::from_millis(1)),
        queue_capacity: 512,
        outbox_capacity: 256,
        obs: Obs::disabled(),
    };
    // Small rings keep the embedded snapshot a readable size in the JSON.
    let obs_rings = ObsConfig {
        enabled: true,
        event_capacity: 64,
        span_capacity: 64,
        sample_capacity: 64,
    };

    // Unrecorded warm-up: the first measured row otherwise pays the
    // process's cold caches and branch predictors (measurably slower
    // than the same shape re-run later in the process).
    eprintln!("warm-up run (unrecorded)...");
    let _ = measure(&model, &net, &trajs, 100, 1, 100_000, ingest_config.clone());

    let mut results = Vec::new();
    let mut snapshot = Snapshot::default();
    for sessions in [100usize, 10_000] {
        let min_points = (sessions as u64 * 20).max(100_000);
        for shards in [1usize, 4] {
            // Fresh telemetry per row so shard-labelled counters don't
            // bleed across configurations; the sweep itself runs obs-on
            // (the published throughput includes the telemetry cost).
            let obs = Obs::new(obs_rings.clone());
            let (row, snap) = measure(
                &model,
                &net,
                &trajs,
                sessions,
                shards,
                min_points,
                IngestConfig {
                    obs,
                    ..ingest_config.clone()
                },
            );
            snapshot = snap;
            eprintln!(
                "{:>6} sessions x {} shards ({} producers): {:>9} points in {:>7.3}s = \
                 {:>10.0} points/sec | latency p50 {:>8.0}us p99 {:>8.0}us | \
                 {} retries, {} flushes (max batch {})",
                row.sessions,
                row.shards,
                row.producers,
                row.points,
                row.seconds,
                row.points_per_sec,
                row.p50_us,
                row.p99_us,
                row.queue_full_retries,
                row.flushes,
                row.max_flush_batch,
            );
            results.push(row);
        }
    }

    // Telemetry-overhead probe: the smallest row, alternating obs-off /
    // obs-on runs, best of 3 each — paired so scheduler noise (large on
    // a 1-core container, where the 4 producers and the worker share one
    // core) mostly cancels out of the recorded number.
    eprintln!("overhead probe: 100 sessions x 1 shard, off/on alternated, best of 3...");
    let mut obs_off_points_per_sec = 0.0f64;
    let mut obs_on_points_per_sec = 0.0f64;
    for _ in 0..3 {
        let (off, _) = measure(&model, &net, &trajs, 100, 1, 100_000, ingest_config.clone());
        obs_off_points_per_sec = obs_off_points_per_sec.max(off.points_per_sec);
        let (on, _) = measure(
            &model,
            &net,
            &trajs,
            100,
            1,
            100_000,
            IngestConfig {
                obs: Obs::new(obs_rings.clone()),
                ..ingest_config.clone()
            },
        );
        obs_on_points_per_sec = obs_on_points_per_sec.max(on.points_per_sec);
    }
    let obs_overhead_pct = (1.0 - obs_on_points_per_sec / obs_off_points_per_sec) * 100.0;
    eprintln!(
        "telemetry overhead: {obs_on_points_per_sec:.0} (on) vs {obs_off_points_per_sec:.0} (off) \
         points/sec = {obs_overhead_pct:+.2}%",
    );

    let report = Report {
        bench: "ingest_front_door".to_string(),
        city: "Chengdu-sim".to_string(),
        hidden_dim: config.hidden_dim,
        embed_dim: config.embed_dim,
        host_cores,
        max_batch: ingest_config.flush.max_batch,
        max_delay_us: ingest_config.flush.max_delay.as_micros() as u64,
        queue_capacity: ingest_config.queue_capacity,
        obs_off_points_per_sec,
        obs_on_points_per_sec,
        obs_overhead_pct,
        obs: snapshot,
        results,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out_path, json).expect("write BENCH_ingest.json");
    eprintln!("wrote {out_path}");
}
