//! Regenerates Table VI (cold-start drop-rate study).
use bench_suite::{experiments, City, Context};
use rl4oasd::Rl4oasdConfig;

fn main() {
    let ctx = Context::build(City::Chengdu);
    let rates = [0.0, 0.2, 0.4, 0.6, 0.8];
    println!(
        "{}",
        experiments::table6(&ctx, &Rl4oasdConfig::default(), &rates)
    );
}
