//! Regenerates Table IV (ablation study).
use bench_suite::{experiments, City, Context};
use rl4oasd::Rl4oasdConfig;

fn main() {
    let ctx = Context::build(City::Chengdu);
    println!("{}", experiments::table4(&ctx, &Rl4oasdConfig::default()));
}
