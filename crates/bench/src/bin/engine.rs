//! `engine` — stream-engine throughput measurement, written to
//! `BENCH_engine.json`.
//!
//! Measures points/sec of the RL4OASD serving path at 1, 100 and 10,000
//! concurrent interleaved trajectory sessions over one shared trained
//! model (the fleet workload of the paper's motivating scenario), sweeping
//! the shard count {1, 2, 4, 8} of [`rl4oasd::ShardedEngine`] — the
//! parallelism dimension of the schema (`shards`, `threads` per row). The
//! single-shard rows drive a plain [`rl4oasd::StreamEngine`], so the sweep
//! directly compares one core against N.
//!
//! ```text
//! cargo run --release -p bench_suite --bin engine [-- out.json]
//! ```

use bench_suite::throughput::drive_interleaved;
use obs::{Obs, ObsConfig, Snapshot};
use rl4oasd::{train, Rl4oasdConfig, ShardedEngine, StreamEngine};
use rnet::{CityBuilder, CityConfig};
use serde::Serialize;
use std::sync::Arc;
use traj::{Dataset, TrafficConfig, TrafficSimulator};

#[derive(Serialize)]
struct Row {
    sessions: usize,
    shards: usize,
    threads: usize,
    points: u64,
    seconds: f64,
    points_per_sec: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    batched_events: u64,
    scalar_events: u64,
    batched_rounds: u64,
}

#[derive(Serialize)]
struct Report {
    bench: String,
    city: String,
    hidden_dim: usize,
    embed_dim: usize,
    host_cores: usize,
    /// Final telemetry snapshot of the last (largest) row.
    obs: Snapshot,
    results: Vec<Row>,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    eprintln!("building city + training model (one-time setup)...");
    let net = CityBuilder::new(CityConfig::chengdu_like()).build();
    let sim = TrafficSimulator::new(
        &net,
        TrafficConfig {
            num_sd_pairs: 10,
            trajs_per_pair: (50, 80),
            ..TrafficConfig::default()
        },
    );
    let generated = sim.generate();
    let train_set = Dataset::from_generated(&generated);
    let config = Rl4oasdConfig {
        joint_trajs: 200,
        pretrain_trajs: 100,
        ..Rl4oasdConfig::default()
    };
    let model = train(&net, &train_set, &config);
    let trajs: Vec<_> = train_set.trajectories.iter().take(200).cloned().collect();
    let net = Arc::new(net);
    let model = Arc::new(model);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Small rings keep the embedded snapshot a readable size in the JSON.
    let obs_rings = ObsConfig {
        enabled: true,
        event_capacity: 64,
        span_capacity: 64,
        sample_capacity: 64,
    };

    let mut results = Vec::new();
    let mut snapshot = Snapshot::default();
    for sessions in [1usize, 100, 10_000] {
        let min_points = (sessions as u64 * 20).max(100_000);
        for shards in [1usize, 2, 4, 8] {
            // Fresh telemetry per row so shard-labelled series don't
            // bleed across configurations; the sweep runs obs-on.
            let obs = Obs::new(obs_rings.clone());
            let (sample, stats) = if shards == 1 {
                // Baseline: the plain single-threaded engine.
                let mut engine =
                    StreamEngine::new(Arc::clone(&model), Arc::clone(&net)).with_obs(&obs, 0);
                let sample = drive_interleaved(&mut engine, &trajs, sessions, min_points);
                (sample, engine.stats())
            } else {
                let mut engine =
                    ShardedEngine::new(Arc::clone(&model), Arc::clone(&net), shards).with_obs(&obs);
                let sample = drive_interleaved(&mut engine, &trajs, sessions, min_points);
                (sample, engine.stats())
            };
            snapshot = obs.snapshot();
            eprintln!(
                "{:>6} sessions x {} shards: {:>9} points in {:>7.3}s = {:>12.0} points/sec \
                 (p50 {:.0}us / p99 {:.0}us; {} batched / {} scalar events)",
                sample.sessions,
                shards,
                sample.points,
                sample.seconds,
                sample.points_per_sec,
                sample.p50_us,
                sample.p99_us,
                stats.batched_events,
                stats.scalar_events,
            );
            results.push(Row {
                sessions: sample.sessions,
                shards,
                threads: shards,
                points: sample.points,
                seconds: sample.seconds,
                points_per_sec: sample.points_per_sec,
                p50_us: sample.p50_us,
                p95_us: sample.p95_us,
                p99_us: sample.p99_us,
                batched_events: stats.batched_events,
                scalar_events: stats.scalar_events,
                batched_rounds: stats.batched_rounds,
            });
        }
    }

    let report = Report {
        bench: "stream_engine_throughput".to_string(),
        city: "Chengdu-sim".to_string(),
        hidden_dim: config.hidden_dim,
        embed_dim: config.embed_dim,
        host_cores,
        obs: snapshot,
        results,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out_path, json).expect("write BENCH_engine.json");
    eprintln!("wrote {out_path}");
}
