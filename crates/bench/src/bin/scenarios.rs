//! `scenarios` — the city-scale scenario soak, written to
//! `BENCH_scenarios.json`.
//!
//! Runs the standard six-regime scenario battery
//! ([`scenario::standard_suite`]) on **both** synthetic cities (the
//! Chengdu-like grid and the Porto-like radial network), replaying every
//! `(seed, spec)` trace through the async ingest front door at a fixed
//! flush SLO and cross-checking the labels against the synchronous
//! sharded path (the replay-determinism invariant, enforced here on every
//! soak run, not just in tests). Reported per row: detection quality
//! (segment-level precision/recall/F1 plus the paper's span-level F1)
//! against the scenario's own ground truth, p50/p99 submit→label latency
//! from the door's HDR histogram, shed counts and the trace digest.
//!
//! ```text
//! cargo run --release -p bench_suite --bin scenarios [-- [--smoke] [out.json]]
//! ```
//!
//! `--smoke` shrinks to the tiny worlds and short traces for CI; the full
//! run uses the paper-scale city presets.

use rl4oasd::Rl4oasdConfig;
use scenario::{Backpressure, Driver, EventTrace, NetworkKind, ScenarioRunner, World};
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};
use traj::FlushPolicy;

#[derive(Serialize)]
struct Row {
    scenario: String,
    network: String,
    seed: u64,
    digest: String,
    sessions: usize,
    events: u64,
    rejected: u64,
    precision: f64,
    recall: f64,
    f1: f64,
    span_f1: f64,
    p50_us: f64,
    p99_us: f64,
    mean_us: f64,
    seconds: f64,
}

#[derive(Serialize)]
struct Report {
    bench: String,
    mode: String,
    ticks: u32,
    arrivals_per_tick: f64,
    shards: usize,
    max_batch: usize,
    max_delay_us: u64,
    queue_capacity: usize,
    host_cores: usize,
    results: Vec<Row>,
}

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_scenarios.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }

    let (ticks, arrivals, shards, seed) = if smoke {
        (48u32, 0.5f64, 2usize, 0x5CEA_2026u64)
    } else {
        (240u32, 1.5f64, 4usize, 0x5CEA_2026u64)
    };
    let flush = FlushPolicy::new(64, Duration::from_millis(1));
    let queue_capacity = 512;

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut results = Vec::new();

    for kind in [NetworkKind::ChengduGrid, NetworkKind::PortoRadial] {
        eprintln!("[{}] building world + training model...", kind.label());
        let world = if smoke {
            World::tiny(kind, seed)
        } else {
            World::city(kind, seed)
        };
        let train_cfg = if smoke {
            Rl4oasdConfig::tiny(seed)
        } else {
            Rl4oasdConfig {
                joint_trajs: 200,
                pretrain_trajs: 100,
                ..Rl4oasdConfig::default()
            }
        };
        let model = Arc::new(world.train(&train_cfg));
        let runner = ScenarioRunner::new(Arc::clone(&model), Arc::clone(&world.net));

        for spec in scenario::standard_suite(kind, ticks, arrivals) {
            let trace = EventTrace::generate(&world, &spec, seed);
            let t0 = Instant::now();
            let out = runner.run(
                &trace,
                &Driver::Ingest {
                    shards,
                    flush,
                    queue_capacity,
                    backpressure: Backpressure::Retry,
                },
            );
            let seconds = t0.elapsed().as_secs_f64();

            // Replay-determinism cross-check: the sync sharded path must
            // emit byte-identical labels for the same trace.
            let sync = runner.run(&trace, &Driver::Sync { shards });
            assert_eq!(
                out.labels,
                sync.labels,
                "ingest/sync label divergence in `{}` on {}",
                spec.name,
                kind.label()
            );

            let conf = out.confusion();
            let span = out.span_metrics();
            let us = |q: f64| out.latency.percentile(q).as_secs_f64() * 1e6;
            let row = Row {
                scenario: spec.name.clone(),
                network: kind.label().to_string(),
                seed,
                digest: format!("{:016x}", trace.digest()),
                sessions: out.sessions,
                events: out.events,
                rejected: out.rejected,
                precision: conf.precision(),
                recall: conf.recall(),
                f1: conf.f1(),
                span_f1: span.f1,
                p50_us: us(0.50),
                p99_us: us(0.99),
                mean_us: out.latency.mean().as_secs_f64() * 1e6,
                seconds,
            };
            eprintln!(
                "[{}] {:<22} {:>5} sessions {:>7} events | P {:.3} R {:.3} F1 {:.3} \
                 (span {:.3}) | p50 {:>7.0}us p99 {:>7.0}us | {:.2}s",
                row.network,
                row.scenario,
                row.sessions,
                row.events,
                row.precision,
                row.recall,
                row.f1,
                row.span_f1,
                row.p50_us,
                row.p99_us,
                row.seconds,
            );
            results.push(row);
        }
    }

    let report = Report {
        bench: "scenario_soak".to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        ticks,
        arrivals_per_tick: arrivals,
        shards,
        max_batch: flush.max_batch,
        max_delay_us: flush.max_delay.as_micros() as u64,
        queue_capacity,
        host_cores,
        results,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out_path, json).expect("write BENCH_scenarios.json");
    eprintln!("wrote {out_path}");
}
