//! `scenarios` — the city-scale scenario soak, written to
//! `BENCH_scenarios.json`.
//!
//! Runs the standard six-regime scenario battery
//! ([`scenario::standard_suite`]) on **both** synthetic cities (the
//! Chengdu-like grid and the Porto-like radial network), replaying every
//! `(seed, spec)` trace through the async ingest front door at a fixed
//! flush SLO and cross-checking the labels against the synchronous
//! sharded path (the replay-determinism invariant, enforced here on every
//! soak run, not just in tests). Reported per row: detection quality
//! (segment-level precision/recall/F1 plus the paper's span-level F1)
//! against the scenario's own ground truth, p50/p99 submit→label latency
//! from the door's HDR histogram, shed counts and the trace digest.
//!
//! ```text
//! cargo run --release -p bench_suite --bin scenarios [-- [--smoke] [out.json]]
//! ```
//!
//! `--smoke` shrinks to the tiny worlds and short traces for CI; the full
//! run uses the paper-scale city presets.

use obs::{Obs, ObsConfig, Snapshot};
use rl4oasd::Rl4oasdConfig;
use scenario::{Backpressure, Driver, EventTrace, NetworkKind, ScenarioRunner, World};
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};
use traj::FlushPolicy;

#[derive(Serialize)]
struct Row {
    scenario: String,
    network: String,
    seed: u64,
    digest: String,
    sessions: usize,
    events: u64,
    rejected: u64,
    precision: f64,
    recall: f64,
    f1: f64,
    span_f1: f64,
    p50_us: f64,
    p99_us: f64,
    mean_us: f64,
    seconds: f64,
}

#[derive(Serialize)]
struct Report {
    bench: String,
    mode: String,
    ticks: u32,
    arrivals_per_tick: f64,
    shards: usize,
    max_batch: usize,
    max_delay_us: u64,
    queue_capacity: usize,
    host_cores: usize,
    /// Events/sec of the first trace replayed with telemetry on vs the
    /// same trace through an un-instrumented runner.
    obs_on_events_per_sec: f64,
    obs_off_events_per_sec: f64,
    /// `(1 - on/off) · 100` — positive means telemetry cost throughput.
    obs_overhead_pct: f64,
    /// Cumulative telemetry snapshot over the whole soak (both cities).
    obs: Snapshot,
    results: Vec<Row>,
}

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_scenarios.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }

    let (ticks, arrivals, shards, seed) = if smoke {
        (48u32, 0.5f64, 2usize, 0x5CEA_2026u64)
    } else {
        (240u32, 1.5f64, 4usize, 0x5CEA_2026u64)
    };
    let flush = FlushPolicy::new(64, Duration::from_millis(1));
    let queue_capacity = 512;

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut results = Vec::new();

    // One telemetry spine across the whole soak; small rings keep the
    // snapshot embedded in the JSON a readable size.
    let obs = Obs::new(ObsConfig {
        enabled: true,
        event_capacity: 64,
        span_capacity: 64,
        sample_capacity: 64,
    });
    let mut obs_on_events_per_sec = 0.0f64;
    let mut obs_off_events_per_sec = 0.0f64;

    for kind in [NetworkKind::ChengduGrid, NetworkKind::PortoRadial] {
        eprintln!("[{}] building world + training model...", kind.label());
        let world = if smoke {
            World::tiny(kind, seed)
        } else {
            World::city(kind, seed)
        };
        let train_cfg = if smoke {
            Rl4oasdConfig::tiny(seed)
        } else {
            Rl4oasdConfig {
                joint_trajs: 200,
                pretrain_trajs: 100,
                ..Rl4oasdConfig::default()
            }
        };
        let model = Arc::new(world.train(&train_cfg));
        let runner = ScenarioRunner::new(Arc::clone(&model), Arc::clone(&world.net)).with_obs(&obs);

        for spec in scenario::standard_suite(kind, ticks, arrivals) {
            let trace = EventTrace::generate(&world, &spec, seed);
            let driver = Driver::Ingest {
                shards,
                flush,
                queue_capacity,
                backpressure: Backpressure::Retry,
            };
            let t0 = Instant::now();
            let out = runner.run(&trace, &driver);
            let seconds = t0.elapsed().as_secs_f64();

            if results.is_empty() {
                // Telemetry-overhead probe on the first trace: alternate
                // un-instrumented and instrumented replays, best of 3
                // each, so warm-up and scheduler noise cancel out of the
                // recorded number. The instrumented replays record into
                // their own throwaway spine so the soak snapshot below
                // only covers the actual soak rows.
                let plain = ScenarioRunner::new(Arc::clone(&model), Arc::clone(&world.net));
                let probe_obs = Obs::new(ObsConfig {
                    enabled: true,
                    event_capacity: 64,
                    span_capacity: 64,
                    sample_capacity: 64,
                });
                let wired = ScenarioRunner::new(Arc::clone(&model), Arc::clone(&world.net))
                    .with_obs(&probe_obs);
                for _ in 0..3 {
                    let t = Instant::now();
                    let off = plain.run(&trace, &driver);
                    let off_rate = off.events as f64 / t.elapsed().as_secs_f64().max(1e-12);
                    obs_off_events_per_sec = obs_off_events_per_sec.max(off_rate);
                    let t = Instant::now();
                    let on = wired.run(&trace, &driver);
                    let on_rate = on.events as f64 / t.elapsed().as_secs_f64().max(1e-12);
                    obs_on_events_per_sec = obs_on_events_per_sec.max(on_rate);
                    assert_eq!(
                        out.labels, off.labels,
                        "un-instrumented replay diverged in `{}`",
                        spec.name
                    );
                    assert_eq!(
                        out.labels, on.labels,
                        "telemetry changed labels in `{}`",
                        spec.name
                    );
                }
            }

            // Replay-determinism cross-check: the sync sharded path must
            // emit byte-identical labels for the same trace.
            let sync = runner.run(&trace, &Driver::Sync { shards });
            assert_eq!(
                out.labels,
                sync.labels,
                "ingest/sync label divergence in `{}` on {}",
                spec.name,
                kind.label()
            );

            let conf = out.confusion();
            let span = out.span_metrics();
            let us = |q: f64| out.latency.percentile(q).as_secs_f64() * 1e6;
            let row = Row {
                scenario: spec.name.clone(),
                network: kind.label().to_string(),
                seed,
                digest: format!("{:016x}", trace.digest()),
                sessions: out.sessions,
                events: out.events,
                rejected: out.rejected,
                precision: conf.precision(),
                recall: conf.recall(),
                f1: conf.f1(),
                span_f1: span.f1,
                p50_us: us(0.50),
                p99_us: us(0.99),
                mean_us: out.latency.mean().as_secs_f64() * 1e6,
                seconds,
            };
            eprintln!(
                "[{}] {:<22} {:>5} sessions {:>7} events | P {:.3} R {:.3} F1 {:.3} \
                 (span {:.3}) | p50 {:>7.0}us p99 {:>7.0}us | {:.2}s",
                row.network,
                row.scenario,
                row.sessions,
                row.events,
                row.precision,
                row.recall,
                row.f1,
                row.span_f1,
                row.p50_us,
                row.p99_us,
                row.seconds,
            );
            results.push(row);
        }
    }

    // Every replay records through the shared spine, so an empty
    // snapshot after a soak means the telemetry wiring came apart.
    let snapshot = obs.snapshot();
    assert!(
        !snapshot.is_empty(),
        "telemetry snapshot is empty after the soak"
    );
    let obs_overhead_pct =
        (1.0 - obs_on_events_per_sec / obs_off_events_per_sec.max(1e-12)) * 100.0;
    eprintln!(
        "telemetry overhead: {obs_on_events_per_sec:.0} (on) vs {obs_off_events_per_sec:.0} (off) \
         events/sec = {obs_overhead_pct:+.2}%",
    );

    let report = Report {
        bench: "scenario_soak".to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        ticks,
        arrivals_per_tick: arrivals,
        shards,
        max_batch: flush.max_batch,
        max_delay_us: flush.max_delay.as_micros() as u64,
        queue_capacity,
        host_cores,
        obs_on_events_per_sec,
        obs_off_events_per_sec,
        obs_overhead_pct,
        obs: snapshot,
        results,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out_path, json).expect("write BENCH_scenarios.json");
    eprintln!("wrote {out_path}");
}
