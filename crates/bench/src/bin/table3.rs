//! Regenerates Table III (effectiveness comparison, both cities).
use bench_suite::{experiments, City, Context};

fn main() {
    for city in [City::Chengdu, City::Xian] {
        let ctx = Context::build(city);
        let (_, report) = experiments::table3(&ctx);
        println!("{report}");
    }
}
