//! Table experiments (paper Tables II–VI and the α/δ/D parameter study).

use crate::{City, Context, Method};
use eval::report::{f3, Table};
use eval::{evaluate, evaluate_pairs, group_of_len, DetectionMetrics, LengthGroup};
use mapmatch::{MapMatcher, MatchConfig};
use rl4oasd::ablation::{variant_config, AblationVariant, TransitionFrequencyDetector};
use rl4oasd::{train_with_dev, Rl4oasdConfig, Rl4oasdDetector};
use std::time::Instant;
use traj::{Dataset, OnlineDetector, TrafficConfig, TrafficSimulator};

/// Table II: dataset statistics for both cities.
pub fn table2(ctxs: &[&Context]) -> String {
    let mut t = Table::new([
        "Dataset",
        "# trajectories",
        "# segments",
        "# intersections",
        "# labeled routes (trajs)",
        "# anomalous routes (trajs)",
        "anomalous ratio",
        "sampling rate",
    ]);
    for ctx in ctxs {
        let train_stats = ctx.train.stats();
        let test_stats = ctx.test.stats();
        t.row([
            ctx.city.name().to_string(),
            format!(
                "{}",
                train_stats.num_trajectories + test_stats.num_trajectories
            ),
            format!("{}", ctx.net.num_segments()),
            format!("{}", ctx.net.num_nodes()),
            format!(
                "{} ({})",
                test_stats.num_routes, test_stats.num_trajectories
            ),
            format!(
                "{} ({})",
                test_stats.num_anomalous_routes, test_stats.num_anomalous_trajectories
            ),
            format!("{:.1}%", whole_corpus_ratio(ctx) * 100.0),
            "2s - 4s".to_string(),
        ]);
    }
    format!("## Table II — dataset statistics\n\n{}", t.render())
}

fn whole_corpus_ratio(ctx: &Context) -> f64 {
    // anomaly ratio over the full (train) corpus, like the paper's raw data
    let anomalous = ctx
        .generated
        .ground_truth
        .iter()
        .filter(|g| g.contains(&1))
        .count();
    anomalous as f64 / ctx.generated.ground_truth.len().max(1) as f64
}

/// Per-method metrics split by length group plus overall.
pub struct Table3Result {
    /// `(method, per-group metrics, overall metrics)`.
    pub rows: Vec<(Method, Vec<DetectionMetrics>, DetectionMetrics)>,
}

/// Table III: effectiveness comparison on one city.
pub fn table3(ctx: &Context) -> (Table3Result, String) {
    let truths = ctx.test_truths();
    let groups: Vec<LengthGroup> = ctx
        .test
        .trajectories
        .iter()
        .map(|t| group_of_len(t.len()))
        .collect();
    let mut rows = Vec::new();
    for method in Method::ALL {
        let (outputs, _, _) = ctx.run_method(method);
        let mut per_group = Vec::new();
        for g in LengthGroup::ALL {
            let m = evaluate_pairs(
                outputs
                    .iter()
                    .zip(&truths)
                    .zip(&groups)
                    .filter(|(_, gg)| **gg == g)
                    .map(|((o, t), _)| (o.as_slice(), t.as_slice())),
            );
            per_group.push(m);
        }
        let overall = evaluate(&outputs, &truths);
        rows.push((method, per_group, overall));
    }
    let mut t = Table::new(["Method", "G1", "G2", "G3", "G4", "Overall"]);
    for (method, per_group, overall) in &rows {
        let mut cells = vec![method.name().to_string()];
        for m in per_group {
            cells.push(format!("{} {}", f3(m.f1), f3(m.tf1)));
        }
        cells.push(format!("{} {}", f3(overall.f1), f3(overall.tf1)));
        t.row(cells);
    }
    let report = format!(
        "## Table III — effectiveness on {} (each cell: F1 TF1)\n\n{}",
        ctx.city.name(),
        t.render()
    );
    (Table3Result { rows }, report)
}

/// Table IV: ablation study (trained on the context's city).
pub fn table4(ctx: &Context, base: &Rl4oasdConfig) -> String {
    let truths = ctx.test_truths();
    let mut t = Table::new(["Effectiveness", "F1-score"]);
    for variant in AblationVariant::ALL {
        let f1 = match variant {
            AblationVariant::TransitionFrequencyOnly => {
                let mut det = TransitionFrequencyDetector::new(&ctx.model.preprocessor);
                let outputs: Vec<Vec<u8>> = ctx
                    .test
                    .trajectories
                    .iter()
                    .map(|tr| det.label_trajectory(tr))
                    .collect();
                evaluate(&outputs, &truths).f1
            }
            AblationVariant::NoRnel | AblationVariant::NoDelayedLabeling => {
                // inference-time switches: reuse the trained full model
                let mut model = (*ctx.model).clone();
                model.config = variant_config(base, variant);
                let mut det = Rl4oasdDetector::new(&model, &ctx.net);
                let outputs: Vec<Vec<u8>> = ctx
                    .test
                    .trajectories
                    .iter()
                    .map(|tr| det.label_trajectory(tr))
                    .collect();
                evaluate(&outputs, &truths).f1
            }
            AblationVariant::Full => {
                let (outputs, _, _) = ctx.run_method(Method::Rl4oasd);
                evaluate(&outputs, &truths).f1
            }
            _ => {
                // training-time ablations: retrain
                let cfg = variant_config(base, variant);
                let (model, _) = train_with_dev(&ctx.net, &ctx.train, Some(&ctx.dev), &cfg);
                let mut det = Rl4oasdDetector::new(&model, &ctx.net);
                let outputs: Vec<Vec<u8>> = ctx
                    .test
                    .trajectories
                    .iter()
                    .map(|tr| det.label_trajectory(tr))
                    .collect();
                evaluate(&outputs, &truths).f1
            }
        };
        t.row([variant.name().to_string(), f3(f1)]);
    }
    format!(
        "## Table IV — ablation study ({})\n\n{}",
        ctx.city.name(),
        t.render()
    )
}

/// Table V: preprocessing and training time vs data size.
pub fn table5(city: City, sizes: &[usize], base: &Rl4oasdConfig) -> String {
    let net = rnet::CityBuilder::new(city.net_config()).build();
    let mut traffic = city.traffic_config();
    // a corpus large enough for the biggest size
    let max = *sizes.iter().max().unwrap_or(&4000);
    traffic.num_sd_pairs = (max / 100).max(20);
    traffic.trajs_per_pair = (90, 140);
    let sim = TrafficSimulator::new(&net, traffic);
    let generated = sim.generate();
    let full = Dataset::from_generated(&generated);
    let dev =
        Dataset::from_generated(&sim.generate_from_pairs(&generated.pairs, (2, 2), 0.35, 0xDE));
    let test =
        Dataset::from_generated(&sim.generate_from_pairs(&generated.pairs, (4, 6), 0.40, 0x7E57));
    let truths: Vec<Vec<u8>> = test
        .trajectories
        .iter()
        .map(|t| test.truth(t.id).unwrap().to_vec())
        .collect();

    // Map-matching cost measured on a raw-GPS sample, scaled per size.
    let sample_cfg = TrafficConfig {
        generate_raw: true,
        num_sd_pairs: 10,
        trajs_per_pair: (20, 20),
        ..city.traffic_config()
    };
    let sample = TrafficSimulator::new(&net, sample_cfg).generate();
    let matcher = MapMatcher::new(&net, MatchConfig::default());
    let t0 = Instant::now();
    for raw in &sample.raw {
        let _ = matcher.match_trajectory(raw);
    }
    let mm_per_traj = t0.elapsed().as_secs_f64() / sample.raw.len().max(1) as f64;

    let mut t = Table::new([
        "Data size",
        "Map matching (s)",
        "Noisy labeling (s)",
        "Training time (s)",
        "F1-score",
    ]);
    for &size in sizes {
        let subset = subset_of(&full, size);
        let t1 = Instant::now();
        let _pre = rl4oasd::Preprocessor::fit(base, &subset);
        let label_secs = t1.elapsed().as_secs_f64();
        let cfg = Rl4oasdConfig {
            joint_trajs: size.min(base.joint_trajs),
            ..base.clone()
        };
        let (model, stats) = train_with_dev(&net, &subset, Some(&dev), &cfg);
        let mut det = Rl4oasdDetector::new(&model, &net);
        let outputs: Vec<Vec<u8>> = test
            .trajectories
            .iter()
            .map(|tr| det.label_trajectory(tr))
            .collect();
        let f1 = evaluate(&outputs, &truths).f1;
        t.row([
            format!("{size}"),
            format!("{:.2}", mm_per_traj * size as f64),
            format!("{label_secs:.2}"),
            format!("{:.1}", stats.train_seconds),
            f3(f1),
        ]);
    }
    format!(
        "## Table V — preprocessing and training time vs data size ({})\n\
         (map matching measured on a {}-trajectory raw-GPS sample and scaled)\n\n{}",
        city.name(),
        sample.raw.len(),
        t.render()
    )
}

fn subset_of(data: &Dataset, size: usize) -> Dataset {
    let count = std::cell::Cell::new(0usize);
    data.filter(|_| {
        count.set(count.get() + 1);
        count.get() <= size
    })
}

/// Table VI: cold-start — drop historical trajectories per SD pair.
pub fn table6(ctx: &Context, base: &Rl4oasdConfig, drop_rates: &[f64]) -> String {
    let truths = ctx.test_truths();
    let mut t = Table::new(["Drop rate", "F1-score"]);
    for &rate in drop_rates {
        let f1 = if rate == 0.0 {
            let (outputs, _, _) = ctx.run_method(Method::Rl4oasd);
            evaluate(&outputs, &truths).f1
        } else {
            let dropped = ctx.train.drop_per_pair(rate, 0xD20 + (rate * 100.0) as u64);
            let (model, _) = train_with_dev(&ctx.net, &dropped, Some(&ctx.dev), base);
            let mut det = Rl4oasdDetector::new(&model, &ctx.net);
            let outputs: Vec<Vec<u8>> = ctx
                .test
                .trajectories
                .iter()
                .map(|tr| det.label_trajectory(tr))
                .collect();
            evaluate(&outputs, &truths).f1
        };
        t.row([format!("{rate:.1}"), f3(f1)]);
    }
    format!(
        "## Table VI — cold-start (drop rate vs F1, {})\n\n{}",
        ctx.city.name(),
        t.render()
    )
}

/// Parameter study (§V-C / technical report): α, δ and D sweeps.
pub fn params(ctx: &Context, base: &Rl4oasdConfig) -> String {
    let truths = ctx.test_truths();
    let eval_model = |model: &rl4oasd::TrainedModel| -> f64 {
        let mut det = Rl4oasdDetector::new(model, &ctx.net);
        let outputs: Vec<Vec<u8>> = ctx
            .test
            .trajectories
            .iter()
            .map(|tr| det.label_trajectory(tr))
            .collect();
        evaluate(&outputs, &truths).f1
    };
    let sweep_cfg = Rl4oasdConfig {
        joint_trajs: base.joint_trajs / 2,
        ..base.clone()
    };

    let mut ta = Table::new(["alpha", "F1-score"]);
    for alpha in [0.1, 0.2, 0.25, 0.3, 0.4, 0.5] {
        let cfg = Rl4oasdConfig {
            alpha,
            ..sweep_cfg.clone()
        };
        let (model, _) = train_with_dev(&ctx.net, &ctx.train, Some(&ctx.dev), &cfg);
        ta.row([format!("{alpha:.2}"), f3(eval_model(&model))]);
    }
    let mut td = Table::new(["delta", "F1-score"]);
    for delta in [0.1, 0.2, 0.3, 0.4, 0.5] {
        let cfg = Rl4oasdConfig {
            delta,
            ..sweep_cfg.clone()
        };
        let (model, _) = train_with_dev(&ctx.net, &ctx.train, Some(&ctx.dev), &cfg);
        td.row([format!("{delta:.2}"), f3(eval_model(&model))]);
    }
    // D is an inference-time knob: reuse the context's trained model.
    let mut tdd = Table::new(["D", "F1-score"]);
    for d in [0usize, 2, 4, 8, 12, 16] {
        let mut model = (*ctx.model).clone();
        model.config.delay_d = d;
        model.config.use_delayed_labeling = d > 0;
        tdd.row([format!("{d}"), f3(eval_model(&model))]);
    }
    format!(
        "## Parameter study ({})\n\n### Varying alpha (noisy-label threshold)\n\n{}\n\
         ### Varying delta (normal-route threshold)\n\n{}\n\
         ### Varying D (delayed labeling window)\n\n{}",
        ctx.city.name(),
        ta.render(),
        td.render(),
        tdd.render()
    )
}
