//! Figure experiments (paper Figs. 3–7).

use crate::{City, Context, Method};
use eval::evaluate;
use eval::report::{f3, ms, Table};
use rl4oasd::{train_with_dev, OnlineLearner, Rl4oasdConfig, Rl4oasdDetector};
use rnet::{CityBuilder, RoadNetwork};
use traj::types::part_of_time;
use traj::{Dataset, DriftConfig, OnlineDetector, TrafficConfig, TrafficSimulator};

/// Fig. 3: overall detection efficiency — average runtime per point.
pub fn fig3(ctxs: &[&Context]) -> String {
    let mut t = Table::new(["Method", "Chengdu-sim (ms/point)", "Xian-sim (ms/point)"]);
    let mut per_city: Vec<Vec<f64>> = vec![Vec::new(); ctxs.len()];
    for (ci, ctx) in ctxs.iter().enumerate() {
        for method in Method::ALL {
            let (_, points, secs) = ctx.run_method(method);
            per_city[ci].push(secs * 1000.0 / points.max(1) as f64);
        }
    }
    for (mi, method) in Method::ALL.iter().enumerate() {
        let mut cells = vec![method.name().to_string()];
        for city_times in &per_city {
            cells.push(ms(city_times[mi]));
        }
        while cells.len() < 3 {
            cells.push("-".to_string());
        }
        t.row(cells);
    }
    format!(
        "## Figure 3 — overall detection efficiency (average runtime per point)\n\n{}",
        t.render()
    )
}

/// Fig. 4: detection scalability — average runtime per trajectory by
/// length group.
pub fn fig4(ctx: &Context) -> String {
    use eval::{group_of_len, LengthGroup};
    let groups: Vec<LengthGroup> = ctx
        .test
        .trajectories
        .iter()
        .map(|t| group_of_len(t.len()))
        .collect();
    let mut t = Table::new(["Method", "G1", "G2", "G3", "G4"]);
    for method in Method::ALL {
        let mut cells = vec![method.name().to_string()];
        for g in LengthGroup::ALL {
            let sub = ctx.test.filter(|tr| group_of_len(tr.len()) == g);
            if sub.is_empty() {
                cells.push("-".to_string());
                continue;
            }
            let (_, _, secs) = ctx.run_method_on(method, &sub);
            cells.push(ms(secs * 1000.0 / sub.len() as f64));
        }
        t.row(cells);
    }
    let counts: Vec<usize> = eval::LengthGroup::ALL
        .iter()
        .map(|g| groups.iter().filter(|gg| *gg == g).count())
        .collect();
    format!(
        "## Figure 4 — detection scalability on {} (avg runtime per trajectory; group sizes {:?})\n\n{}",
        ctx.city.name(),
        counts,
        t.render()
    )
}

/// Fig. 5: case study — a detoured trajectory rendered with ground truth,
/// CTSS and RL4OASD detections.
pub fn fig5(ctx: &Context) -> String {
    let truths = ctx.test_truths();
    // Pick the trajectory with the most ground-truth anomalous spans
    // (the paper's case shows two detours in one route).
    let (idx, _) = truths
        .iter()
        .enumerate()
        .max_by_key(|(_, g)| {
            let spans = traj::extract_subtrajectories(g);
            (spans.len(), g.iter().filter(|&&l| l == 1).count())
        })
        .expect("non-empty test set");
    let traj_ = &ctx.test.trajectories[idx];
    let truth = &truths[idx];
    let (ours, _, _) = ctx.run_method_on(Method::Rl4oasd, &single(traj_, truth));
    let (ctss, _, _) = ctx.run_method_on(Method::Ctss, &single(traj_, truth));
    let f1_of = |out: &Vec<Vec<u8>>| evaluate(out, std::slice::from_ref(truth)).f1;
    let pair = traj_.sd_pair().expect("non-empty");
    let reference = ctx
        .stats
        .reference_route(pair)
        .map(|r| r.to_vec())
        .unwrap_or_default();

    let mut out = String::new();
    out.push_str(&format!(
        "## Figure 5 — case study ({}), SD pair ({} -> {})\n\n",
        ctx.city.name(),
        pair.source,
        pair.dest
    ));
    out.push_str(&format!(
        "ground truth spans: {:?}\n",
        traj::extract_subtrajectories(truth)
    ));
    out.push_str(&format!(
        "RL4OASD spans:      {:?}  (F1 = {})\n",
        traj::extract_subtrajectories(&ours[0]),
        f3(f1_of(&ours))
    ));
    out.push_str(&format!(
        "CTSS spans:         {:?}  (F1 = {})\n\n",
        traj::extract_subtrajectories(&ctss[0]),
        f3(f1_of(&ctss))
    ));
    out.push_str("legend: '.' normal route, 'x' ground-truth detour, 'O' RL4OASD detection, 'C' CTSS detection\n\n");
    out.push_str(&render_map(
        &ctx.net, &reference, traj_, truth, &ours[0], &ctss[0],
    ));
    out
}

fn single(t: &traj::MappedTrajectory, truth: &[u8]) -> Dataset {
    let mut ds = Dataset {
        trajectories: vec![traj::MappedTrajectory {
            id: traj::TrajectoryId(0),
            ..t.clone()
        }],
        ground_truth: vec![Some(truth.to_vec())],
        ..Default::default()
    };
    ds.rebuild_index();
    ds
}

/// ASCII map of the case study (the paper's Fig. 5 is a street map; this
/// renders the same information in text).
fn render_map(
    net: &RoadNetwork,
    reference: &[rnet::SegmentId],
    t: &traj::MappedTrajectory,
    truth: &[u8],
    ours: &[u8],
    ctss: &[u8],
) -> String {
    const W: usize = 72;
    const H: usize = 26;
    let mut grid = vec![vec![' '; W]; H];
    let all: Vec<rnet::Point> = reference
        .iter()
        .chain(t.segments.iter())
        .map(|&s| net.segment(s).midpoint())
        .collect();
    let (min_x, max_x) = bounds(all.iter().map(|p| p.x));
    let (min_y, max_y) = bounds(all.iter().map(|p| p.y));
    let place = |p: rnet::Point| -> (usize, usize) {
        let x = ((p.x - min_x) / (max_x - min_x + 1e-9) * (W - 1) as f64) as usize;
        let y = ((p.y - min_y) / (max_y - min_y + 1e-9) * (H - 1) as f64) as usize;
        (H - 1 - y, x)
    };
    for &s in reference {
        let (r, c) = place(net.segment(s).midpoint());
        grid[r][c] = '.';
    }
    for (i, &s) in t.segments.iter().enumerate() {
        let (r, c) = place(net.segment(s).midpoint());
        if truth[i] == 1 {
            grid[r][c] = 'x';
        }
    }
    for (i, &s) in t.segments.iter().enumerate() {
        let (r, c) = place(net.segment(s).midpoint());
        if ctss[i] == 1 {
            grid[r][c] = 'C';
        }
    }
    for (i, &s) in t.segments.iter().enumerate() {
        let (r, c) = place(net.segment(s).midpoint());
        if ours[i] == 1 {
            grid[r][c] = 'O';
        }
    }
    let mut out = String::new();
    for row in grid {
        out.push_str(&row.into_iter().collect::<String>());
        out.push('\n');
    }
    out
}

fn bounds<I: Iterator<Item = f64>>(iter: I) -> (f64, f64) {
    iter.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
        (lo.min(v), hi.max(v))
    })
}

/// Drift experiment context: a city whose route popularity swaps at noon.
pub struct DriftSetup {
    /// Road network.
    pub net: RoadNetwork,
    /// Full (labelled) corpus.
    pub data: Dataset,
    /// Anomaly-heavy labelled test corpus.
    pub test: Dataset,
}

/// Builds the concept-drift corpus (paper §V-G).
pub fn drift_setup(city: City) -> DriftSetup {
    let net = CityBuilder::new(city.net_config()).build();
    let traffic = TrafficConfig {
        num_sd_pairs: 25,
        trajs_per_pair: (160, 240),
        anomaly_ratio: 0.05,
        drift: Some(DriftConfig {
            swap_time: 12.0 * 3600.0,
        }),
        uniform_start_times: true,
        seed: 0xD21F7,
        ..city.traffic_config()
    };
    let sim = TrafficSimulator::new(&net, traffic);
    let generated = sim.generate();
    let data = Dataset::from_generated(&generated);
    let test =
        Dataset::from_generated(&sim.generate_from_pairs(&generated.pairs, (16, 20), 0.35, 0xF167));
    DriftSetup { net, data, test }
}

/// Fig. 6: varying traffic conditions. Returns the report covering
/// (a) F1 vs ξ, (b) training time vs ξ, (c) per-part F1 for P1 vs FT at
/// ξ = 8, (d) per-part fine-tuning time at ξ = 8.
pub fn fig6(setup: &DriftSetup, base: &Rl4oasdConfig, xis: &[usize]) -> String {
    let mut ab = Table::new(["xi", "avg F1 (FT)", "avg fine-tune time per part (s)"]);
    let mut detail_c: Option<Table> = None;
    for &xi in xis {
        let (f1s_p1, f1s_ft, times) = run_drift(setup, base, xi);
        let avg_ft = mean(&f1s_ft);
        let avg_time = mean(&times);
        ab.row([format!("{xi}"), f3(avg_ft), format!("{avg_time:.2}")]);
        if xi == 8 {
            let mut t = Table::new(["Part", "RL4OASD-P1 F1", "RL4OASD-FT F1", "fine-tune (s)"]);
            for k in 0..xi {
                t.row([
                    format!("Part {}", k + 1),
                    f3(f1s_p1[k]),
                    f3(f1s_ft[k]),
                    format!("{:.2}", times[k]),
                ]);
            }
            detail_c = Some(t);
        }
    }
    let mut out = format!(
        "## Figure 6 — detection in varying traffic conditions\n\n\
         ### (a)+(b) average F1 and fine-tuning time vs xi\n\n{}",
        ab.render()
    );
    if let Some(t) = detail_c {
        out.push_str(&format!(
            "\n### (c)+(d) per-part F1 (P1 vs FT) and fine-tune time at xi = 8\n\n{}",
            t.render()
        ));
    }
    out
}

/// Runs the drift protocol for one ξ: returns per-part `(P1 F1, FT F1,
/// fine-tune seconds)`.
pub fn run_drift(
    setup: &DriftSetup,
    base: &Rl4oasdConfig,
    xi: usize,
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let part_of = |t: &traj::MappedTrajectory| part_of_time(t.start_time, xi);
    let part_train: Vec<Dataset> = (0..xi)
        .map(|k| setup.data.filter(|t| part_of(t) == k))
        .collect();
    let part_test: Vec<Dataset> = (0..xi)
        .map(|k| setup.test.filter(|t| part_of(t) == k))
        .collect();
    let cfg = Rl4oasdConfig {
        joint_trajs: base.joint_trajs.min(1000),
        ..base.clone()
    };
    let (p1_model, _) = train_with_dev(&setup.net, &part_train[0], None, &cfg);
    let mut learner = OnlineLearner::new(p1_model.clone());

    let eval_on = |model: &rl4oasd::TrainedModel, data: &Dataset| -> f64 {
        if data.is_empty() {
            return 1.0; // empty part: vacuous
        }
        let mut det = Rl4oasdDetector::new(model, &setup.net);
        let outputs: Vec<Vec<u8>> = data
            .trajectories
            .iter()
            .map(|t| det.label_trajectory(t))
            .collect();
        let truths: Vec<Vec<u8>> = data
            .trajectories
            .iter()
            .map(|t| data.truth(t.id).unwrap().to_vec())
            .collect();
        evaluate(&outputs, &truths).f1
    };

    let mut f1_p1 = Vec::with_capacity(xi);
    let mut f1_ft = Vec::with_capacity(xi);
    let mut times = Vec::with_capacity(xi);
    for k in 0..xi {
        if k > 0 {
            let secs = learner.fine_tune(&setup.net, &part_train[k]);
            times.push(secs);
        } else {
            times.push(0.0);
        }
        f1_p1.push(eval_on(&p1_model, &part_test[k]));
        f1_ft.push(eval_on(&learner.model, &part_test[k]));
    }
    (f1_p1, f1_ft, times)
}

/// Fig. 7: concept-drift case study — a trajectory on the *old* normal
/// route after the swap, labelled by P1 and FT.
pub fn fig7(setup: &DriftSetup, base: &Rl4oasdConfig) -> String {
    let xi = 2; // part 1 = before noon, part 2 = after
    let (f1_p1, f1_ft, _) = run_drift(setup, base, xi);
    format!(
        "## Figure 7 — concept drift case study (route roles swap at noon)\n\n\
         | model | Part 1 F1 | Part 2 F1 |\n|---|---|---|\n\
         | RL4OASD-P1 | {} | {} |\n| RL4OASD-FT | {} | {} |\n\n\
         P1 (trained before the swap) degrades on Part 2 because the old\n\
         normal route has become anomalous and vice versa; FT recovers by\n\
         fine-tuning on newly recorded trajectories.\n",
        f3(f1_p1[0]),
        f3(f1_p1[1]),
        f3(f1_ft[0]),
        f3(f1_ft[1]),
    )
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}
