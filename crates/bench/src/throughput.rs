//! Interleaved-session throughput driver for serving engines.
//!
//! Simulates the fleet workload: `sessions` concurrent trips are kept open
//! at all times; every tick each live trip receives its next road segment
//! and the whole tick is fed to the engine as one `observe_batch` call (so
//! engines with batched nn steps advance everyone in one matrix pass).
//! Trips that reach their destination are closed and immediately replaced
//! by the next trajectory, round-robin over the corpus.

use std::time::Instant;
use traj::{MappedTrajectory, SessionEngine, SessionId};

/// One throughput measurement.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputSample {
    /// Concurrent sessions held open.
    pub sessions: usize,
    /// Total `observe` events processed.
    pub points: u64,
    /// Wall-clock seconds spent inside the engine loop.
    pub seconds: f64,
    /// `points / seconds`.
    pub points_per_sec: f64,
}

struct Lane {
    handle: SessionId,
    traj: usize,
    pos: usize,
}

/// Drives at least `min_points` observe events through `engine` with
/// `sessions` concurrent trips, returning the measured throughput.
///
/// # Panics
/// Panics if `sessions == 0` or `trajs` contains no non-empty trajectory.
pub fn drive_interleaved<E: SessionEngine + ?Sized>(
    engine: &mut E,
    trajs: &[MappedTrajectory],
    sessions: usize,
    min_points: u64,
) -> ThroughputSample {
    assert!(sessions > 0, "need at least one session");
    let trajs: Vec<&MappedTrajectory> = trajs.iter().filter(|t| !t.is_empty()).collect();
    assert!(!trajs.is_empty(), "need at least one non-empty trajectory");

    let started = Instant::now();
    let mut next_traj = 0usize;
    let open_lane = |engine: &mut E, next_traj: &mut usize| {
        let ti = *next_traj % trajs.len();
        *next_traj += 1;
        Lane {
            handle: engine.open(
                trajs[ti].sd_pair().expect("non-empty"),
                trajs[ti].start_time,
            ),
            traj: ti,
            pos: 0,
        }
    };
    let mut lanes: Vec<Lane> = (0..sessions)
        .map(|_| open_lane(engine, &mut next_traj))
        .collect();

    let mut points = 0u64;
    let mut events = Vec::with_capacity(sessions);
    let mut out = Vec::new();
    while points < min_points {
        events.clear();
        for lane in &lanes {
            events.push((lane.handle, trajs[lane.traj].segments[lane.pos]));
        }
        engine.observe_batch(&events, &mut out);
        debug_assert_eq!(out.len(), events.len());
        points += events.len() as u64;
        for lane in lanes.iter_mut() {
            lane.pos += 1;
            if lane.pos == trajs[lane.traj].len() {
                engine.close(lane.handle);
                *lane = open_lane(engine, &mut next_traj);
            }
        }
    }
    for lane in lanes {
        engine.close(lane.handle);
    }
    let seconds = started.elapsed().as_secs_f64();
    ThroughputSample {
        sessions,
        points,
        seconds,
        points_per_sec: points as f64 / seconds.max(1e-12),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnet::SegmentId;
    use traj::detector::AlwaysNormal;
    use traj::{SessionMux, TrajectoryId};

    fn traj(id: u32, len: usize) -> MappedTrajectory {
        MappedTrajectory {
            id: TrajectoryId(id),
            segments: (0..len as u32).map(SegmentId).collect(),
            start_time: 0.0,
        }
    }

    #[test]
    fn driver_processes_and_recycles() {
        let trajs = vec![traj(0, 3), traj(1, 5), traj(2, 0)];
        let mut engine = SessionMux::new(AlwaysNormal::default);
        let sample = drive_interleaved(&mut engine, &trajs, 4, 100);
        assert!(sample.points >= 100);
        assert_eq!(sample.sessions, 4);
        assert!(sample.points_per_sec > 0.0);
        assert_eq!(engine.active_sessions(), 0, "all lanes closed at the end");
    }
}
