//! Interleaved-session throughput driver for serving engines.
//!
//! Simulates the fleet workload: `sessions` concurrent trips are kept open
//! at all times; every tick each live trip receives its next road segment
//! and the whole tick is fed to the engine as one `observe_batch` call (so
//! engines with batched nn steps advance everyone in one matrix pass).
//! Trips that reach their destination are closed and immediately replaced
//! by the next trajectory, round-robin over the corpus.
//!
//! Besides mean throughput, the driver records **tail latency**: in the
//! tick-synchronous model every point of a tick completes when its
//! `observe_batch` call returns, so the per-point latency of a tick is the
//! tick's wall-clock duration. Each sample therefore carries exact
//! (weighted by events per tick) p50/p95/p99 per-point latencies — the
//! numbers an SLO cares about, which a mean hides.

use std::time::Instant;
use traj::{MappedTrajectory, SessionEngine, SessionId};

/// One throughput measurement.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputSample {
    /// Concurrent sessions held open.
    pub sessions: usize,
    /// Total `observe` events processed.
    pub points: u64,
    /// Wall-clock seconds spent inside the engine loop.
    pub seconds: f64,
    /// `points / seconds`.
    pub points_per_sec: f64,
    /// Median per-point latency (microseconds; tick duration, weighted by
    /// the tick's event count).
    pub p50_us: f64,
    /// 95th-percentile per-point latency (microseconds).
    pub p95_us: f64,
    /// 99th-percentile per-point latency (microseconds).
    pub p99_us: f64,
}

/// Exact weighted percentile over `(value, weight)` samples: the smallest
/// value whose cumulative weight reaches `q` of the total. Zero if empty.
pub fn weighted_percentile(samples: &mut [(f64, u64)], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total: u64 = samples.iter().map(|&(_, w)| w).sum();
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for &(value, weight) in samples.iter() {
        seen += weight;
        if seen >= rank {
            return value;
        }
    }
    samples.last().map_or(0.0, |&(v, _)| v)
}

struct Lane {
    handle: SessionId,
    traj: usize,
    pos: usize,
}

/// Drives at least `min_points` observe events through `engine` with
/// `sessions` concurrent trips, returning the measured throughput and
/// per-point latency percentiles.
///
/// # Panics
/// Panics if `sessions == 0` or `trajs` contains no non-empty trajectory.
pub fn drive_interleaved<E: SessionEngine + ?Sized>(
    engine: &mut E,
    trajs: &[MappedTrajectory],
    sessions: usize,
    min_points: u64,
) -> ThroughputSample {
    assert!(sessions > 0, "need at least one session");
    let trajs: Vec<&MappedTrajectory> = trajs.iter().filter(|t| !t.is_empty()).collect();
    assert!(!trajs.is_empty(), "need at least one non-empty trajectory");

    let started = Instant::now();
    let mut next_traj = 0usize;
    let open_lane = |engine: &mut E, next_traj: &mut usize| {
        let ti = *next_traj % trajs.len();
        *next_traj += 1;
        Lane {
            handle: engine.open(
                trajs[ti].sd_pair().expect("non-empty"),
                trajs[ti].start_time,
            ),
            traj: ti,
            pos: 0,
        }
    };
    let mut lanes: Vec<Lane> = (0..sessions)
        .map(|_| open_lane(engine, &mut next_traj))
        .collect();

    let mut points = 0u64;
    let mut events = Vec::with_capacity(sessions);
    let mut out = Vec::new();
    let mut tick_latencies: Vec<(f64, u64)> = Vec::new();
    while points < min_points {
        events.clear();
        for lane in &lanes {
            events.push((lane.handle, trajs[lane.traj].segments[lane.pos]));
        }
        let tick_start = Instant::now();
        engine.observe_batch(&events, &mut out);
        let tick_us = tick_start.elapsed().as_secs_f64() * 1e6;
        tick_latencies.push((tick_us, events.len() as u64));
        debug_assert_eq!(out.len(), events.len());
        points += events.len() as u64;
        for lane in lanes.iter_mut() {
            lane.pos += 1;
            if lane.pos == trajs[lane.traj].len() {
                engine.close(lane.handle);
                *lane = open_lane(engine, &mut next_traj);
            }
        }
    }
    for lane in lanes {
        engine.close(lane.handle);
    }
    let seconds = started.elapsed().as_secs_f64();
    let p50_us = weighted_percentile(&mut tick_latencies, 0.50);
    let p95_us = weighted_percentile(&mut tick_latencies, 0.95);
    let p99_us = weighted_percentile(&mut tick_latencies, 0.99);
    ThroughputSample {
        sessions,
        points,
        seconds,
        points_per_sec: points as f64 / seconds.max(1e-12),
        p50_us,
        p95_us,
        p99_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnet::SegmentId;
    use traj::detector::AlwaysNormal;
    use traj::{SessionMux, TrajectoryId};

    fn traj(id: u32, len: usize) -> MappedTrajectory {
        MappedTrajectory {
            id: TrajectoryId(id),
            segments: (0..len as u32).map(SegmentId).collect(),
            start_time: 0.0,
        }
    }

    #[test]
    fn driver_processes_and_recycles() {
        let trajs = vec![traj(0, 3), traj(1, 5), traj(2, 0)];
        let mut engine = SessionMux::new(AlwaysNormal::default);
        let sample = drive_interleaved(&mut engine, &trajs, 4, 100);
        assert!(sample.points >= 100);
        assert_eq!(sample.sessions, 4);
        assert!(sample.points_per_sec > 0.0);
        assert_eq!(engine.active_sessions(), 0, "all lanes closed at the end");
        // Percentiles are ordered and positive on a real run.
        assert!(sample.p50_us > 0.0);
        assert!(sample.p50_us <= sample.p95_us);
        assert!(sample.p95_us <= sample.p99_us);
    }

    #[test]
    fn weighted_percentile_is_exact() {
        let mut samples = vec![(10.0, 1u64), (20.0, 1), (30.0, 98)];
        assert_eq!(weighted_percentile(&mut samples, 0.01), 10.0);
        assert_eq!(weighted_percentile(&mut samples, 0.02), 20.0);
        assert_eq!(weighted_percentile(&mut samples, 0.5), 30.0);
        assert_eq!(weighted_percentile(&mut samples, 1.0), 30.0);
        assert_eq!(weighted_percentile(&mut [], 0.5), 0.0);
        // Unsorted input is handled (the helper sorts in place).
        let mut unsorted = vec![(5.0, 50u64), (1.0, 50)];
        assert_eq!(weighted_percentile(&mut unsorted, 0.5), 1.0);
        assert_eq!(weighted_percentile(&mut unsorted, 0.51), 5.0);
    }
}
