//! Baseline detectors from the paper's evaluation (§V-A):
//!
//! * [`iboat::Iboat`] — isolation-based online detection with an adaptive
//!   window over historical support \[8\];
//! * [`dbtod::Dbtod`] — probabilistic driving-behaviour model (road level,
//!   turning angle, historical frequency) \[9\];
//! * [`ctss::Ctss`] — continuous trajectory similarity search via discrete
//!   Fréchet distance to a reference route \[10\];
//! * [`vsae`] — the deep generative family of \[11\]: SAE (plain seq2seq
//!   autoencoder), VSAE (variational), GM-VSAE (Gaussian-mixture latent)
//!   and SD-VSAE (single-component fast variant).
//!
//! All of them natively emit per-segment *anomaly scores*; the paper adapts
//! them to the subtrajectory task by thresholding, with thresholds tuned on
//! a labelled dev set. [`scoring::ScoringDetector`] is that native
//! interface and [`scoring::Thresholded`] the adapter implementing
//! [`traj::OnlineDetector`].

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod ctss;
pub mod dbtod;
pub mod iboat;
pub mod scoring;
pub mod session;
pub mod stats;
pub mod vsae;

pub use ctss::Ctss;
pub use dbtod::Dbtod;
pub use iboat::Iboat;
pub use scoring::{ScoringDetector, Thresholded};
pub use session::{
    ctss_engine, dbtod_engine, iboat_engine, ingest_iboat_engine, sharded_ctss_engine,
    sharded_dbtod_engine, sharded_iboat_engine, ShardedBaseline,
};
pub use stats::RouteStats;
pub use vsae::{Seq2SeqDetector, Seq2SeqKind, VsaeConfig};
