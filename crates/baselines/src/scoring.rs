//! Score-based detection interface and the thresholding adapter.

use rnet::SegmentId;
use traj::{MappedTrajectory, OnlineDetector, SdPair};

/// A detector that natively emits per-segment anomaly scores (higher =
/// more anomalous). The paper's baselines are of this kind; RL4OASD is not
/// (it outputs labels directly).
pub trait ScoringDetector {
    /// Method name for tables.
    fn name(&self) -> &'static str;

    /// Starts a new ongoing trajectory.
    fn begin_scoring(&mut self, sd: SdPair, start_time: f64);

    /// Consumes the next segment, returning its anomaly score.
    fn score_next(&mut self, segment: SegmentId) -> f64;

    /// Scores a complete trajectory.
    fn score_trajectory(&mut self, traj: &MappedTrajectory) -> Vec<f64> {
        let Some(sd) = traj.sd_pair() else {
            return Vec::new();
        };
        self.begin_scoring(sd, traj.start_time);
        traj.segments.iter().map(|&s| self.score_next(s)).collect()
    }
}

impl<D: ScoringDetector + ?Sized> ScoringDetector for Box<D> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn begin_scoring(&mut self, sd: SdPair, start_time: f64) {
        (**self).begin_scoring(sd, start_time)
    }
    fn score_next(&mut self, segment: SegmentId) -> f64 {
        (**self).score_next(segment)
    }
}

/// Adapter: a [`ScoringDetector`] plus a threshold, implementing
/// [`OnlineDetector`] (score > threshold ⇒ anomalous). Thresholds are tuned
/// on a labelled dev set with `eval::tune_threshold` by the harness.
pub struct Thresholded<D: ScoringDetector> {
    /// The wrapped scorer.
    pub inner: D,
    /// Decision threshold.
    pub threshold: f64,
    labels: Vec<u8>,
}

impl<D: ScoringDetector> Thresholded<D> {
    /// Wraps `inner` with the given threshold.
    pub fn new(inner: D, threshold: f64) -> Self {
        Thresholded {
            inner,
            threshold,
            labels: Vec::new(),
        }
    }
}

impl<D: ScoringDetector> OnlineDetector for Thresholded<D> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn begin(&mut self, sd: SdPair, start_time: f64) {
        self.labels.clear();
        self.inner.begin_scoring(sd, start_time);
    }

    fn observe(&mut self, segment: SegmentId) -> u8 {
        let score = self.inner.score_next(segment);
        let label = u8::from(score > self.threshold);
        self.labels.push(label);
        label
    }

    fn finish(&mut self) -> Vec<u8> {
        // Endpoints are normal by the problem definition.
        if let Some(first) = self.labels.first_mut() {
            *first = 0;
        }
        if let Some(last) = self.labels.last_mut() {
            *last = 0;
        }
        std::mem::take(&mut self.labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj::TrajectoryId;

    /// Scores the segment id value itself — handy for testing the adapter.
    struct IdScorer;

    impl ScoringDetector for IdScorer {
        fn name(&self) -> &'static str {
            "IdScorer"
        }
        fn begin_scoring(&mut self, _sd: SdPair, _t: f64) {}
        fn score_next(&mut self, segment: SegmentId) -> f64 {
            segment.0 as f64
        }
    }

    #[test]
    fn threshold_splits_scores() {
        let t = MappedTrajectory {
            id: TrajectoryId(0),
            segments: vec![
                SegmentId(1),
                SegmentId(10),
                SegmentId(2),
                SegmentId(9),
                SegmentId(1),
            ],
            start_time: 0.0,
        };
        let mut d = Thresholded::new(IdScorer, 5.0);
        let labels = d.label_trajectory(&t);
        // raw thresholding would give [0,1,0,1,0]; endpoints pinned anyway
        assert_eq!(labels, vec![0, 1, 0, 1, 0]);
    }

    #[test]
    fn endpoints_are_pinned_normal() {
        let t = MappedTrajectory {
            id: TrajectoryId(0),
            segments: vec![SegmentId(100), SegmentId(1), SegmentId(100)],
            start_time: 0.0,
        };
        let mut d = Thresholded::new(IdScorer, 5.0);
        assert_eq!(d.label_trajectory(&t), vec![0, 0, 0]);
    }
}
