//! IBOAT \[8\]: isolation-based online anomalous trajectory detection.
//!
//! The method maintains an *adaptive window* over the latest observed
//! segments and checks the window's **support**: the fraction of historical
//! trajectories (same SD pair) containing the window as a contiguous
//! subsequence. While the support stays above a threshold θ the segments
//! are deemed normal; when it drops below, the current segment is anomalous
//! and the window shrinks to just that segment ("isolating" it from the
//! references). The anomaly score we expose is `1 − support`, so the
//! dev-set-tuned decision threshold plays the role of `1 − θ`.
//!
//! Containment is tracked incrementally: the candidate set holds, for every
//! historical trajectory still matching the window, the positions where the
//! match can continue — O(candidates) per observed segment.

use crate::scoring::ScoringDetector;
use crate::stats::RouteStats;
use rnet::SegmentId;
use std::collections::HashMap;
use std::sync::Arc;
use traj::SdPair;

/// The IBOAT detector.
pub struct Iboat {
    stats: Arc<RouteStats>,
    /// Support level below which the window is reset (paper's θ).
    pub theta: f64,
    // per-trajectory state
    pair: SdPair,
    /// (history index -> next expected positions) of window matches.
    candidates: HashMap<usize, Vec<usize>>,
    history_len: usize,
}

impl Iboat {
    /// Creates an IBOAT detector over historical statistics.
    pub fn new(stats: Arc<RouteStats>, theta: f64) -> Self {
        Iboat {
            stats,
            theta,
            pair: SdPair::default(),
            candidates: HashMap::new(),
            history_len: 0,
        }
    }

    /// Re-seeds the candidate set with all positions of `seg` in every
    /// historical trajectory (window = `[seg]`).
    fn reseed(&mut self, seg: SegmentId) {
        self.candidates.clear();
        for (hi, hist) in self.stats.history(self.pair).iter().enumerate() {
            let continuations: Vec<usize> = hist
                .iter()
                .enumerate()
                .filter(|(_, &s)| s == seg)
                .map(|(p, _)| p + 1)
                .collect();
            if !continuations.is_empty() {
                self.candidates.insert(hi, continuations);
            }
        }
    }

    /// Extends the window with `seg`, keeping only candidates whose match
    /// continues contiguously.
    fn extend(&mut self, seg: SegmentId) {
        let history = self.stats.history(self.pair);
        self.candidates.retain(|&hi, positions| {
            let hist = &history[hi];
            positions.retain_mut(|p| {
                if *p < hist.len() && hist[*p] == seg {
                    *p += 1;
                    true
                } else {
                    false
                }
            });
            !positions.is_empty()
        });
    }

    fn support(&self) -> f64 {
        if self.history_len == 0 {
            return 0.0;
        }
        self.candidates.len() as f64 / self.history_len as f64
    }
}

impl ScoringDetector for Iboat {
    fn name(&self) -> &'static str {
        "IBOAT"
    }

    fn begin_scoring(&mut self, sd: SdPair, _start_time: f64) {
        self.pair = sd;
        self.history_len = self.stats.history(sd).len();
        self.candidates.clear();
    }

    fn score_next(&mut self, segment: SegmentId) -> f64 {
        if self.candidates.is_empty() {
            self.reseed(segment);
        } else {
            self.extend(segment);
        }
        let support = self.support();
        if support < self.theta {
            // isolate: restart the adaptive window at the latest segment
            self.reseed(segment);
        }
        1.0 - support
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj::{Dataset, MappedTrajectory, TrajectoryId};

    /// Builds a corpus where most trajectories follow `0 1 2 3 4` and one
    /// detours `0 1 9 8 4`.
    fn toy() -> (Arc<RouteStats>, MappedTrajectory, MappedTrajectory) {
        let mk = |id: u32, segs: &[u32]| MappedTrajectory {
            id: TrajectoryId(id),
            segments: segs.iter().map(|&s| SegmentId(s)).collect(),
            start_time: 0.0,
        };
        let mut ds = Dataset::default();
        for i in 0..9 {
            ds.trajectories.push(mk(i, &[0, 1, 2, 3, 4]));
            ds.ground_truth.push(None);
        }
        ds.trajectories.push(mk(9, &[0, 1, 9, 8, 4]));
        ds.ground_truth.push(None);
        ds.rebuild_index();
        let stats = Arc::new(RouteStats::fit(&ds));
        (stats, mk(100, &[0, 1, 2, 3, 4]), mk(101, &[0, 1, 9, 8, 4]))
    }

    #[test]
    fn normal_route_has_high_support() {
        let (stats, normal, _) = toy();
        let mut d = Iboat::new(stats, 0.05);
        let scores = d.score_trajectory(&normal);
        // every point supported by >= 9/10 of history
        assert!(scores.iter().all(|&s| s <= 0.11), "{scores:?}");
    }

    #[test]
    fn detour_scores_spike_inside_detour() {
        let (stats, _, detour) = toy();
        let mut d = Iboat::new(stats, 0.05);
        let scores = d.score_trajectory(&detour);
        // positions 2 and 3 (segments 9, 8) supported by only 1/10
        assert!(scores[2] >= 0.89, "{scores:?}");
        assert!(scores[3] >= 0.89, "{scores:?}");
        assert!(scores[0] <= 0.11);
        assert!(scores[1] <= 0.11);
    }

    #[test]
    fn window_resets_after_isolation() {
        let (stats, _, _) = toy();
        // totally unseen segment: support 0 -> isolate; then back on the
        // common path the support recovers (window restarted).
        let t = MappedTrajectory {
            id: TrajectoryId(102),
            segments: [0u32, 77, 2, 3, 4].iter().map(|&s| SegmentId(s)).collect(),
            start_time: 0.0,
        };
        let mut d = Iboat::new(stats, 0.05);
        let scores = d.score_trajectory(&t);
        assert!(scores[1] > 0.99, "unseen segment must have ~no support");
        assert!(
            scores[2] <= 0.11,
            "window must recover after isolation: {scores:?}"
        );
    }

    #[test]
    fn unknown_pair_scores_max() {
        let (stats, _, _) = toy();
        let t = MappedTrajectory {
            id: TrajectoryId(103),
            segments: vec![SegmentId(500), SegmentId(501)],
            start_time: 0.0,
        };
        let mut d = Iboat::new(stats, 0.05);
        let scores = d.score_trajectory(&t);
        assert!(scores.iter().all(|&s| s == 1.0));
    }
}
