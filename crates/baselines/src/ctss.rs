//! CTSS \[10\]: continuous trajectory similarity search for online outlier
//! detection.
//!
//! At every timestamp the method computes the **discrete Fréchet distance**
//! between the reference route (the most popular route of the SD pair) and
//! the current partial route, and alerts when the deviation exceeds a
//! threshold. We maintain the Fréchet dynamic-programming row incrementally
//! (one row per observed segment, O(reference length) per point — the
//! quadratic behaviour the paper's efficiency study shows). The Fréchet
//! value `min_j F(i, j)` is monotone in `i` (a past deviation never
//! shrinks), which matches CTSS's *alert* semantics but would flag every
//! segment after a detour rejoins; for the paper's per-segment adaptation
//! the exposed score is therefore the **current corridor deviation**
//! (distance from the segment to the nearest reference point), with the
//! Fréchet row retained for the alert value ([`Ctss::frechet_deviation`]).

use crate::scoring::ScoringDetector;
use crate::stats::RouteStats;
use rnet::{Point, RoadNetwork, SegmentId};
use std::sync::Arc;
use traj::SdPair;

/// The CTSS detector.
pub struct Ctss<'a> {
    net: &'a RoadNetwork,
    stats: Arc<RouteStats>,
    // per-trajectory state
    reference: Vec<Point>,
    /// Current DP row: `row[j] = F(i, j)` for the last observed position.
    row: Vec<f64>,
    started: bool,
}

impl<'a> Ctss<'a> {
    /// Creates a CTSS detector over historical statistics.
    pub fn new(net: &'a RoadNetwork, stats: Arc<RouteStats>) -> Self {
        Ctss {
            net,
            stats,
            reference: Vec::new(),
            row: Vec::new(),
            started: false,
        }
    }

    fn midpoint(&self, seg: SegmentId) -> Point {
        self.net.segment(seg).midpoint()
    }
}

impl ScoringDetector for Ctss<'_> {
    fn name(&self) -> &'static str {
        "CTSS"
    }

    fn begin_scoring(&mut self, sd: SdPair, _start_time: f64) {
        self.reference = self
            .stats
            .reference_route(sd)
            .map(|route| route.iter().map(|&s| self.midpoint(s)).collect())
            .unwrap_or_default();
        self.row.clear();
        self.started = false;
    }

    fn score_next(&mut self, segment: SegmentId) -> f64 {
        if self.reference.is_empty() {
            return f64::INFINITY; // no reference: maximal deviation
        }
        let p = self.midpoint(segment);
        let m = self.reference.len();
        let dist = |j: usize| p.dist(&self.reference[j]);
        if !self.started {
            // first row: F(0, j) = max over coupling forced through prefix
            self.row = Vec::with_capacity(m);
            let mut running = 0.0f64;
            for j in 0..m {
                running = if j == 0 {
                    dist(0)
                } else {
                    running.max(dist(j))
                };
                self.row.push(running);
            }
            self.started = true;
        } else {
            // next row: F(i, j) = max(d(i, j), min(F(i-1,j), F(i-1,j-1), F(i,j-1)))
            let prev = std::mem::take(&mut self.row);
            let mut next = Vec::with_capacity(m);
            for j in 0..m {
                let best_prev = if j == 0 {
                    prev[0]
                } else {
                    prev[j].min(prev[j - 1]).min(next[j - 1])
                };
                next.push(best_prev.max(dist(j)));
            }
            self.row = next;
        }
        // per-segment adaptation: deviation from the reference corridor
        self.reference
            .iter()
            .map(|r| p.dist(r))
            .fold(f64::INFINITY, f64::min)
    }
}

impl Ctss<'_> {
    /// The running discrete-Fréchet deviation of the partial route against
    /// the best reference prefix (CTSS's trajectory-level alert value).
    pub fn frechet_deviation(&self) -> f64 {
        self.row.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnet::{CityBuilder, CityConfig};
    use traj::{Dataset, RouteKind, TrafficConfig, TrafficSimulator};

    fn setup(
        seed: u64,
    ) -> (
        rnet::RoadNetwork,
        traj::generator::GeneratedTraffic,
        Arc<RouteStats>,
    ) {
        let net = CityBuilder::new(CityConfig::tiny(seed)).build();
        let cfg = TrafficConfig {
            num_sd_pairs: 3,
            trajs_per_pair: (40, 50),
            anomaly_ratio: 0.08,
            ..TrafficConfig::tiny(seed)
        };
        let data = TrafficSimulator::new(&net, cfg).generate();
        let ds = Dataset::from_generated(&data);
        let stats = Arc::new(RouteStats::fit(&ds));
        (net, data, stats)
    }

    #[test]
    fn reference_route_scores_low() {
        let (net, data, stats) = setup(1);
        let mut d = Ctss::new(&net, Arc::clone(&stats));
        // score the reference route itself: deviation stays ~0
        for p in &data.pairs {
            let reference = stats.reference_route(p.pair).unwrap().to_vec();
            let t = traj::MappedTrajectory {
                id: traj::TrajectoryId(0),
                segments: reference,
                start_time: 0.0,
            };
            let scores = d.score_trajectory(&t);
            assert!(scores.iter().all(|&s| s < 1.0), "{scores:?}");
        }
    }

    #[test]
    fn detours_deviate_substantially() {
        let (net, data, stats) = setup(2);
        let mut d = Ctss::new(&net, Arc::clone(&stats));
        let mut found = false;
        for p in &data.pairs {
            for r in &p.routes {
                if r.kind == RouteKind::Detour {
                    let t = traj::MappedTrajectory {
                        id: traj::TrajectoryId(0),
                        segments: r.segments.clone(),
                        start_time: 0.0,
                    };
                    let scores = d.score_trajectory(&t);
                    let max = scores.iter().copied().fold(0.0f64, f64::max);
                    // a detour leaves the reference corridor by at least a
                    // block (~100 m)
                    assert!(max > 50.0, "max deviation {max} too small");
                    found = true;
                }
            }
        }
        assert!(found);
    }

    #[test]
    fn unknown_pair_scores_infinite() {
        let (net, _, stats) = setup(3);
        let mut d = Ctss::new(&net, stats);
        let t = traj::MappedTrajectory {
            id: traj::TrajectoryId(0),
            segments: vec![SegmentId(0), SegmentId(1)],
            start_time: 0.0,
        };
        let scores = d.score_trajectory(&t);
        assert!(scores.iter().all(|s| s.is_infinite()));
    }

    #[test]
    fn score_recovers_after_detour_rejoins() {
        // The per-segment corridor deviation must fall back near zero once
        // the detour rejoins the reference (unlike the monotone Fréchet
        // alert value).
        let (net, data, stats) = setup(4);
        let mut d = Ctss::new(&net, Arc::clone(&stats));
        for p in &data.pairs {
            for r in &p.routes {
                if let Some((a, b)) = r.detour_span {
                    if b + 2 >= r.segments.len() {
                        continue;
                    }
                    let t = traj::MappedTrajectory {
                        id: traj::TrajectoryId(0),
                        segments: r.segments.clone(),
                        start_time: 0.0,
                    };
                    let scores = d.score_trajectory(&t);
                    let peak = (a..=b).map(|k| scores[k]).fold(0.0f64, f64::max);
                    let tail = *scores.last().unwrap();
                    assert!(
                        tail < peak || peak < 60.0,
                        "tail {tail} should recover below detour peak {peak}"
                    );
                }
            }
        }
    }

    #[test]
    fn frechet_alert_is_monotone() {
        let (net, data, stats) = setup(5);
        let mut d = Ctss::new(&net, Arc::clone(&stats));
        let p = &data.pairs[0];
        let r = &p.routes[p.routes.len() - 1];
        d.begin_scoring(p.pair, 0.0);
        let mut prev = 0.0f64;
        for &s in &r.segments {
            d.score_next(s);
            let alert = d.frechet_deviation();
            assert!(alert >= prev - 1e-9, "Fréchet alert must be monotone");
            prev = alert;
        }
    }
}
