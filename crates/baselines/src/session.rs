//! Session-engine constructors for the baselines.
//!
//! Every baseline scores trajectories through [`crate::ScoringDetector`] and
//! becomes an [`traj::OnlineDetector`] via [`crate::Thresholded`]; here each
//! gains the fleet-scale [`traj::SessionEngine`] API through
//! [`traj::SessionMux`], which gives each session its own thresholded
//! detector value. The heavy fitted state ([`RouteStats`], trained seq2seq
//! weights) stays shared behind `Arc`s, so per-session values are cheap and
//! per-session labels are identical to the per-trajectory path by
//! construction.

use crate::ctss::Ctss;
use crate::dbtod::Dbtod;
use crate::iboat::Iboat;
use crate::scoring::Thresholded;
use crate::stats::RouteStats;
use rnet::RoadNetwork;
use std::sync::Arc;
use traj::{IngestConfig, IngestFrontDoor, SessionMux, Sharded};

/// A shard-parallel baseline engine: N independent [`SessionMux`] shards
/// behind the shared fitted statistics, driven tick-parallel by
/// [`traj::Sharded`] exactly like the RL4OASD `ShardedEngine`. Labels are
/// byte-identical for every shard count (the muxes already make each
/// session independent).
pub type ShardedBaseline<D, F> = Sharded<SessionMux<D, F>>;

/// Session engine over IBOAT with the given support threshold `theta` and
/// decision threshold.
pub fn iboat_engine(
    stats: Arc<RouteStats>,
    theta: f64,
    threshold: f64,
) -> SessionMux<Thresholded<Iboat>, impl FnMut() -> Thresholded<Iboat>> {
    SessionMux::new(move || Thresholded::new(Iboat::new(Arc::clone(&stats), theta), threshold))
}

/// Session engine over DBTOD with fitted `weights` and the given decision
/// threshold.
pub fn dbtod_engine<'a>(
    net: &'a RoadNetwork,
    stats: Arc<RouteStats>,
    weights: [f64; 6],
    threshold: f64,
) -> SessionMux<Thresholded<Dbtod<'a>>, impl FnMut() -> Thresholded<Dbtod<'a>>> {
    SessionMux::new(move || {
        let mut d = Dbtod::new(net, Arc::clone(&stats));
        d.weights = weights;
        Thresholded::new(d, threshold)
    })
}

/// Session engine over CTSS with the given deviation threshold (metres).
pub fn ctss_engine<'a>(
    net: &'a RoadNetwork,
    stats: Arc<RouteStats>,
    threshold: f64,
) -> SessionMux<Thresholded<Ctss<'a>>, impl FnMut() -> Thresholded<Ctss<'a>>> {
    SessionMux::new(move || Thresholded::new(Ctss::new(net, Arc::clone(&stats)), threshold))
}

/// Async ingestion front door over IBOAT: `shards` independent muxes
/// behind the shared fitted statistics, each owned by a persistent worker
/// thread and fed through a bounded ingress queue (the generic
/// [`traj::IngestFrontDoor`] combinator — exactly the wiring the RL4OASD
/// `IngestEngine` uses). Per-session labels are byte-identical to
/// [`iboat_engine`] for any flush policy.
///
/// (DBTOD and CTSS borrow the road network and therefore cannot cross the
/// `'static` worker-thread boundary yet; they stay on the synchronous
/// sharded path.)
pub fn ingest_iboat_engine(
    stats: Arc<RouteStats>,
    theta: f64,
    threshold: f64,
    shards: usize,
    config: IngestConfig,
) -> IngestFrontDoor<SessionMux<Thresholded<Iboat>, impl FnMut() -> Thresholded<Iboat>>> {
    IngestFrontDoor::build(
        shards,
        |_| iboat_engine(Arc::clone(&stats), theta, threshold),
        config,
    )
}

/// Sharded session engine over IBOAT (see [`iboat_engine`]).
pub fn sharded_iboat_engine(
    stats: Arc<RouteStats>,
    theta: f64,
    threshold: f64,
    shards: usize,
) -> ShardedBaseline<Thresholded<Iboat>, impl FnMut() -> Thresholded<Iboat>> {
    Sharded::build(shards, |_| {
        iboat_engine(Arc::clone(&stats), theta, threshold)
    })
}

/// Sharded session engine over DBTOD (see [`dbtod_engine`]).
pub fn sharded_dbtod_engine<'a>(
    net: &'a RoadNetwork,
    stats: Arc<RouteStats>,
    weights: [f64; 6],
    threshold: f64,
    shards: usize,
) -> ShardedBaseline<Thresholded<Dbtod<'a>>, impl FnMut() -> Thresholded<Dbtod<'a>>> {
    Sharded::build(shards, |_| {
        dbtod_engine(net, Arc::clone(&stats), weights, threshold)
    })
}

/// Sharded session engine over CTSS (see [`ctss_engine`]).
pub fn sharded_ctss_engine<'a>(
    net: &'a RoadNetwork,
    stats: Arc<RouteStats>,
    threshold: f64,
    shards: usize,
) -> ShardedBaseline<Thresholded<Ctss<'a>>, impl FnMut() -> Thresholded<Ctss<'a>>> {
    Sharded::build(shards, |_| ctss_engine(net, Arc::clone(&stats), threshold))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnet::{CityBuilder, CityConfig};
    use traj::{Dataset, OnlineDetector, SessionEngine, TrafficConfig, TrafficSimulator};

    fn setup() -> (RoadNetwork, Dataset, Arc<RouteStats>) {
        let net = CityBuilder::new(CityConfig::tiny(77)).build();
        let cfg = TrafficConfig {
            num_sd_pairs: 3,
            trajs_per_pair: (20, 30),
            ..TrafficConfig::tiny(77)
        };
        let ds = Dataset::from_generated(&TrafficSimulator::new(&net, cfg).generate());
        let stats = Arc::new(RouteStats::fit(&ds));
        (net, ds, stats)
    }

    #[test]
    fn interleaved_baseline_sessions_match_sequential() {
        let (net, ds, stats) = setup();
        let trajs: Vec<_> = ds.trajectories.iter().take(12).cloned().collect();

        let mut engines: Vec<Box<dyn SessionEngine + '_>> = vec![
            Box::new(iboat_engine(Arc::clone(&stats), 0.05, 0.5)),
            Box::new(dbtod_engine(&net, Arc::clone(&stats), [1.0; 6], 2.0)),
            Box::new(ctss_engine(&net, Arc::clone(&stats), 150.0)),
        ];
        let mut sequential: Vec<Box<dyn OnlineDetector + '_>> = vec![
            Box::new(Thresholded::new(Iboat::new(Arc::clone(&stats), 0.05), 0.5)),
            Box::new({
                let mut d = Dbtod::new(&net, Arc::clone(&stats));
                d.weights = [1.0; 6];
                Thresholded::new(d, 2.0)
            }),
            Box::new(Thresholded::new(Ctss::new(&net, Arc::clone(&stats)), 150.0)),
        ];

        for (engine, detector) in engines.iter_mut().zip(&mut sequential) {
            let expected: Vec<Vec<u8>> =
                trajs.iter().map(|t| detector.label_trajectory(t)).collect();
            let handles: Vec<_> = trajs
                .iter()
                .map(|t| engine.open(t.sd_pair().unwrap(), t.start_time))
                .collect();
            let max_len = trajs.iter().map(|t| t.len()).max().unwrap();
            let mut out = Vec::new();
            for tick in 0..max_len {
                let events: Vec<_> = trajs
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| tick < t.len())
                    .map(|(k, t)| (handles[k], t.segments[tick]))
                    .collect();
                engine.observe_batch(&events, &mut out);
            }
            let got: Vec<Vec<u8>> = handles.iter().map(|&h| engine.close(h)).collect();
            assert_eq!(
                got,
                expected,
                "{} interleaving changed labels",
                engine.engine_name()
            );
        }
    }
}
