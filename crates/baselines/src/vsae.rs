//! The deep generative baseline family of GM-VSAE \[11\]: SAE, VSAE,
//! GM-VSAE and SD-VSAE.
//!
//! All four detect anomalies via a *generation scheme*: a sequence decoder
//! is trained to generate normal routes, and a trajectory's per-point
//! anomaly score is the negative log-likelihood of each arriving segment
//! under the decoder. The variants differ in how the latent route
//! representation is obtained:
//!
//! * **SAE** — a plain seq2seq autoencoder: a GRU encoder consumes the
//!   observed prefix and the decoder re-scores the prefix from the encoding
//!   (the "scans the trajectory twice" structure the paper's efficiency
//!   study attributes to SAE — O(prefix) work per point);
//! * **VSAE** — a variational autoencoder whose posterior is conditioned on
//!   the trip's SD pair, with a single-Gaussian prior; the latent is
//!   inferred once per trip, so scoring is O(1) per point;
//! * **GM-VSAE** — the prior is a mixture of `K` learned Gaussian
//!   components (kinds of normal routes); at inference a decoder state is
//!   maintained *per component* and the score is the best (minimum) NLL
//!   across components — K× the per-point work;
//! * **SD-VSAE** — the fast variant: only the max-responsibility component
//!   is decoded (the paper's "SD module" that outputs one normal-route
//!   representation).
//!
//! Simplifications vs \[11\] are documented in DESIGN.md §7: the posterior is
//! conditioned on the SD-pair embedding rather than a full trajectory
//! encoder (GM-VSAE's online mode likewise infers the route representation
//! before scoring), and the mixture KL uses the nearest component.

use crate::scoring::ScoringDetector;
use nn::ops;
use nn::{Embedding, GruCell, GruScratch, Linear, PackedGru, PackedLinear, Param};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnet::SegmentId;
use traj::{Dataset, SdPair};

/// Which member of the family to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Seq2SeqKind {
    /// Plain seq2seq autoencoder.
    Sae,
    /// Variational autoencoder with a single Gaussian prior.
    Vsae,
    /// Gaussian-mixture prior with this many components; all components
    /// decoded at inference.
    GmVsae(usize),
    /// Gaussian-mixture prior; only the best component decoded.
    SdVsae(usize),
}

impl Seq2SeqKind {
    fn components(self) -> usize {
        match self {
            Seq2SeqKind::Sae | Seq2SeqKind::Vsae => 1,
            Seq2SeqKind::GmVsae(k) | Seq2SeqKind::SdVsae(k) => k.max(1),
        }
    }

    fn is_variational(self) -> bool {
        !matches!(self, Seq2SeqKind::Sae)
    }

    /// Method name for tables.
    pub fn name(self) -> &'static str {
        match self {
            Seq2SeqKind::Sae => "SAE",
            Seq2SeqKind::Vsae => "VSAE",
            Seq2SeqKind::GmVsae(_) => "GM-VSAE",
            Seq2SeqKind::SdVsae(_) => "SD-VSAE",
        }
    }
}

/// Hyperparameters of the family.
#[derive(Debug, Clone, PartialEq)]
pub struct VsaeConfig {
    /// Segment embedding dimension.
    pub embed_dim: usize,
    /// GRU hidden units.
    pub hidden_dim: usize,
    /// Latent dimension.
    pub latent_dim: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Training epochs over the (sub)sampled corpus.
    pub epochs: usize,
    /// Maximum number of training trajectories (subsampled beyond this).
    pub max_train: usize,
    /// KL weight β.
    pub beta: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for VsaeConfig {
    fn default() -> Self {
        VsaeConfig {
            embed_dim: 24,
            hidden_dim: 32,
            latent_dim: 16,
            lr: 0.005,
            epochs: 2,
            max_train: 1500,
            beta: 0.05,
            seed: 0xAE,
        }
    }
}

/// A trained seq2seq generative detector.
#[derive(Clone)]
pub struct Seq2SeqDetector {
    kind: Seq2SeqKind,
    config: VsaeConfig,
    embed: Embedding,
    /// Posterior head over `[e_src ; e_dst]` → `(mu, logvar)` (variational
    /// kinds only).
    sd_head: Linear,
    /// Mixture component means, `K × latent`.
    comp_means: Param,
    /// Encoder (SAE only).
    encoder: GruCell,
    /// Latent → initial decoder state.
    dec_init: Linear,
    decoder: GruCell,
    /// Decoder state → vocabulary logits.
    out: Linear,
    /// Packed inference weights, built once per trained model (lazily at
    /// scoring time, invalidated by [`Seq2SeqDetector::train_step`] and
    /// [`Seq2SeqDetector::copy_weights_from`]) so the per-point scoring
    /// path never repacks and never touches the raw matrices.
    packed: Option<PackedSeq2Seq>,
    /// Reusable scoring buffers (GRU scratch, vocabulary logits, decoder
    /// state ping-pong) — the per-point path allocates nothing once warm.
    scratch: ScoreScratch,
    // ---- per-trajectory scoring state ----
    dec_states: Vec<Vec<f32>>,
    enc_state: Vec<f32>,
    prefix: Vec<SegmentId>,
    prev_token: Option<SegmentId>,
}

/// The packed hot-path weights of the scoring loop: the decoder GRU and
/// the (large, `vocab × hidden`) output head dominate per-point cost; the
/// encoder and `dec_init` run per point for SAE's re-decode scheme.
#[derive(Clone)]
struct PackedSeq2Seq {
    encoder: PackedGru,
    dec_init: PackedLinear,
    decoder: PackedGru,
    out: PackedLinear,
}

impl PackedSeq2Seq {
    fn of(d: &Seq2SeqDetector) -> Self {
        PackedSeq2Seq {
            encoder: PackedGru::of(&d.encoder),
            dec_init: PackedLinear::of(&d.dec_init),
            decoder: PackedGru::of(&d.decoder),
            out: PackedLinear::of(&d.out),
        }
    }

    /// Latent → initial decoder state (`tanh(dec_init(z))`) into `out`.
    fn dec_state(&self, z: &[f32], out: &mut Vec<f32>) {
        out.clear();
        out.resize(self.dec_init.out_dim(), 0.0);
        self.dec_init.infer(z, out);
        out.iter_mut().for_each(|v| *v = v.tanh());
    }

    /// NLL of `token` under the decoder state; the advanced state is
    /// written into `next`. Allocation-free: the GRU scratch and the
    /// vocabulary-sized logits buffer are reused across points.
    #[allow(clippy::too_many_arguments)]
    fn step_nll(
        &self,
        embed: &Embedding,
        gru: &mut GruScratch,
        logits: &mut Vec<f32>,
        state: &[f32],
        prev: SegmentId,
        token: SegmentId,
        next: &mut Vec<f32>,
    ) -> f64 {
        self.decoder
            .infer_step(embed.lookup(prev.idx()), state, next, gru);
        logits.clear();
        logits.resize(self.out.out_dim(), 0.0);
        self.out.infer(next, logits);
        ops::softmax_inplace(logits);
        -(logits[token.idx()].max(1e-12).ln() as f64)
    }
}

/// Reusable buffers of the scoring loop; see
/// [`Seq2SeqDetector::score_next`].
#[derive(Clone, Default)]
struct ScoreScratch {
    gru: GruScratch,
    logits: Vec<f32>,
    /// Current / next decoder state ping-pong (SAE re-decode walk, and the
    /// per-component advance's swap partner).
    state_a: Vec<f32>,
    state_b: Vec<f32>,
    /// SAE's truncated/padded latent.
    latent: Vec<f32>,
}

impl Seq2SeqDetector {
    /// Builds an untrained model for a vocabulary of `vocab` segments.
    pub fn new(kind: Seq2SeqKind, vocab: usize, config: VsaeConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let k = kind.components();
        Seq2SeqDetector {
            kind,
            embed: Embedding::new(vocab, config.embed_dim, &mut rng),
            sd_head: Linear::new(2 * config.embed_dim, 2 * config.latent_dim, &mut rng),
            comp_means: nn::init::uniform(k, config.latent_dim, 0.5, &mut rng),
            encoder: GruCell::new(config.embed_dim, config.hidden_dim, &mut rng),
            dec_init: Linear::new(config.latent_dim, config.hidden_dim, &mut rng),
            decoder: GruCell::new(config.embed_dim, config.hidden_dim, &mut rng),
            out: Linear::new(config.hidden_dim, vocab, &mut rng),
            packed: None,
            scratch: ScoreScratch::default(),
            dec_states: Vec::new(),
            enc_state: Vec::new(),
            prefix: Vec::new(),
            prev_token: None,
            config,
        }
    }

    /// The model kind.
    pub fn kind(&self) -> Seq2SeqKind {
        self.kind
    }

    /// Copies the trained weights from another detector of compatible
    /// shape. Used to share one trained GM-VSAE across the GM/SD inference
    /// variants (SD-VSAE is an inference-time fast version of the same
    /// model in \[11\]).
    ///
    /// # Panics
    /// Panics on vocabulary or dimension mismatch.
    pub fn copy_weights_from(&mut self, other: &Seq2SeqDetector) {
        assert_eq!(self.embed.vocab(), other.embed.vocab(), "vocab mismatch");
        assert_eq!(self.config.embed_dim, other.config.embed_dim);
        assert_eq!(self.config.hidden_dim, other.config.hidden_dim);
        assert_eq!(self.config.latent_dim, other.config.latent_dim);
        self.embed = other.embed.clone();
        self.sd_head = other.sd_head.clone();
        self.encoder = other.encoder.clone();
        self.dec_init = other.dec_init.clone();
        self.decoder = other.decoder.clone();
        self.out = other.out.clone();
        self.packed = None; // weights changed; repack lazily at scoring time
                            // Mixture means only when both sides have the same component count;
                            // non-mixture kinds keep their (unused) means.
        if self.comp_means.rows == other.comp_means.rows {
            self.comp_means = other.comp_means.clone();
        }
    }

    /// Posterior `(mu, logvar)` from the SD-pair embedding.
    fn posterior(&self, sd: SdPair) -> (Vec<f32>, Vec<f32>) {
        let e = ops::concat(
            self.embed.lookup(sd.source.idx()),
            self.embed.lookup(sd.dest.idx()),
        );
        let mut both = vec![0.0; 2 * self.config.latent_dim];
        self.sd_head.infer(&e, &mut both);
        let (mu, logvar) = both.split_at(self.config.latent_dim);
        (mu.to_vec(), logvar.to_vec())
    }

    /// Index of the component nearest to `mu` (max responsibility under
    /// equal mixing weights and unit covariances).
    fn best_component(&self, mu: &[f32]) -> usize {
        let k = self.comp_means.rows;
        (0..k)
            .min_by(|&a, &b| {
                let da = dist_sq(self.comp_means.row(a), mu);
                let db = dist_sq(self.comp_means.row(b), mu);
                da.partial_cmp(&db).unwrap()
            })
            .unwrap_or(0)
    }

    fn dec_state_from_latent(&self, z: &[f32]) -> Vec<f32> {
        let mut h = vec![0.0; self.config.hidden_dim];
        self.dec_init.infer(z, &mut h);
        h.iter_mut().for_each(|v| *v = v.tanh());
        h
    }

    // ---- training ------------------------------------------------------

    /// Trains on the corpus (teacher forcing; Adam).
    pub fn fit(&mut self, data: &Dataset) {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xF1);
        let mut ids: Vec<usize> = (0..data.len()).collect();
        use rand::seq::SliceRandom;
        ids.shuffle(&mut rng);
        ids.truncate(self.config.max_train);
        for _ in 0..self.config.epochs {
            for &id in &ids {
                let t = &data.trajectories[id];
                if t.len() >= 2 {
                    self.train_step(&t.segments, t.sd_pair().expect("non-empty"), &mut rng);
                }
            }
        }
    }

    /// One training step; returns the per-token CE loss.
    pub fn train_step(&mut self, segs: &[SegmentId], sd: SdPair, rng: &mut StdRng) -> f32 {
        self.packed = None; // weights are about to change
        self.zero_grad();
        let latent = self.config.latent_dim;
        let n = segs.len();

        // 1. latent
        let (z, enc_ctxs, sd_ctx, mu, logvar, eps) = if self.kind.is_variational() {
            let e = ops::concat(
                self.embed.lookup(sd.source.idx()),
                self.embed.lookup(sd.dest.idx()),
            );
            let (both, ctx) = self.sd_head.forward(&e);
            let (mu, logvar) = both.split_at(latent);
            let eps: Vec<f32> = (0..latent).map(|_| gauss(rng)).collect();
            let z: Vec<f32> = (0..latent)
                .map(|i| mu[i] + eps[i] * (0.5 * logvar[i]).exp())
                .collect();
            (z, Vec::new(), Some(ctx), mu.to_vec(), logvar.to_vec(), eps)
        } else {
            // SAE: encode the full sequence.
            let mut h = vec![0.0; self.config.hidden_dim];
            let mut ctxs = Vec::with_capacity(n);
            for &s in segs {
                let (hn, ctx) = self.encoder.forward(self.embed.lookup(s.idx()), &h);
                ctxs.push(ctx);
                h = hn;
            }
            // SAE's "latent" is the encoder state projected to latent size
            // via dec_init directly; pad/truncate to latent dim.
            let mut z = h.clone();
            z.resize(latent, 0.0);
            (z, ctxs, None, Vec::new(), Vec::new(), Vec::new())
        };

        // 2. decoder init
        let (h0_pre, init_ctx) = self.dec_init.forward(&z);
        let h0: Vec<f32> = h0_pre.iter().map(|v| v.tanh()).collect();

        // 3. teacher-forced decode: predict segs[t+1] from segs[t].
        let mut state = h0.clone();
        let mut dec_ctxs = Vec::with_capacity(n - 1);
        let mut out_ctxs = Vec::with_capacity(n - 1);
        let mut probs_list = Vec::with_capacity(n - 1);
        let mut loss = 0.0f32;
        for t in 0..n - 1 {
            let x = self.embed.lookup(segs[t].idx());
            let (h, gctx) = self.decoder.forward(x, &state);
            let (mut logits, octx) = self.out.forward(&h);
            ops::softmax_inplace(&mut logits);
            loss += ops::cross_entropy(&logits, segs[t + 1].idx());
            probs_list.push(logits);
            dec_ctxs.push(gctx);
            out_ctxs.push(octx);
            state = h;
        }
        let steps = (n - 1) as f32;
        loss /= steps;

        // 4. backward
        let mut dh_next = vec![0.0f32; self.config.hidden_dim];
        for t in (0..n - 1).rev() {
            let mut dlogits = vec![0.0f32; self.embed.vocab()];
            ops::cross_entropy_softmax_grad(&probs_list[t], segs[t + 1].idx(), &mut dlogits);
            for g in &mut dlogits {
                *g /= steps;
            }
            let mut dh = self.out.backward(&out_ctxs[t], &dlogits);
            for (a, b) in dh.iter_mut().zip(&dh_next) {
                *a += b;
            }
            let (dx, dh_prev) = self.decoder.backward(&dec_ctxs[t], &dh);
            self.embed.backward(segs[t].idx(), &dx);
            dh_next = dh_prev;
        }
        // through tanh into dec_init
        let dh0_pre: Vec<f32> = dh_next
            .iter()
            .zip(&h0)
            .map(|(d, h)| d * (1.0 - h * h))
            .collect();
        let dz = self.dec_init.backward(&init_ctx, &dh0_pre);

        // 5. latent path backward (+ KL for variational kinds)
        if self.kind.is_variational() {
            let k_best = self.best_component(&mu);
            let m = self.comp_means.row(k_best).to_vec();
            let beta = self.config.beta;
            let mut dboth = vec![0.0f32; 2 * latent];
            for i in 0..latent {
                let sigma = (0.5 * logvar[i]).exp();
                // reconstruction path: z = mu + eps*sigma
                dboth[i] += dz[i];
                dboth[latent + i] += dz[i] * eps[i] * 0.5 * sigma;
                // KL(N(mu, sigma^2) || N(m, 1)) per-dim:
                // 0.5 (sigma^2 + (mu-m)^2 - 1 - ln sigma^2)
                dboth[i] += beta * (mu[i] - m[i]);
                dboth[latent + i] += beta * 0.5 * (sigma * sigma - 1.0);
                // component mean gradient
                self.comp_means.grad_row_mut(k_best)[i] += beta * (m[i] - mu[i]);
            }
            let de = self
                .sd_head
                .backward(sd_ctx.as_ref().expect("variational ctx"), &dboth);
            let (de_s, de_d) = de.split_at(self.config.embed_dim);
            self.embed.backward(sd.source.idx(), de_s);
            self.embed.backward(sd.dest.idx(), de_d);
        } else {
            // SAE: push dz back through the encoder (z was the truncated
            // encoder state).
            let mut dh = vec![0.0f32; self.config.hidden_dim];
            let k = latent.min(self.config.hidden_dim);
            dh[..k].copy_from_slice(&dz[..k]);
            for (t, ctx) in enc_ctxs.iter().enumerate().rev() {
                let (dx, dh_prev) = self.encoder.backward(ctx, &dh);
                self.embed.backward(segs[t].idx(), &dx);
                dh = dh_prev;
            }
        }

        // 6. step
        let lr = self.config.lr;
        let mut params = self.params_mut();
        nn::param::clip_global_norm(&mut params, 5.0);
        for p in params {
            p.adam_step(lr);
        }
        loss
    }

    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = Vec::new();
        v.extend(self.embed.params_mut());
        v.extend(self.sd_head.params_mut());
        v.push(&mut self.comp_means);
        v.extend(self.encoder.params_mut());
        v.extend(self.dec_init.params_mut());
        v.extend(self.decoder.params_mut());
        v.extend(self.out.params_mut());
        v
    }
}

impl ScoringDetector for Seq2SeqDetector {
    fn name(&self) -> &'static str {
        self.kind.name()
    }

    fn begin_scoring(&mut self, sd: SdPair, _start_time: f64) {
        if self.packed.is_none() {
            self.packed = Some(PackedSeq2Seq::of(self));
        }
        self.prefix.clear();
        self.prev_token = None;
        match self.kind {
            Seq2SeqKind::Sae => {
                self.enc_state = vec![0.0; self.config.hidden_dim];
                self.dec_states.clear();
            }
            Seq2SeqKind::Vsae => {
                let (mu, _) = self.posterior(sd);
                self.dec_states = vec![self.dec_state_from_latent(&mu)];
            }
            Seq2SeqKind::GmVsae(_) => {
                // one decoder state per mixture component
                self.dec_states = (0..self.comp_means.rows)
                    .map(|k| self.dec_state_from_latent(self.comp_means.row(k)))
                    .collect();
            }
            Seq2SeqKind::SdVsae(_) => {
                let (mu, _) = self.posterior(sd);
                let k = self.best_component(&mu);
                self.dec_states = vec![self.dec_state_from_latent(self.comp_means.row(k))];
            }
        }
    }

    fn score_next(&mut self, segment: SegmentId) -> f64 {
        if segment.idx() >= self.embed.vocab() {
            return 30.0; // out-of-vocabulary segment
        }
        if self.packed.is_none() {
            // Defensive: `begin_scoring` packs; tolerate direct use.
            self.packed = Some(PackedSeq2Seq::of(self));
        }
        let packed = self.packed.as_ref().expect("packed above");
        let score = match (self.kind, self.prev_token) {
            (_, None) => 0.0, // the source segment is given, not generated
            (Seq2SeqKind::Sae, Some(_)) => {
                // re-decode the whole prefix from the current encoding,
                // ping-ponging between the two scratch state buffers
                let ScoreScratch {
                    gru,
                    logits,
                    state_a,
                    state_b,
                    latent,
                } = &mut self.scratch;
                latent.clear();
                latent.extend_from_slice(&self.enc_state);
                latent.resize(self.config.latent_dim, 0.0);
                packed.dec_state(latent, state_a);
                for w in self.prefix.windows(2) {
                    packed.step_nll(&self.embed, gru, logits, state_a, w[0], w[1], state_b);
                    std::mem::swap(state_a, state_b);
                }
                let prev = *self.prefix.last().expect("non-empty prefix");
                packed.step_nll(&self.embed, gru, logits, state_a, prev, segment, state_b)
            }
            (_, Some(prev)) => {
                // advance every component state; score = min NLL
                let mut best = f64::INFINITY;
                let mut states = std::mem::take(&mut self.dec_states);
                let ScoreScratch {
                    gru,
                    logits,
                    state_b,
                    ..
                } = &mut self.scratch;
                for state in states.iter_mut() {
                    let nll =
                        packed.step_nll(&self.embed, gru, logits, state, prev, segment, state_b);
                    best = best.min(nll);
                    std::mem::swap(state, state_b);
                }
                self.dec_states = states;
                best
            }
        };
        // advance SAE's running encoder (allocation-free packed step)
        if self.kind == Seq2SeqKind::Sae {
            let ScoreScratch { gru, state_b, .. } = &mut self.scratch;
            packed.encoder.infer_step(
                self.embed.lookup(segment.idx()),
                &self.enc_state,
                state_b,
                gru,
            );
            std::mem::swap(&mut self.enc_state, state_b);
        }
        self.prefix.push(segment);
        self.prev_token = Some(segment);
        score
    }
}

fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn gauss(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnet::{CityBuilder, CityConfig};
    use traj::{TrafficConfig, TrafficSimulator};

    fn tiny_cfg(seed: u64) -> VsaeConfig {
        VsaeConfig {
            embed_dim: 8,
            hidden_dim: 10,
            latent_dim: 6,
            epochs: 2,
            max_train: 200,
            seed,
            ..Default::default()
        }
    }

    fn corpus(seed: u64) -> (usize, Dataset) {
        let net = CityBuilder::new(CityConfig::tiny(seed)).build();
        let cfg = TrafficConfig {
            num_sd_pairs: 3,
            trajs_per_pair: (40, 50),
            anomaly_ratio: 0.08,
            ..TrafficConfig::tiny(seed)
        };
        let data = TrafficSimulator::new(&net, cfg).generate();
        (net.num_segments(), Dataset::from_generated(&data))
    }

    #[test]
    fn training_reduces_reconstruction_loss() {
        for kind in [Seq2SeqKind::Sae, Seq2SeqKind::Vsae, Seq2SeqKind::GmVsae(3)] {
            let (vocab, ds) = corpus(5);
            let mut m = Seq2SeqDetector::new(kind, vocab, tiny_cfg(5));
            let mut rng = StdRng::seed_from_u64(1);
            let t = &ds.trajectories[0];
            let sd = t.sd_pair().unwrap();
            let first = m.train_step(&t.segments, sd, &mut rng);
            let mut last = first;
            for _ in 0..40 {
                last = m.train_step(&t.segments, sd, &mut rng);
            }
            assert!(
                last < first,
                "{:?}: loss {first} -> {last} did not decrease",
                kind
            );
        }
    }

    #[test]
    fn anomalous_segments_score_higher_after_training() {
        let (vocab, ds) = corpus(7);
        for kind in [
            Seq2SeqKind::Vsae,
            Seq2SeqKind::GmVsae(3),
            Seq2SeqKind::SdVsae(3),
            Seq2SeqKind::Sae,
        ] {
            let mut m = Seq2SeqDetector::new(kind, vocab, tiny_cfg(7));
            m.fit(&ds);
            let mut normal = (0.0, 0usize);
            let mut anom = (0.0, 0usize);
            for t in &ds.trajectories {
                let gt = ds.truth(t.id).unwrap();
                let scores = m.score_trajectory(t);
                for (s, &g) in scores.iter().zip(gt) {
                    if g == 1 {
                        anom = (anom.0 + s, anom.1 + 1);
                    } else {
                        normal = (normal.0 + s, normal.1 + 1);
                    }
                }
            }
            let mn = normal.0 / normal.1 as f64;
            let ma = anom.0 / anom.1.max(1) as f64;
            assert!(ma > mn, "{}: anomalous {ma} <= normal {mn}", kind.name());
        }
    }

    #[test]
    fn scoring_is_deterministic_and_shaped() {
        let (vocab, ds) = corpus(9);
        let mut m = Seq2SeqDetector::new(Seq2SeqKind::Vsae, vocab, tiny_cfg(9));
        m.fit(&ds);
        let t = &ds.trajectories[0];
        let a = m.score_trajectory(t);
        let b = m.score_trajectory(t);
        assert_eq!(a.len(), t.len());
        assert_eq!(a, b);
        assert_eq!(a[0], 0.0, "source segment carries no generation cost");
        assert!(a.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn out_of_vocab_scores_high() {
        let (vocab, _) = corpus(11);
        let mut m = Seq2SeqDetector::new(Seq2SeqKind::Vsae, vocab, tiny_cfg(11));
        m.begin_scoring(
            SdPair {
                source: SegmentId(0),
                dest: SegmentId(1),
            },
            0.0,
        );
        assert_eq!(m.score_next(SegmentId(vocab as u32 + 5)), 30.0);
    }

    #[test]
    fn gm_uses_multiple_decoder_states() {
        let (vocab, _) = corpus(13);
        let mut m = Seq2SeqDetector::new(Seq2SeqKind::GmVsae(4), vocab, tiny_cfg(13));
        m.begin_scoring(
            SdPair {
                source: SegmentId(0),
                dest: SegmentId(1),
            },
            0.0,
        );
        assert_eq!(m.dec_states.len(), 4);
        let mut sd = Seq2SeqDetector::new(Seq2SeqKind::SdVsae(4), vocab, tiny_cfg(13));
        sd.begin_scoring(
            SdPair {
                source: SegmentId(0),
                dest: SegmentId(1),
            },
            0.0,
        );
        assert_eq!(sd.dec_states.len(), 1);
    }
}
