//! Shared historical route statistics for the heuristic baselines.
//!
//! IBOAT needs the historical trajectories of an SD pair (for window
//! support), CTSS needs a reference (most popular) route, and DBTOD needs
//! global transition counts. This module computes all three once from a
//! training corpus.

use rnet::SegmentId;
use std::collections::HashMap;
use traj::{Dataset, SdPair};

/// Historical statistics per SD pair plus global transition counts.
#[derive(Debug, Clone, Default)]
pub struct RouteStats {
    /// Historical trajectories (segment sequences) per SD pair.
    pub histories: HashMap<SdPair, Vec<Vec<SegmentId>>>,
    /// The most frequent route per SD pair (CTSS reference).
    pub reference: HashMap<SdPair, Vec<SegmentId>>,
    /// Global transition counts `(from, to) -> count` (DBTOD feature).
    pub transition_counts: HashMap<(SegmentId, SegmentId), u32>,
    /// Per-SD-pair transition counts (DBTOD's trip-context feature).
    pub pair_transition_counts: HashMap<(SdPair, SegmentId, SegmentId), u32>,
    /// Global per-segment visit counts.
    pub segment_counts: HashMap<SegmentId, u32>,
}

impl RouteStats {
    /// Builds statistics from a training corpus.
    pub fn fit(data: &Dataset) -> Self {
        let mut stats = RouteStats::default();
        for (pair, ids) in &data.by_pair {
            let mut route_count: HashMap<&[SegmentId], usize> = HashMap::new();
            let mut hist = Vec::with_capacity(ids.len());
            for &id in ids {
                let t = data.get(id);
                *route_count.entry(t.segments.as_slice()).or_insert(0) += 1;
                hist.push(t.segments.clone());
            }
            if let Some((route, _)) = route_count.into_iter().max_by_key(|&(_, c)| c) {
                stats.reference.insert(*pair, route.to_vec());
            }
            stats.histories.insert(*pair, hist);
        }
        for t in &data.trajectories {
            let pair = t.sd_pair();
            for w in t.segments.windows(2) {
                *stats.transition_counts.entry((w[0], w[1])).or_insert(0) += 1;
                if let Some(pair) = pair {
                    *stats
                        .pair_transition_counts
                        .entry((pair, w[0], w[1]))
                        .or_insert(0) += 1;
                }
            }
            for &s in &t.segments {
                *stats.segment_counts.entry(s).or_insert(0) += 1;
            }
        }
        stats
    }

    /// Historical trajectories of `pair` (empty if unknown).
    pub fn history(&self, pair: SdPair) -> &[Vec<SegmentId>] {
        self.histories
            .get(&pair)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Reference route of `pair`, if known.
    pub fn reference_route(&self, pair: SdPair) -> Option<&[SegmentId]> {
        self.reference.get(&pair).map(|v| v.as_slice())
    }

    /// Global count of a transition.
    pub fn transition_count(&self, from: SegmentId, to: SegmentId) -> u32 {
        *self.transition_counts.get(&(from, to)).unwrap_or(&0)
    }

    /// Count of a transition within one SD pair's historical trips.
    pub fn pair_transition_count(&self, pair: SdPair, from: SegmentId, to: SegmentId) -> u32 {
        *self
            .pair_transition_counts
            .get(&(pair, from, to))
            .unwrap_or(&0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnet::{CityBuilder, CityConfig};
    use traj::{TrafficConfig, TrafficSimulator};

    fn dataset(seed: u64) -> Dataset {
        let net = CityBuilder::new(CityConfig::tiny(seed)).build();
        let data = TrafficSimulator::new(&net, TrafficConfig::tiny(seed)).generate();
        Dataset::from_generated(&data)
    }

    #[test]
    fn reference_is_most_frequent() {
        let ds = dataset(1);
        let stats = RouteStats::fit(&ds);
        for (pair, ids) in &ds.by_pair {
            let reference = stats.reference_route(*pair).unwrap();
            // reference count must be >= any other route count
            let mut counts: HashMap<&[SegmentId], usize> = HashMap::new();
            for &id in ids {
                *counts.entry(ds.get(id).segments.as_slice()).or_insert(0) += 1;
            }
            let ref_count = counts[reference];
            assert!(counts.values().all(|&c| c <= ref_count));
        }
    }

    #[test]
    fn histories_complete() {
        let ds = dataset(2);
        let stats = RouteStats::fit(&ds);
        let total: usize = stats.histories.values().map(|h| h.len()).sum();
        assert_eq!(total, ds.len());
    }

    #[test]
    fn transition_counts_match_manual() {
        let ds = dataset(3);
        let stats = RouteStats::fit(&ds);
        let t = &ds.trajectories[0];
        let (a, b) = (t.segments[0], t.segments[1]);
        let manual = ds
            .trajectories
            .iter()
            .map(|t| {
                t.segments
                    .windows(2)
                    .filter(|w| w[0] == a && w[1] == b)
                    .count()
            })
            .sum::<usize>();
        assert_eq!(stats.transition_count(a, b) as usize, manual);
        assert_eq!(stats.transition_count(SegmentId(99_999), b), 0);
    }
}
