//! DBTOD \[9\]: fast trajectory outlier detection via driving-behaviour
//! modelling.
//!
//! The method models the probability of a driver's next road-segment choice
//! from human driving-behaviour features — the paper names *road level* and
//! *turning angle* among them — learned from historical trajectories. We
//! implement it as a log-linear choice model: at each intersection the
//! driver picks among the successor segments with probability
//! `softmax(w · φ(prev, next))`, with features
//!
//! * log historical transition count (global popularity),
//! * log historical transition count *within the trip's SD pair* (the
//!   driving-behaviour model is conditioned on the trip context),
//! * turning angle between the segments,
//! * road-class code of the next segment (road level),
//! * a road-class-change indicator.
//!
//! Weights are fitted by maximum likelihood (SGD) on the training corpus.
//! The per-segment anomaly score is the negative log-likelihood of the
//! observed choice — cheap to compute (the paper's efficiency study shows
//! DBTOD as the fastest method, which this light model reproduces).

use crate::scoring::ScoringDetector;
use crate::stats::RouteStats;
use rnet::{geo, RoadNetwork, SegmentId};
use std::sync::Arc;
use traj::{Dataset, SdPair};

const NUM_FEATURES: usize = 6;

/// The DBTOD detector.
pub struct Dbtod<'a> {
    net: &'a RoadNetwork,
    stats: Arc<RouteStats>,
    /// Fitted feature weights.
    pub weights: [f64; NUM_FEATURES],
    prev: Option<SegmentId>,
    pair: SdPair,
}

impl<'a> Dbtod<'a> {
    /// Creates an untrained detector (weights favouring popularity only).
    pub fn new(net: &'a RoadNetwork, stats: Arc<RouteStats>) -> Self {
        Dbtod {
            net,
            stats,
            weights: [1.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            prev: None,
            pair: SdPair::default(),
        }
    }

    /// Fits the choice-model weights by SGD maximum likelihood.
    pub fn fit(&mut self, data: &Dataset, epochs: usize, lr: f64) {
        for _ in 0..epochs {
            for t in &data.trajectories {
                let Some(pair) = t.sd_pair() else { continue };
                self.pair = pair;
                for w in t.segments.windows(2) {
                    self.sgd_step(w[0], w[1], lr);
                }
            }
        }
    }

    fn features(&self, prev: SegmentId, next: SegmentId) -> [f64; NUM_FEATURES] {
        let sp = self.net.segment(prev);
        let sn = self.net.segment(next);
        let count = self.stats.transition_count(prev, next) as f64;
        let pair_count = self.stats.pair_transition_count(self.pair, prev, next) as f64;
        let angle = geo::turn_angle(sp.exit_heading(), sn.entry_heading());
        [
            (1.0 + count).ln() / 8.0,
            (1.0 + pair_count).ln() / 6.0,
            angle / std::f64::consts::PI,
            sn.class.code() as f64 / 2.0,
            f64::from(sp.class != sn.class),
            1.0,
        ]
    }

    /// Choice probabilities over the successors of `prev`; returns
    /// `(probs, index of `next` among successors)`.
    fn choice(&self, prev: SegmentId, next: SegmentId) -> (Vec<f64>, Option<usize>) {
        let succ = self.net.successors(prev);
        let mut logits = Vec::with_capacity(succ.len());
        let mut chosen = None;
        for (k, &s) in succ.iter().enumerate() {
            if s == next {
                chosen = Some(k);
            }
            let f = self.features(prev, s);
            logits.push(f.iter().zip(&self.weights).map(|(a, b)| a * b).sum::<f64>());
        }
        let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        let mut probs: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
        for p in &probs {
            sum += p;
        }
        for p in &mut probs {
            *p /= sum;
        }
        (probs, chosen)
    }

    fn sgd_step(&mut self, prev: SegmentId, next: SegmentId, lr: f64) {
        let succ: Vec<SegmentId> = self.net.successors(prev).to_vec();
        let (probs, chosen) = self.choice(prev, next);
        let Some(chosen) = chosen else { return };
        // d(-ln p[chosen]) / dw = sum_k (p_k - onehot_k) * phi_k
        for (k, &s) in succ.iter().enumerate() {
            let coeff = probs[k] - f64::from(k == chosen);
            let f = self.features(prev, s);
            for (wi, fi) in self.weights.iter_mut().zip(&f) {
                *wi -= lr * coeff * fi;
            }
        }
    }
}

impl ScoringDetector for Dbtod<'_> {
    fn name(&self) -> &'static str {
        "DBTOD"
    }

    fn begin_scoring(&mut self, sd: SdPair, _start_time: f64) {
        self.pair = sd;
        self.prev = None;
    }

    fn score_next(&mut self, segment: SegmentId) -> f64 {
        let score = match self.prev {
            None => 0.0, // the source segment carries no choice information
            Some(prev) => {
                let (probs, chosen) = self.choice(prev, segment);
                match chosen {
                    Some(k) => -probs[k].max(1e-12).ln(),
                    None => 30.0, // infeasible transition: maximal surprise
                }
            }
        };
        self.prev = Some(segment);
        score
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnet::{CityBuilder, CityConfig};
    use traj::{TrafficConfig, TrafficSimulator};

    fn setup(seed: u64) -> (rnet::RoadNetwork, Dataset) {
        let net = CityBuilder::new(CityConfig::tiny(seed)).build();
        let cfg = TrafficConfig {
            num_sd_pairs: 4,
            trajs_per_pair: (40, 60),
            anomaly_ratio: 0.08,
            ..TrafficConfig::tiny(seed)
        };
        let data = TrafficSimulator::new(&net, cfg).generate();
        (net, Dataset::from_generated(&data))
    }

    #[test]
    fn fitting_improves_likelihood() {
        let (net, ds) = setup(1);
        let stats = Arc::new(RouteStats::fit(&ds));
        let mut d = Dbtod::new(&net, Arc::clone(&stats));
        let nll = |d: &mut Dbtod| -> f64 {
            ds.trajectories
                .iter()
                .take(50)
                .map(|t| d.score_trajectory(t).iter().sum::<f64>())
                .sum()
        };
        let before = nll(&mut d);
        d.fit(&ds, 2, 0.05);
        let after = nll(&mut d);
        assert!(after < before, "NLL {before} -> {after}");
    }

    #[test]
    fn rare_transitions_score_higher() {
        let (net, ds) = setup(2);
        let stats = Arc::new(RouteStats::fit(&ds));
        let mut d = Dbtod::new(&net, Arc::clone(&stats));
        d.fit(&ds, 2, 0.05);
        // compare mean scores on normal vs anomalous positions
        let mut normal = (0.0, 0usize);
        let mut anom = (0.0, 0usize);
        for t in &ds.trajectories {
            let gt = ds.truth(t.id).unwrap();
            let scores = d.score_trajectory(t);
            for (s, &g) in scores.iter().zip(gt) {
                if g == 1 {
                    anom = (anom.0 + s, anom.1 + 1);
                } else {
                    normal = (normal.0 + s, normal.1 + 1);
                }
            }
        }
        let mean_normal = normal.0 / normal.1 as f64;
        let mean_anom = anom.0 / anom.1.max(1) as f64;
        assert!(
            mean_anom > mean_normal,
            "anomalous {mean_anom} vs normal {mean_normal}"
        );
    }

    #[test]
    fn infeasible_transition_max_surprise() {
        let (net, ds) = setup(3);
        let stats = Arc::new(RouteStats::fit(&ds));
        let mut d = Dbtod::new(&net, stats);
        let t0 = &ds.trajectories[0];
        // jump to a segment that cannot follow
        let far = SegmentId((t0.segments[0].0 + 50) % net.num_segments() as u32);
        let feasible = net.successors(t0.segments[0]).contains(&far);
        if !feasible {
            d.begin_scoring(t0.sd_pair().unwrap(), 0.0);
            d.score_next(t0.segments[0]);
            assert_eq!(d.score_next(far), 30.0);
        }
    }
}
