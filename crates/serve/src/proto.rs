//! The `oasd-serve` wire protocol: compact length-prefixed binary frames
//! for `open / submit / close / label-stream`, built on the same varint
//! primitives as [`traj::codec`].
//!
//! Connection layout (both directions are framed identically):
//!
//! ```text
//! client → server, once:  u32 magic "OSD1"
//! then, repeated:         u32  payload length n (little-endian)
//!                         u8   opcode
//!                         n-1  bytes of opcode-specific body
//! ```
//!
//! Every integer field is an LEB128 varint ([`traj::codec::put_varint`]);
//! `start_time` is a little-endian `f64`. Request opcodes are `0x01..`,
//! response opcodes `0x81..` — one [`Frame`] enum covers both directions
//! so the encoder/decoder pair round-trips every frame the protocol can
//! express (property-tested in `tests/serve_codec.rs`).
//!
//! Sessions are multiplexed over one connection by a **client-chosen**
//! session id carried in every frame: the client may pipeline `open` and
//! `submit`s without waiting for [`Frame::Opened`], because frames of one
//! connection are processed in order and the ingest front door's shard
//! queues are FIFO. Provisional labels stream back as [`Frame::Label`];
//! the authoritative final labels (byte-identical to the in-process
//! ingest path — invariant 16, `tests/serve.rs`) arrive in
//! [`Frame::Closed`].
//!
//! Malformed input never panics the peer: a frame that cannot be decoded
//! is a typed [`FrameError`], surfaced to clients as
//! [`WireError::Malformed`] before the connection closes.

use bytes::{Buf, BufMut, BytesMut};
use traj::codec::{get_varint, put_varint, CodecError};
use traj::{SessionFault, SubmitError};

/// Connection preamble: a client opens with these 4 bytes before its
/// first frame, letting the server reject cross-protocol garbage (e.g.
/// an HTTP request aimed at the wire port) with one typed error instead
/// of misparsing it as frames.
pub const PREAMBLE: [u8; 4] = *b"OSD1";

/// Upper bound on one frame's payload. Large enough for a `Closed` frame
/// carrying the final labels of any realistic trajectory (one byte per
/// point), small enough that a hostile length prefix cannot balloon the
/// reassembly buffer.
pub const MAX_FRAME: usize = 1 << 20;

mod op {
    pub const OPEN: u8 = 0x01;
    pub const SUBMIT: u8 = 0x02;
    pub const CLOSE: u8 = 0x03;
    pub const GOODBYE: u8 = 0x04;
    pub const OPENED: u8 = 0x81;
    pub const LABEL: u8 = 0x82;
    pub const CLOSED: u8 = 0x83;
    pub const REJECTED: u8 = 0x84;
    pub const FAULT: u8 = 0x85;
    pub const BYE: u8 = 0x86;
}

/// Typed, wire-encodable rejection reasons — the network image of
/// [`traj::SubmitError`] plus the serving tier's own admission errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The session's shard ingress queue stayed full past the server's
    /// retry budget ([`traj::SubmitError::QueueFull`]).
    QueueFull,
    /// The serving engine is shutting down.
    ShutDown,
    /// The submit's deadline elapsed while the shard queue was full.
    DeadlineExceeded,
    /// Degraded-mode admission control shed this low-priority open.
    Degraded,
    /// The tenant is at its session quota; the open was shed.
    QuotaExhausted,
    /// The open named a tenant this server does not host.
    UnknownTenant,
    /// The open reused a session id already live on this connection.
    DuplicateSession,
    /// The frame targeted a session id this connection never opened (or
    /// already closed).
    UnknownSession,
    /// The peer sent bytes that do not decode as a valid frame; the
    /// connection closes after this error.
    Malformed,
}

impl WireError {
    /// Stable one-byte wire encoding.
    pub fn code(self) -> u8 {
        match self {
            WireError::QueueFull => 1,
            WireError::ShutDown => 2,
            WireError::DeadlineExceeded => 3,
            WireError::Degraded => 4,
            WireError::QuotaExhausted => 5,
            WireError::UnknownTenant => 6,
            WireError::DuplicateSession => 7,
            WireError::UnknownSession => 8,
            WireError::Malformed => 9,
        }
    }

    /// Inverse of [`WireError::code`]; `None` for unassigned codes.
    pub fn from_code(code: u8) -> Option<WireError> {
        Some(match code {
            1 => WireError::QueueFull,
            2 => WireError::ShutDown,
            3 => WireError::DeadlineExceeded,
            4 => WireError::Degraded,
            5 => WireError::QuotaExhausted,
            6 => WireError::UnknownTenant,
            7 => WireError::DuplicateSession,
            8 => WireError::UnknownSession,
            9 => WireError::Malformed,
            _ => return None,
        })
    }
}

impl From<SubmitError> for WireError {
    fn from(e: SubmitError) -> WireError {
        match e {
            SubmitError::QueueFull => WireError::QueueFull,
            SubmitError::ShutDown => WireError::ShutDown,
            SubmitError::DeadlineExceeded => WireError::DeadlineExceeded,
            SubmitError::Degraded => WireError::Degraded,
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WireError::QueueFull => "shard queue full",
            WireError::ShutDown => "server shutting down",
            WireError::DeadlineExceeded => "submit deadline exceeded",
            WireError::Degraded => "shed by degraded-mode admission",
            WireError::QuotaExhausted => "tenant session quota exhausted",
            WireError::UnknownTenant => "unknown tenant",
            WireError::DuplicateSession => "session id already open",
            WireError::UnknownSession => "unknown session id",
            WireError::Malformed => "malformed frame",
        };
        f.write_str(s)
    }
}

/// Stable one-byte encoding of a terminal [`traj::SessionFault`], carried
/// by [`Frame::Fault`].
pub fn fault_code(fault: SessionFault) -> u8 {
    match fault {
        SessionFault::PoisonEvent => 1,
        SessionFault::WorkerCrash => 2,
        SessionFault::Unsalvageable => 3,
        SessionFault::UnknownSession => 4,
    }
}

/// Inverse of [`fault_code`]; `None` for unassigned codes.
pub fn fault_from_code(code: u8) -> Option<SessionFault> {
    Some(match code {
        1 => SessionFault::PoisonEvent,
        2 => SessionFault::WorkerCrash,
        3 => SessionFault::Unsalvageable,
        4 => SessionFault::UnknownSession,
        _ => return None,
    })
}

/// One wire frame, request or response. The `session` fields carry the
/// **client-chosen** multiplexing id, not the server's internal handle.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Request: open a session for tenant `tenant` with the given SD pair
    /// and start time. `priority` is 0 (high) or 1 (low — subject to
    /// degraded-mode shedding).
    Open {
        session: u64,
        tenant: u32,
        source: u32,
        dest: u32,
        start_time: f64,
        priority: u8,
    },
    /// Request: the session's next road segment.
    Submit { session: u64, segment: u32 },
    /// Request: close the session; final labels return in [`Frame::Closed`].
    Close { session: u64 },
    /// Request: no more frames follow; the server finishes every open
    /// session of this connection and answers [`Frame::Bye`].
    Goodbye,
    /// Response: the open succeeded; `epoch_seq` is the model-epoch swap
    /// sequence number the session was pinned to.
    Opened { session: u64, epoch_seq: u32 },
    /// Response: one provisional label, in submit order per session.
    Label { session: u64, label: u8 },
    /// Response: the session closed; `labels` are its authoritative final
    /// labels, one per accepted point.
    Closed { session: u64, labels: Vec<u8> },
    /// Response: a request was rejected with a typed error. `session` is
    /// 0 for connection-level errors (e.g. [`WireError::Malformed`]).
    Rejected { session: u64, error: WireError },
    /// Response: the session terminated with a [`traj::SessionFault`]
    /// (encoded by [`fault_code`]).
    Fault { session: u64, fault: u8 },
    /// Response: acknowledges [`Frame::Goodbye`]; the connection closes.
    Bye,
}

/// Why a byte sequence failed to decode as a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds [`MAX_FRAME`] (or is zero).
    Oversized(u32),
    /// The payload's first byte is not an assigned opcode.
    UnknownOpcode(u8),
    /// The payload ended before the opcode's declared body.
    Truncated,
    /// A varint field overflowed `u64`.
    VarintOverflow,
    /// The payload has bytes left over after the opcode's body.
    TrailingBytes,
    /// A field carried a code outside its assigned range (e.g. an
    /// unassigned [`WireError`] code).
    BadField,
}

impl From<CodecError> for FrameError {
    fn from(e: CodecError) -> FrameError {
        match e {
            CodecError::Truncated => FrameError::Truncated,
            CodecError::VarintOverflow => FrameError::VarintOverflow,
            // BadMagic is unreachable here (frames carry no magic), but
            // map it conservatively rather than panic.
            CodecError::BadMagic => FrameError::BadField,
        }
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized(n) => write!(f, "frame length {n} exceeds limit"),
            FrameError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            FrameError::Truncated => write!(f, "frame body truncated"),
            FrameError::VarintOverflow => write!(f, "varint overflow in frame body"),
            FrameError::TrailingBytes => write!(f, "trailing bytes after frame body"),
            FrameError::BadField => write!(f, "field value outside assigned range"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Appends `frame` to `out` in wire form (length prefix included).
pub fn encode_frame(frame: &Frame, out: &mut BytesMut) {
    let mut body = BytesMut::new();
    match frame {
        Frame::Open {
            session,
            tenant,
            source,
            dest,
            start_time,
            priority,
        } => {
            body.put_u8(op::OPEN);
            put_varint(&mut body, *session);
            put_varint(&mut body, u64::from(*tenant));
            put_varint(&mut body, u64::from(*source));
            put_varint(&mut body, u64::from(*dest));
            body.put_f64_le(*start_time);
            body.put_u8(*priority);
        }
        Frame::Submit { session, segment } => {
            body.put_u8(op::SUBMIT);
            put_varint(&mut body, *session);
            put_varint(&mut body, u64::from(*segment));
        }
        Frame::Close { session } => {
            body.put_u8(op::CLOSE);
            put_varint(&mut body, *session);
        }
        Frame::Goodbye => body.put_u8(op::GOODBYE),
        Frame::Opened { session, epoch_seq } => {
            body.put_u8(op::OPENED);
            put_varint(&mut body, *session);
            put_varint(&mut body, u64::from(*epoch_seq));
        }
        Frame::Label { session, label } => {
            body.put_u8(op::LABEL);
            put_varint(&mut body, *session);
            body.put_u8(*label);
        }
        Frame::Closed { session, labels } => {
            body.put_u8(op::CLOSED);
            put_varint(&mut body, *session);
            put_varint(&mut body, labels.len() as u64);
            body.put_slice(labels);
        }
        Frame::Rejected { session, error } => {
            body.put_u8(op::REJECTED);
            put_varint(&mut body, *session);
            body.put_u8(error.code());
        }
        Frame::Fault { session, fault } => {
            body.put_u8(op::FAULT);
            put_varint(&mut body, *session);
            body.put_u8(*fault);
        }
        Frame::Bye => body.put_u8(op::BYE),
    }
    debug_assert!(body.len() <= MAX_FRAME);
    out.put_u32_le(body.len() as u32);
    out.put_slice(&body);
}

/// Serialises one frame to owned wire bytes (length prefix included).
pub fn frame_bytes(frame: &Frame) -> Vec<u8> {
    let mut out = BytesMut::new();
    encode_frame(frame, &mut out);
    out.to_vec()
}

fn get_u32_field(buf: &mut &[u8]) -> Result<u32, FrameError> {
    let v = get_varint(buf)?;
    u32::try_from(v).map_err(|_| FrameError::BadField)
}

fn get_u8_field(buf: &mut &[u8]) -> Result<u8, FrameError> {
    if !buf.has_remaining() {
        return Err(FrameError::Truncated);
    }
    Ok(buf.get_u8())
}

fn get_f64_field(buf: &mut &[u8]) -> Result<f64, FrameError> {
    if buf.remaining() < 8 {
        return Err(FrameError::Truncated);
    }
    Ok(buf.get_f64_le())
}

/// Decodes one frame **payload** (the bytes after the length prefix).
/// Every byte must be consumed; leftovers are [`FrameError::TrailingBytes`].
pub fn decode_frame(mut payload: &[u8]) -> Result<Frame, FrameError> {
    let opcode = get_u8_field(&mut payload)?;
    let frame = match opcode {
        op::OPEN => {
            let session = get_varint(&mut payload)?;
            let tenant = get_u32_field(&mut payload)?;
            let source = get_u32_field(&mut payload)?;
            let dest = get_u32_field(&mut payload)?;
            let start_time = get_f64_field(&mut payload)?;
            let priority = get_u8_field(&mut payload)?;
            if priority > 1 {
                return Err(FrameError::BadField);
            }
            Frame::Open {
                session,
                tenant,
                source,
                dest,
                start_time,
                priority,
            }
        }
        op::SUBMIT => Frame::Submit {
            session: get_varint(&mut payload)?,
            segment: get_u32_field(&mut payload)?,
        },
        op::CLOSE => Frame::Close {
            session: get_varint(&mut payload)?,
        },
        op::GOODBYE => Frame::Goodbye,
        op::OPENED => Frame::Opened {
            session: get_varint(&mut payload)?,
            epoch_seq: get_u32_field(&mut payload)?,
        },
        op::LABEL => Frame::Label {
            session: get_varint(&mut payload)?,
            label: get_u8_field(&mut payload)?,
        },
        op::CLOSED => {
            let session = get_varint(&mut payload)?;
            let n = get_varint(&mut payload)?;
            let n = usize::try_from(n).map_err(|_| FrameError::BadField)?;
            if payload.remaining() < n {
                return Err(FrameError::Truncated);
            }
            let mut labels = vec![0u8; n];
            payload.copy_to_slice(&mut labels);
            Frame::Closed { session, labels }
        }
        op::REJECTED => {
            let session = get_varint(&mut payload)?;
            let code = get_u8_field(&mut payload)?;
            let error = WireError::from_code(code).ok_or(FrameError::BadField)?;
            Frame::Rejected { session, error }
        }
        op::FAULT => {
            let session = get_varint(&mut payload)?;
            let fault = get_u8_field(&mut payload)?;
            if fault_from_code(fault).is_none() {
                return Err(FrameError::BadField);
            }
            Frame::Fault { session, fault }
        }
        op::BYE => Frame::Bye,
        other => return Err(FrameError::UnknownOpcode(other)),
    };
    if payload.has_remaining() {
        return Err(FrameError::TrailingBytes);
    }
    Ok(frame)
}

/// Incremental frame reassembler: push raw socket bytes in arbitrary
/// fragments, pull complete frames out. Any byte-boundary fragmentation
/// of a valid stream decodes to the identical frame sequence
/// (property-tested in `tests/serve_codec.rs`).
///
/// A decode error is **sticky** — framing is lost once the stream is
/// corrupt, so every call after an error keeps returning it and the
/// connection must close.
#[derive(Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted once it outgrows the tail.
    pos: usize,
    dead: Option<FrameError>,
}

impl FrameReader {
    /// An empty reassembler.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Appends raw bytes received from the peer.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.dead.is_none() {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Buffered bytes not yet decoded into frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pops the next complete frame: `Ok(None)` means more bytes are
    /// needed; an error is terminal for the stream. (Not an `Iterator`:
    /// the fallible `Result<Option<_>>` shape has no lending-free
    /// `Iterator` equivalent worth faking.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Frame>, FrameError> {
        if let Some(err) = &self.dead {
            return Err(err.clone());
        }
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().expect("4-byte prefix"));
        if len == 0 || len as usize > MAX_FRAME {
            return Err(self.kill(FrameError::Oversized(len)));
        }
        let len = len as usize;
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let frame = match decode_frame(&avail[4..4 + len]) {
            Ok(frame) => frame,
            Err(e) => return Err(self.kill(e)),
        };
        self.pos += 4 + len;
        if self.pos > self.buf.len() / 2 && self.pos >= 4096 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(Some(frame))
    }

    fn kill(&mut self, err: FrameError) -> FrameError {
        self.dead = Some(err.clone());
        self.buf.clear();
        self.pos = 0;
        err
    }
}
