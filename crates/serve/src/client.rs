//! Client side of the `oasd-serve` wire protocol: a minimal blocking
//! [`Client`] (used by the scenario runner's `Driver::Net` and the test
//! suites) and a multi-connection load generator ([`run_load`]) that
//! measures over-the-wire submit→label latency for `BENCH_serve.json`.

use crate::proto::{frame_bytes, Frame, FrameReader, PREAMBLE};
use obs::LatencyHistogram;
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A blocking wire-protocol client over one TCP connection.
///
/// The protocol is fully pipelined: callers may queue many requests
/// before reading any response, but a producer that submits without ever
/// draining eventually fills the server's per-session outboxes and
/// stalls the pipe — interleave [`Client::try_recv`] with submits (the
/// load generator and `Driver::Net` both do).
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
    buf: Vec<u8>,
}

impl Client {
    /// Connects and sends the protocol preamble.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.write_all(&PREAMBLE)?;
        Ok(Client {
            stream,
            reader: FrameReader::new(),
            buf: vec![0u8; 16 * 1024],
        })
    }

    /// Sends one frame (a single `write_all`).
    pub fn send(&mut self, frame: &Frame) -> std::io::Result<()> {
        self.stream.write_all(&frame_bytes(frame))
    }

    /// Blocks until the next frame arrives. `UnexpectedEof` when the
    /// server hangs up; `InvalidData` on an undecodable byte stream.
    pub fn recv(&mut self) -> std::io::Result<Frame> {
        loop {
            if let Some(frame) = self.next_buffered()? {
                return Ok(frame);
            }
            self.stream.set_read_timeout(None)?;
            let n = self.stream.read(&mut self.buf)?;
            if n == 0 {
                return Err(ErrorKind::UnexpectedEof.into());
            }
            let fill = &self.buf[..n];
            self.reader.push(fill);
        }
    }

    /// Non-blocking poll: returns a frame if one is buffered or already
    /// readable on the socket, `None` otherwise, without ever sleeping.
    /// (A short `SO_RCVTIMEO` is not an option here — kernels round
    /// socket timeouts up to scheduler-tick granularity, which would put
    /// a multi-millisecond floor under every empty poll.)
    pub fn try_recv(&mut self) -> std::io::Result<Option<Frame>> {
        if let Some(frame) = self.next_buffered()? {
            return Ok(Some(frame));
        }
        self.stream.set_nonblocking(true)?;
        let read = self.stream.read(&mut self.buf);
        self.stream.set_nonblocking(false)?;
        match read {
            Ok(0) => Err(ErrorKind::UnexpectedEof.into()),
            Ok(n) => {
                let fill = &self.buf[..n];
                self.reader.push(fill);
                self.next_buffered()
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Sends `Goodbye` and drains frames until the server's `Bye`,
    /// returning everything received in between (late labels, closes).
    pub fn goodbye(&mut self) -> std::io::Result<Vec<Frame>> {
        self.send(&Frame::Goodbye)?;
        let mut frames = Vec::new();
        loop {
            match self.recv()? {
                Frame::Bye => return Ok(frames),
                frame => frames.push(frame),
            }
        }
    }

    fn next_buffered(&mut self) -> std::io::Result<Option<Frame>> {
        self.reader
            .next()
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()))
    }
}

/// Load-generator shape: `connections` concurrent TCP connections, each
/// multiplexing `sessions_per_conn` sessions, each session submitting
/// `points_per_session` road-segment events.
#[derive(Debug, Clone, Copy)]
pub struct LoadSpec {
    pub connections: usize,
    pub sessions_per_conn: usize,
    pub points_per_session: usize,
    /// Tenant id carried in every `Open`.
    pub tenant: u32,
    /// Segment-id space to draw events from (the serving network's
    /// `num_segments`).
    pub num_segments: u32,
}

/// What one load run observed, aggregated over all connections.
pub struct LoadReport {
    pub sessions_opened: u64,
    pub sessions_closed: u64,
    pub opens_rejected: u64,
    pub labels_streamed: u64,
    pub faults: u64,
    /// Submit→label latency over the wire, one sample per streamed
    /// provisional label.
    pub latency: LatencyHistogram,
    pub elapsed: Duration,
}

struct ConnOutcome {
    opened: u64,
    closed: u64,
    rejected: u64,
    labels: u64,
    faults: u64,
    samples: Vec<Duration>,
}

/// Drives `spec` against a server and measures per-label wire latency.
/// Panics on I/O errors — this is a harness, not production code.
pub fn run_load(addr: SocketAddr, spec: LoadSpec) -> LoadReport {
    assert!(spec.num_segments > 0, "load spec needs a non-empty network");
    let started = Instant::now();
    let mut workers = Vec::new();
    for conn in 0..spec.connections {
        workers.push(std::thread::spawn(move || {
            drive_connection(addr, conn, spec)
        }));
    }
    let mut report = LoadReport {
        sessions_opened: 0,
        sessions_closed: 0,
        opens_rejected: 0,
        labels_streamed: 0,
        faults: 0,
        latency: LatencyHistogram::new(),
        elapsed: Duration::ZERO,
    };
    for worker in workers {
        let outcome = worker.join().expect("load connection thread panicked");
        report.sessions_opened += outcome.opened;
        report.sessions_closed += outcome.closed;
        report.opens_rejected += outcome.rejected;
        report.labels_streamed += outcome.labels;
        report.faults += outcome.faults;
        for sample in outcome.samples {
            report.latency.record(sample);
        }
    }
    report.elapsed = started.elapsed();
    report
}

fn drive_connection(addr: SocketAddr, conn: usize, spec: LoadSpec) -> ConnOutcome {
    let mut client = Client::connect(addr).expect("connect load connection");
    let mut outcome = ConnOutcome {
        opened: 0,
        closed: 0,
        rejected: 0,
        labels: 0,
        faults: 0,
        samples: Vec::new(),
    };
    // Per-session submit timestamps; each streamed label pops the oldest.
    let mut inflight: HashMap<u64, VecDeque<Instant>> = HashMap::new();
    let mut live: Vec<u64> = Vec::new();
    let segs = u64::from(spec.num_segments);

    for s in 0..spec.sessions_per_conn {
        let cid = (conn as u64) << 32 | s as u64;
        let source = (cid.wrapping_mul(7) % segs) as u32;
        let dest = (cid.wrapping_mul(13).wrapping_add(1) % segs) as u32;
        client
            .send(&Frame::Open {
                session: cid,
                tenant: spec.tenant,
                source,
                dest,
                start_time: 0.0,
                priority: 0,
            })
            .expect("send open");
        // Await the verdict before submitting: a rejected open must not
        // be followed by submits that would spam UnknownSession.
        loop {
            match client.recv().expect("recv open verdict") {
                Frame::Opened { session, .. } if session == cid => {
                    outcome.opened += 1;
                    inflight.insert(cid, VecDeque::new());
                    live.push(cid);
                    break;
                }
                Frame::Rejected { session, .. } if session == cid => {
                    outcome.rejected += 1;
                    break;
                }
                other => absorb(&mut outcome, &mut inflight, other),
            }
        }
    }

    // Round-robin submits across sessions, draining as we go. Each
    // session keeps at most `WINDOW` submits in flight — unbounded
    // pipelining would turn the latency histogram into a pure measure of
    // queue depth; a bounded window measures submit→label under
    // sustained load the way a real producer with finite buffering
    // experiences it.
    const WINDOW: usize = 8;
    for point in 0..spec.points_per_session {
        for &cid in &live {
            while inflight.get(&cid).map_or(0, VecDeque::len) >= WINDOW {
                let frame = client.recv().expect("recv under flow control");
                absorb(&mut outcome, &mut inflight, frame);
            }
            let segment = ((cid ^ point as u64).wrapping_mul(31) % segs) as u32;
            if let Some(queue) = inflight.get_mut(&cid) {
                queue.push_back(Instant::now());
            }
            client
                .send(&Frame::Submit {
                    session: cid,
                    segment,
                })
                .expect("send submit");
            while let Some(frame) = client.try_recv().expect("drain during load") {
                absorb(&mut outcome, &mut inflight, frame);
            }
        }
    }

    for &cid in &live {
        client
            .send(&Frame::Close { session: cid })
            .expect("send close");
    }
    for frame in client.goodbye().expect("goodbye") {
        absorb(&mut outcome, &mut inflight, frame);
    }
    outcome
}

fn absorb(outcome: &mut ConnOutcome, inflight: &mut HashMap<u64, VecDeque<Instant>>, frame: Frame) {
    match frame {
        Frame::Label { session, .. } => {
            outcome.labels += 1;
            if let Some(at) = inflight.get_mut(&session).and_then(VecDeque::pop_front) {
                outcome.samples.push(at.elapsed());
            }
        }
        Frame::Closed { .. } => outcome.closed += 1,
        Frame::Fault { .. } => outcome.faults += 1,
        Frame::Rejected { .. } => outcome.rejected += 1,
        _ => {}
    }
}
