//! # serve — the `oasd-serve` network front door
//!
//! Layer 12 of the reproduction: puts the [`traj::IngestFrontDoor`]
//! behind a socket without changing what it computes. Two listeners,
//! both on `std::net` with zero external deps:
//!
//! * a **wire listener** speaking a compact length-prefixed binary
//!   protocol ([`proto`]) — open/submit/close/goodbye request frames,
//!   opened/label/closed/rejected/fault/bye responses, varint-coded via
//!   the same LEB128 primitives as `traj::codec`;
//! * an **ops listener** speaking minimal HTTP/1.1 — `/healthz`,
//!   `/stats`, `/metrics` (Prometheus text from [`obs::Snapshot`]) and a
//!   `POST /swap` model hot-swap trigger.
//!
//! Sessions from many connections multiplex onto one shared ingest
//! engine; each `Open` names a **tenant**, charged against a per-tenant
//! quota and pinned to the tenant's model scope, so fleets share shards
//! while [`Server::swap_tenant_model`] retargets exactly one tenant.
//!
//! **Invariant 16** (tested in `tests/serve.rs`): for any trace, the
//! label sequence a client receives over loopback is *byte-identical*
//! to driving the same engine in-process — the wire tier adds transport,
//! never semantics.

pub mod client;
pub mod http;
pub mod proto;
pub mod server;

pub use client::{run_load, Client, LoadReport, LoadSpec};
pub use proto::{Frame, FrameError, FrameReader, WireError};
pub use server::{Server, ServerConfig, TenantSpec};
