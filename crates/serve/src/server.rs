//! The `oasd-serve` server: a wire listener speaking the [`crate::proto`]
//! binary protocol and an ops listener speaking minimal HTTP/1.1, both
//! multiplexing onto one shared [`rl4oasd::IngestEngine`].
//!
//! Threading model (all `std::net` + `std::thread`, zero external deps):
//! one accept thread per listener; per wire connection a **reader**
//! thread (decodes request frames, performs opens/submits/closes against
//! the ingest handle, answers `Opened`/`Rejected` inline) and a **pump**
//! thread (drains per-session [`traj::Subscription`] outboxes into
//! `Label` frames, polls [`traj::CloseTicket`]s into `Closed` frames).
//! Both write through one mutex-held socket clone, each frame in a single
//! `write_all`, so frames never interleave mid-frame.
//!
//! Multi-tenancy: each `Open` frame names a tenant; the server enforces
//! per-tenant session quotas and maps the tenant id onto an engine
//! **scope** ([`traj::SessionEngine::open_scoped`]), so
//! [`Server::swap_tenant_model`] retargets one tenant's future sessions
//! without touching any other tenant — isolation is property-tested in
//! `tests/serve.rs`.

use crate::proto::{encode_frame, fault_code, Frame, FrameReader, WireError, MAX_FRAME, PREAMBLE};
use bytes::BytesMut;
use obs::{names, Obs};
use rl4oasd::{IngestEngine, IngestReport, StreamEngine, SwapModel, TrainedModel};
use rnet::{RoadNetwork, SegmentId};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use traj::{
    CloseTicket, IngestConfig, IngestHandle, Priority, RetryPolicy, SdPair, SessionId, SubmitError,
    Subscription,
};

/// One tenant the server will admit: sessions opened under `id` count
/// against `max_sessions` and are pinned to the tenant's model scope.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant id carried in `Open` frames (also the engine scope id).
    pub id: u32,
    /// Human-readable name, surfaced in `/stats`.
    pub name: String,
    /// Concurrent-session quota; `0` means unlimited.
    pub max_sessions: usize,
}

impl TenantSpec {
    /// An unlimited tenant.
    pub fn unlimited(id: u32, name: &str) -> TenantSpec {
        TenantSpec {
            id,
            name: name.to_string(),
            max_sessions: 0,
        }
    }
}

/// Server construction options.
pub struct ServerConfig {
    /// Shard count of the backing [`rl4oasd::IngestEngine`].
    pub shards: usize,
    /// Front-door tuning (flush policy, queue/outbox capacities,
    /// telemetry handle).
    pub ingest: IngestConfig,
    /// Admitted tenants. Empty (the default) runs **open admission**:
    /// any tenant id is accepted with an unlimited quota, auto-registered
    /// on first open — the right mode for single-tenant loopback use.
    pub tenants: Vec<TenantSpec>,
    /// Server-side retry policy for `QueueFull` on submits and opens.
    /// The lossless default (unbounded, jittered) makes the wire path
    /// accounting-identical to an in-process caller retrying forever;
    /// a bounded policy surfaces exhaustion as [`WireError::QueueFull`].
    pub retry: RetryPolicy,
    /// Run supervised shard workers (panic isolation + session salvage).
    pub supervised: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 2,
            ingest: IngestConfig::default(),
            tenants: Vec::new(),
            retry: RetryPolicy::unbounded(0x0A5D_5EA5),
            supervised: false,
        }
    }
}

struct TenantState {
    name: String,
    /// Session quota; 0 = unlimited.
    max: usize,
    live: usize,
    opened: u64,
    quota_shed: u64,
    /// Model-epoch swap sequence the tenant's *next* open pins: `Some`
    /// once the tenant received a scoped swap, otherwise it follows the
    /// engine-wide current epoch.
    scoped_seq: Option<u32>,
}

/// Tenant admission registry. Also the bookkeeping mirror of the
/// engine's epoch swap sequence: every install (engine-wide or scoped)
/// broadcast through this server increments `swap_counter`, matching the
/// per-shard `epoch_log` sequence numbering.
struct Tenants {
    inner: Mutex<TenantTable>,
    /// Open admission: unknown tenants are auto-registered (unlimited).
    open_admission: bool,
}

struct TenantTable {
    tenants: HashMap<u32, TenantState>,
    /// Swap seq of the engine-wide current epoch (0 = construction).
    global_seq: u32,
    /// Total epochs ever installed (= the next install's seq).
    swap_counter: u32,
}

impl Tenants {
    fn new(specs: &[TenantSpec]) -> Tenants {
        let open_admission = specs.is_empty();
        let tenants = specs
            .iter()
            .map(|s| {
                (
                    s.id,
                    TenantState {
                        name: s.name.clone(),
                        max: s.max_sessions,
                        live: 0,
                        opened: 0,
                        quota_shed: 0,
                        scoped_seq: None,
                    },
                )
            })
            .collect();
        Tenants {
            inner: Mutex::new(TenantTable {
                tenants,
                global_seq: 0,
                swap_counter: 0,
            }),
            open_admission,
        }
    }

    /// Admits one open for `tenant`, charging its quota. Returns the
    /// epoch swap seq the session will pin.
    fn admit(&self, tenant: u32) -> Result<u32, WireError> {
        let mut t = self.inner.lock().expect("tenant registry poisoned");
        let global_seq = t.global_seq;
        let state = match t.tenants.get_mut(&tenant) {
            Some(state) => state,
            None if self.open_admission => t.tenants.entry(tenant).or_insert_with(|| TenantState {
                name: format!("tenant-{tenant}"),
                max: 0,
                live: 0,
                opened: 0,
                quota_shed: 0,
                scoped_seq: None,
            }),
            None => return Err(WireError::UnknownTenant),
        };
        if state.max != 0 && state.live >= state.max {
            state.quota_shed += 1;
            return Err(WireError::QuotaExhausted);
        }
        state.live += 1;
        state.opened += 1;
        Ok(state.scoped_seq.unwrap_or(global_seq))
    }

    /// Returns one session of `tenant`'s quota.
    fn release(&self, tenant: u32) {
        let mut t = self.inner.lock().expect("tenant registry poisoned");
        if let Some(state) = t.tenants.get_mut(&tenant) {
            state.live = state.live.saturating_sub(1);
        }
    }

    /// Records an engine-wide swap; returns the new epoch's seq.
    fn record_global_swap(&self) -> u32 {
        let mut t = self.inner.lock().expect("tenant registry poisoned");
        t.swap_counter += 1;
        t.global_seq = t.swap_counter;
        t.global_seq
    }

    /// Records a scoped swap for `tenant`; returns the new epoch's seq.
    fn record_scoped_swap(&self, tenant: u32) -> u32 {
        let mut t = self.inner.lock().expect("tenant registry poisoned");
        t.swap_counter += 1;
        let seq = t.swap_counter;
        if let Some(state) = t.tenants.get_mut(&tenant) {
            state.scoped_seq = Some(seq);
        } else if self.open_admission {
            t.tenants.insert(
                tenant,
                TenantState {
                    name: format!("tenant-{tenant}"),
                    max: 0,
                    live: 0,
                    opened: 0,
                    quota_shed: 0,
                    scoped_seq: Some(seq),
                },
            );
        }
        seq
    }

    /// `/stats` rows: `(id, name, live, opened, quota_shed, max, seq)`.
    fn rows(&self) -> Vec<(u32, String, usize, u64, u64, usize, u32)> {
        let t = self.inner.lock().expect("tenant registry poisoned");
        let mut rows: Vec<_> = t
            .tenants
            .iter()
            .map(|(id, s)| {
                (
                    *id,
                    s.name.clone(),
                    s.live,
                    s.opened,
                    s.quota_shed,
                    s.max,
                    s.scoped_seq.unwrap_or(t.global_seq),
                )
            })
            .collect();
        rows.sort_by_key(|r| r.0);
        rows
    }
}

/// Pre-resolved hot-path telemetry handles (all no-ops when the server
/// runs with a disabled [`Obs`]).
struct ServeMetrics {
    connections: obs::Counter,
    frames_open: obs::Counter,
    frames_submit: obs::Counter,
    frames_close: obs::Counter,
}

impl ServeMetrics {
    fn resolve(obs: &Obs) -> ServeMetrics {
        ServeMetrics {
            connections: obs.counter(names::SERVE_CONNECTIONS, &[]),
            frames_open: obs.counter(names::SERVE_FRAMES, &[("op", "open")]),
            frames_submit: obs.counter(names::SERVE_FRAMES, &[("op", "submit")]),
            frames_close: obs.counter(names::SERVE_FRAMES, &[("op", "close")]),
        }
    }
}

pub(crate) struct Shared {
    stop: AtomicBool,
    handle: IngestHandle<StreamEngine>,
    tenants: Tenants,
    retry: RetryPolicy,
    num_segments: u32,
    obs: Obs,
    metrics: ServeMetrics,
    start: Instant,
    connections: AtomicU64,
    /// Clones of live connection sockets, for shutdown interrupts.
    conn_socks: Mutex<Vec<TcpStream>>,
    /// Connection (reader) + ops threads, joined at shutdown.
    threads: Mutex<Vec<JoinHandle<()>>>,
    /// Models registered for the `/swap` ops trigger, by index.
    shelf: Mutex<Vec<Arc<TrainedModel>>>,
}

impl Shared {
    fn count_wire_error(&self, error: WireError) {
        // Errors are rare; resolving the labelled counter on demand is
        // fine (and free when telemetry is disabled).
        self.obs
            .counter(
                names::SERVE_WIRE_ERRORS,
                &[("error", &format!("{error:?}"))],
            )
            .inc();
    }
}

/// A running `oasd-serve` instance: wire + ops listeners over one ingest
/// engine. Dropping without [`Server::shutdown`] leaks the listener
/// threads; always shut down explicitly.
pub struct Server {
    engine: Option<IngestEngine>,
    shared: Arc<Shared>,
    wire_addr: SocketAddr,
    ops_addr: SocketAddr,
    accept_threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds both listeners on loopback (ephemeral ports) and starts
    /// serving `model` over `net` with `config`.
    pub fn start(
        model: Arc<TrainedModel>,
        net: Arc<RoadNetwork>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let ServerConfig {
            shards,
            ingest,
            tenants,
            retry,
            supervised,
        } = config;
        let obs = ingest.obs.clone();
        let num_segments = net.num_segments() as u32;
        let engine = if supervised {
            IngestEngine::supervised(model, net, shards, ingest, None)
        } else {
            IngestEngine::new(model, net, shards, ingest)
        };
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            handle: engine.handle(),
            tenants: Tenants::new(&tenants),
            retry,
            num_segments,
            metrics: ServeMetrics::resolve(&obs),
            obs,
            start: Instant::now(),
            connections: AtomicU64::new(0),
            conn_socks: Mutex::new(Vec::new()),
            threads: Mutex::new(Vec::new()),
            shelf: Mutex::new(Vec::new()),
        });
        let wire = TcpListener::bind("127.0.0.1:0")?;
        let ops = TcpListener::bind("127.0.0.1:0")?;
        let wire_addr = wire.local_addr()?;
        let ops_addr = ops.local_addr()?;
        let accept_threads = vec![
            spawn_accept("serve-wire-accept", wire, Arc::clone(&shared), |sh, s| {
                serve_wire_conn(sh, s)
            }),
            spawn_accept("serve-ops-accept", ops, Arc::clone(&shared), |sh, s| {
                crate::http::serve_ops_conn(sh, s)
            }),
        ];
        Ok(Server {
            engine: Some(engine),
            shared,
            wire_addr,
            ops_addr,
            accept_threads,
        })
    }

    /// Address of the binary wire-protocol listener.
    pub fn wire_addr(&self) -> SocketAddr {
        self.wire_addr
    }

    /// Address of the HTTP ops listener.
    pub fn ops_addr(&self) -> SocketAddr {
        self.ops_addr
    }

    /// The engine's telemetry handle (disabled unless the server was
    /// started with an enabled [`IngestConfig::obs`]).
    pub fn obs(&self) -> &Obs {
        &self.shared.obs
    }

    /// A producer handle onto the backing ingest engine — the same door
    /// the wire sessions go through.
    pub fn handle(&self) -> IngestHandle<StreamEngine> {
        self.shared.handle.clone()
    }

    /// Registers `model` on the swap shelf for the `/swap` ops trigger,
    /// returning its shelf index.
    pub fn add_shelf_model(&self, model: Arc<TrainedModel>) -> usize {
        let mut shelf = self.shared.shelf.lock().expect("model shelf poisoned");
        shelf.push(model);
        shelf.len() - 1
    }

    /// Engine-wide hot swap (every tenant without a scoped model follows
    /// it). Returns the new epoch's swap sequence number.
    pub fn swap_model(&self, model: Arc<TrainedModel>) -> Result<u32, SubmitError> {
        self.shared.handle.swap_model(model)?;
        Ok(self.shared.tenants.record_global_swap())
    }

    /// Hot-swaps the model for **one tenant only**: sessions the tenant
    /// opens after this run `model`; every other tenant — and the
    /// tenant's own already-open sessions — is untouched. Returns the
    /// new epoch's swap sequence number.
    pub fn swap_tenant_model(
        &self,
        tenant: u32,
        model: Arc<TrainedModel>,
    ) -> Result<u32, SubmitError> {
        self.shared.handle.swap_scope_model(tenant, model)?;
        Ok(self.shared.tenants.record_scoped_swap(tenant))
    }

    /// Stops accepting, interrupts every live connection (their sessions
    /// are closed into the engine first — no session is leaked), joins
    /// all serving threads, then drains and shuts down the engine.
    pub fn shutdown(mut self) -> IngestReport {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loops with one throwaway connection each.
        let _ = TcpStream::connect(self.wire_addr);
        let _ = TcpStream::connect(self.ops_addr);
        for t in self.accept_threads.drain(..) {
            let _ = t.join();
        }
        // Interrupt live connections: readers see EOF, close their
        // sessions into the engine and exit.
        for sock in self
            .shared
            .conn_socks
            .lock()
            .expect("socket registry poisoned")
            .drain(..)
        {
            let _ = sock.shutdown(Shutdown::Both);
        }
        let threads = std::mem::take(
            &mut *self
                .shared
                .threads
                .lock()
                .expect("thread registry poisoned"),
        );
        for t in threads {
            let _ = t.join();
        }
        self.engine
            .take()
            .expect("engine taken only by shutdown")
            .shutdown()
    }
}

fn spawn_accept(
    name: &str,
    listener: TcpListener,
    shared: Arc<Shared>,
    serve: fn(Arc<Shared>, TcpStream),
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(name.to_string())
        .spawn(move || loop {
            let conn = listener.accept();
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            let Ok((stream, _)) = conn else { continue };
            let shared2 = Arc::clone(&shared);
            let t = std::thread::Builder::new()
                .name("serve-conn".to_string())
                .spawn(move || serve(shared2, stream))
                .expect("spawn connection thread");
            shared
                .threads
                .lock()
                .expect("thread registry poisoned")
                .push(t);
        })
        .expect("spawn accept thread")
}

/// Commands from a connection's reader thread to its label pump.
enum PumpCmd {
    /// A session opened: stream its labels.
    Add {
        cid: u64,
        tenant: u32,
        sub: Subscription,
    },
    /// A close was issued; answer `Closed`/`Fault` when the ticket lands.
    Close { cid: u64, ticket: CloseTicket },
    /// No more commands follow. `bye` = answer `Frame::Bye` once drained.
    Done { bye: bool },
}

struct PumpSession {
    tenant: u32,
    sub: Subscription,
    faulted: bool,
}

/// Writes pre-encoded frames in one syscall; errors are ignored (the
/// peer may already be gone — bookkeeping must still complete).
fn write_frames(writer: &Mutex<TcpStream>, out: &mut BytesMut) {
    if out.is_empty() {
        return;
    }
    let mut w = writer.lock().expect("connection writer poisoned");
    let _ = w.write_all(out);
    *out = BytesMut::new();
}

fn pump_loop(shared: Arc<Shared>, writer: Arc<Mutex<TcpStream>>, rx: Receiver<PumpCmd>) {
    let mut sessions: HashMap<u64, PumpSession> = HashMap::new();
    let mut closing: Vec<(u64, CloseTicket)> = Vec::new();
    let mut done: Option<bool> = None;
    let mut out = BytesMut::new();
    let mut labels = Vec::new();
    loop {
        let mut progressed = false;
        loop {
            match rx.try_recv() {
                Ok(PumpCmd::Add { cid, tenant, sub }) => {
                    sessions.insert(
                        cid,
                        PumpSession {
                            tenant,
                            sub,
                            faulted: false,
                        },
                    );
                    progressed = true;
                }
                Ok(PumpCmd::Close { cid, ticket }) => {
                    closing.push((cid, ticket));
                    progressed = true;
                }
                Ok(PumpCmd::Done { bye }) => {
                    done = Some(bye);
                    progressed = true;
                }
                Err(_) => break,
            }
        }
        // Stream provisional labels; surface terminal faults once.
        for (&cid, st) in sessions.iter_mut() {
            labels.clear();
            st.sub.drain_into(&mut labels);
            for &label in &labels {
                encode_frame(
                    &Frame::Label {
                        session: cid,
                        label,
                    },
                    &mut out,
                );
                progressed = true;
            }
            if !st.faulted {
                if let Some(fault) = st.sub.fault() {
                    encode_frame(
                        &Frame::Fault {
                            session: cid,
                            fault: fault_code(fault),
                        },
                        &mut out,
                    );
                    st.faulted = true;
                    progressed = true;
                }
            }
        }
        // Resolve closes: the ticket's final labels are authoritative.
        let mut k = 0;
        while k < closing.len() {
            match closing[k].1.try_wait() {
                None => k += 1,
                Some(result) => {
                    let (cid, _) = closing.swap_remove(k);
                    match result {
                        Ok(final_labels) => {
                            // Drain any labels the outbox delivered after
                            // our last sweep, then send the authoritative
                            // close. MAX_FRAME bounds the label payload;
                            // trajectories are far shorter in practice.
                            if let Some(st) = sessions.get(&cid) {
                                labels.clear();
                                st.sub.drain_into(&mut labels);
                                for &label in &labels {
                                    encode_frame(
                                        &Frame::Label {
                                            session: cid,
                                            label,
                                        },
                                        &mut out,
                                    );
                                }
                            }
                            let mut final_labels = final_labels;
                            final_labels.truncate(MAX_FRAME - 32);
                            encode_frame(
                                &Frame::Closed {
                                    session: cid,
                                    labels: final_labels,
                                },
                                &mut out,
                            );
                        }
                        Err(fault) => {
                            encode_frame(
                                &Frame::Fault {
                                    session: cid,
                                    fault: fault_code(fault),
                                },
                                &mut out,
                            );
                        }
                    }
                    if let Some(st) = sessions.remove(&cid) {
                        shared.tenants.release(st.tenant);
                    }
                    progressed = true;
                }
            }
        }
        write_frames(&writer, &mut out);
        if let Some(bye) = done {
            if closing.is_empty() {
                // The reader has closed every session it still knew;
                // sessions left here were faulted (their ticket already
                // resolved) or abandoned by the peer — release them.
                for (_, st) in sessions.drain() {
                    shared.tenants.release(st.tenant);
                }
                if bye {
                    encode_frame(&Frame::Bye, &mut out);
                    write_frames(&writer, &mut out);
                }
                return;
            }
        }
        if !progressed {
            // Idle: nap briefly rather than spin. Commands, labels and
            // tickets all tolerate this polling latency.
            match rx.recv_timeout(Duration::from_micros(200)) {
                Ok(PumpCmd::Add { cid, tenant, sub }) => {
                    sessions.insert(
                        cid,
                        PumpSession {
                            tenant,
                            sub,
                            faulted: false,
                        },
                    );
                }
                Ok(PumpCmd::Close { cid, ticket }) => closing.push((cid, ticket)),
                Ok(PumpCmd::Done { bye }) => done = Some(bye),
                Err(_) => {}
            }
        }
    }
}

/// One wire connection: preamble check, then request frames until
/// `Goodbye`, EOF, error or server shutdown.
fn serve_wire_conn(shared: Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    if let Ok(clone) = stream.try_clone() {
        shared
            .conn_socks
            .lock()
            .expect("socket registry poisoned")
            .push(clone);
    }
    shared.connections.fetch_add(1, Ordering::Relaxed);
    shared.metrics.connections.inc();
    let writer = Arc::new(Mutex::new(write_half));
    let mut stream = stream;

    // Preamble: reject cross-protocol garbage with one typed error.
    let mut preamble = [0u8; 4];
    if stream.read_exact(&mut preamble).is_err() || preamble != PREAMBLE {
        let mut out = BytesMut::new();
        encode_frame(
            &Frame::Rejected {
                session: 0,
                error: WireError::Malformed,
            },
            &mut out,
        );
        shared.count_wire_error(WireError::Malformed);
        write_frames(&writer, &mut out);
        return;
    }

    let (tx, rx) = channel::<PumpCmd>();
    let pump = {
        let shared = Arc::clone(&shared);
        let writer = Arc::clone(&writer);
        std::thread::Builder::new()
            .name("serve-pump".to_string())
            .spawn(move || pump_loop(shared, writer, rx))
            .expect("spawn label pump")
    };

    // cid → (engine session, tenant). Entries leave on close.
    let mut sessions: HashMap<u64, (SessionId, u32)> = HashMap::new();
    let mut reader = FrameReader::new();
    let mut buf = vec![0u8; 16 * 1024];
    let mut out = BytesMut::new();
    let mut graceful = false;

    'conn: loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => break 'conn,
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break 'conn,
        };
        reader.push(&buf[..n]);
        loop {
            let frame = match reader.next() {
                Ok(Some(frame)) => frame,
                Ok(None) => break,
                Err(_) => {
                    encode_frame(
                        &Frame::Rejected {
                            session: 0,
                            error: WireError::Malformed,
                        },
                        &mut out,
                    );
                    shared.count_wire_error(WireError::Malformed);
                    write_frames(&writer, &mut out);
                    break 'conn;
                }
            };
            match handle_frame(&shared, frame, &mut sessions, &tx, &mut out) {
                FrameOutcome::Continue => {}
                FrameOutcome::Goodbye => {
                    graceful = true;
                    break 'conn;
                }
                FrameOutcome::Protocol => {
                    write_frames(&writer, &mut out);
                    break 'conn;
                }
            }
        }
        write_frames(&writer, &mut out);
    }

    // Close every session still open on this connection so engine state
    // and tenant quotas never leak, whatever way the connection ended.
    for (cid, (sid, tenant)) in sessions.drain() {
        match shared.retry.run(cid, || shared.handle.close(sid)) {
            Ok(ticket) => {
                let _ = tx.send(PumpCmd::Close { cid, ticket });
            }
            Err(_) => shared.tenants.release(tenant),
        }
    }
    let _ = tx.send(PumpCmd::Done { bye: graceful });
    let _ = pump.join();
    let _ = stream.shutdown(Shutdown::Both);
}

enum FrameOutcome {
    Continue,
    /// Clean `Goodbye`: close remaining sessions, answer `Bye`.
    Goodbye,
    /// Protocol violation (a response opcode from a client): drop the
    /// connection after flushing the error.
    Protocol,
}

fn handle_frame(
    shared: &Shared,
    frame: Frame,
    sessions: &mut HashMap<u64, (SessionId, u32)>,
    tx: &Sender<PumpCmd>,
    out: &mut BytesMut,
) -> FrameOutcome {
    match frame {
        Frame::Open {
            session: cid,
            tenant,
            source,
            dest,
            start_time,
            priority,
        } => {
            shared.metrics.frames_open.inc();
            let reject = |out: &mut BytesMut, error: WireError| {
                encode_frame(
                    &Frame::Rejected {
                        session: cid,
                        error,
                    },
                    out,
                );
                shared.count_wire_error(error);
            };
            if sessions.contains_key(&cid) {
                reject(out, WireError::DuplicateSession);
                return FrameOutcome::Continue;
            }
            // Opens bypass the engine's per-event `admit` pre-screen, so
            // bounds-check the SD pair here: a garbage endpoint must be a
            // typed error, not a worker panic.
            if source >= shared.num_segments
                || dest >= shared.num_segments
                || !start_time.is_finite()
            {
                reject(out, WireError::Malformed);
                return FrameOutcome::Continue;
            }
            let epoch_seq = match shared.tenants.admit(tenant) {
                Ok(seq) => seq,
                Err(e) => {
                    if e == WireError::QuotaExhausted {
                        shared
                            .obs
                            .counter(names::SERVE_QUOTA_SHED, &[("tenant", &tenant.to_string())])
                            .inc();
                    }
                    reject(out, e);
                    return FrameOutcome::Continue;
                }
            };
            let sd = SdPair {
                source: SegmentId(source),
                dest: SegmentId(dest),
            };
            let prio = if priority == 0 {
                Priority::High
            } else {
                Priority::Low
            };
            // Retry QueueFull under the server policy (salted by cid);
            // Degraded/ShutDown are surfaced immediately.
            let opened = shared.retry.run(cid, || {
                shared.handle.open_scoped(tenant, sd, start_time, prio)
            });
            match opened {
                Ok((sid, sub)) => {
                    sessions.insert(cid, (sid, tenant));
                    let _ = tx.send(PumpCmd::Add { cid, tenant, sub });
                    shared
                        .obs
                        .counter(names::SERVE_OPENS, &[("tenant", &tenant.to_string())])
                        .inc();
                    encode_frame(
                        &Frame::Opened {
                            session: cid,
                            epoch_seq,
                        },
                        out,
                    );
                }
                Err(e) => {
                    shared.tenants.release(tenant);
                    reject(out, e.into());
                }
            }
            FrameOutcome::Continue
        }
        Frame::Submit {
            session: cid,
            segment,
        } => {
            shared.metrics.frames_submit.inc();
            let Some(&(sid, _)) = sessions.get(&cid) else {
                encode_frame(
                    &Frame::Rejected {
                        session: cid,
                        error: WireError::UnknownSession,
                    },
                    out,
                );
                shared.count_wire_error(WireError::UnknownSession);
                return FrameOutcome::Continue;
            };
            // Poison segments pass through: the engine's `admit`
            // pre-screen quarantines the session and the pump surfaces
            // the fault as a typed frame.
            if let Err(e) = shared
                .handle
                .submit_with_retry(sid, SegmentId(segment), &shared.retry)
            {
                let error = WireError::from(e);
                encode_frame(
                    &Frame::Rejected {
                        session: cid,
                        error,
                    },
                    out,
                );
                shared.count_wire_error(error);
            }
            FrameOutcome::Continue
        }
        Frame::Close { session: cid } => {
            shared.metrics.frames_close.inc();
            let Some((sid, tenant)) = sessions.remove(&cid) else {
                encode_frame(
                    &Frame::Rejected {
                        session: cid,
                        error: WireError::UnknownSession,
                    },
                    out,
                );
                shared.count_wire_error(WireError::UnknownSession);
                return FrameOutcome::Continue;
            };
            // Closes retry `QueueFull` like submits do: a close racing a
            // full shard queue must not leak the session (and strand its
            // undelivered tail labels) just because the queue was busy.
            match shared.retry.run(cid, || shared.handle.close(sid)) {
                Ok(ticket) => {
                    let _ = tx.send(PumpCmd::Close { cid, ticket });
                }
                Err(e) => {
                    shared.tenants.release(tenant);
                    let error = WireError::from(e);
                    encode_frame(
                        &Frame::Rejected {
                            session: cid,
                            error,
                        },
                        out,
                    );
                    shared.count_wire_error(error);
                }
            }
            FrameOutcome::Continue
        }
        Frame::Goodbye => FrameOutcome::Goodbye,
        // A client sending response opcodes is off-protocol.
        Frame::Opened { .. }
        | Frame::Label { .. }
        | Frame::Closed { .. }
        | Frame::Rejected { .. }
        | Frame::Fault { .. }
        | Frame::Bye => {
            encode_frame(
                &Frame::Rejected {
                    session: 0,
                    error: WireError::Malformed,
                },
                out,
            );
            shared.count_wire_error(WireError::Malformed);
            FrameOutcome::Protocol
        }
    }
}

// Accessors for the ops (HTTP) surface, kept on Shared so `http.rs`
// stays free of serving internals.
impl Shared {
    pub(crate) fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    pub(crate) fn obs_handle(&self) -> &Obs {
        &self.obs
    }

    pub(crate) fn http_request(&self, path: &str) {
        self.obs
            .counter(names::SERVE_HTTP_REQUESTS, &[("path", path)])
            .inc();
    }

    /// `/stats` body (manual JSON: integers and escaped names only).
    pub(crate) fn stats_json(&self) -> String {
        let mut tenants = String::new();
        for (i, (id, name, live, opened, shed, max, seq)) in
            self.tenants.rows().into_iter().enumerate()
        {
            if i > 0 {
                tenants.push(',');
            }
            let name = name.replace('\\', "\\\\").replace('"', "\\\"");
            tenants.push_str(&format!(
                "{{\"id\":{id},\"name\":\"{name}\",\"live_sessions\":{live},\
                 \"opened\":{opened},\"quota_shed\":{shed},\"max_sessions\":{max},\
                 \"epoch_seq\":{seq}}}"
            ));
        }
        format!(
            "{{\"uptime_secs\":{},\"connections\":{},\"shards\":{},\
             \"accepted_events\":{},\"rejected_events\":{},\"degraded\":{},\
             \"tenants\":[{tenants}]}}",
            self.start.elapsed().as_secs(),
            self.connections.load(Ordering::Relaxed),
            self.handle.num_shards(),
            self.handle.accepted_events(),
            self.handle.rejected_events(),
            self.handle.any_degraded(),
        )
    }

    /// `/swap` trigger: installs shelf model `model_idx` engine-wide or,
    /// with `Some(tenant)`, for that tenant only. `Ok` is the new swap
    /// seq.
    pub(crate) fn swap_from_shelf(
        &self,
        model_idx: usize,
        tenant: Option<u32>,
    ) -> Result<u32, String> {
        let model = {
            let shelf = self.shelf.lock().expect("model shelf poisoned");
            shelf
                .get(model_idx)
                .cloned()
                .ok_or_else(|| format!("no shelf model {model_idx}"))?
        };
        match tenant {
            Some(t) => self
                .handle
                .swap_scope_model(t, model)
                .map(|()| self.tenants.record_scoped_swap(t))
                .map_err(|e| e.to_string()),
            None => self
                .handle
                .swap_model(model)
                .map(|()| self.tenants.record_global_swap())
                .map_err(|e| e.to_string()),
        }
    }
}
