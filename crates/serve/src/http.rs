//! Hand-rolled minimal HTTP/1.1 ops surface for `oasd-serve`.
//!
//! Four endpoints, no external deps, no keep-alive (every response sends
//! `Connection: close`):
//!
//! | method | path       | body                                         |
//! |--------|------------|----------------------------------------------|
//! | GET    | `/healthz` | `{"status":"ok"}` JSON liveness probe        |
//! | GET    | `/stats`   | JSON: connections, event accounting, tenants |
//! | GET    | `/metrics` | Prometheus text ([`obs::Snapshot`])          |
//! | POST   | `/swap`    | `?model=K[&tenant=T]` shelf-model hot swap   |
//!
//! Garbage request lines, oversized headers and unknown paths produce
//! `400`/`404`/`405` — never a panic, never a wedged listener (the
//! malformed-input suite in `tests/serve.rs` drives this).

use crate::server::Shared;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Largest request head we will buffer before answering 400.
const MAX_HEAD: usize = 8 * 1024;

/// Serves one ops connection: read one request, answer, close.
pub(crate) fn serve_ops_conn(shared: Arc<Shared>, mut stream: TcpStream) {
    // A stalled client must not pin this thread past shutdown.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_nodelay(true);
    let head = match read_head(&mut stream) {
        Some(head) => head,
        None => {
            respond(&mut stream, 400, "text/plain", "bad request\n");
            return;
        }
    };
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1.") => (m, t),
        _ => {
            respond(&mut stream, 400, "text/plain", "bad request line\n");
            return;
        }
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    shared.http_request(path);
    match (method, path) {
        ("GET", "/healthz") => {
            let body = if shared.is_stopping() {
                "{\"status\":\"stopping\"}"
            } else {
                "{\"status\":\"ok\"}"
            };
            respond(&mut stream, 200, "application/json", body);
        }
        ("GET", "/stats") => {
            respond(&mut stream, 200, "application/json", &shared.stats_json());
        }
        ("GET", "/metrics") => {
            let text = shared.obs_handle().snapshot().to_prometheus();
            respond(&mut stream, 200, "text/plain; version=0.0.4", &text);
        }
        ("POST", "/swap") => match parse_swap_query(query) {
            Ok((model_idx, tenant)) => match shared.swap_from_shelf(model_idx, tenant) {
                Ok(seq) => {
                    let body = format!("{{\"swapped\":true,\"epoch_seq\":{seq}}}");
                    respond(&mut stream, 200, "application/json", &body);
                }
                Err(msg) => {
                    let msg = msg.replace('"', "'");
                    let body = format!("{{\"swapped\":false,\"error\":\"{msg}\"}}");
                    respond(&mut stream, 404, "application/json", &body);
                }
            },
            Err(msg) => respond(&mut stream, 400, "text/plain", msg),
        },
        ("GET", _) => respond(&mut stream, 404, "text/plain", "not found\n"),
        _ => respond(&mut stream, 405, "text/plain", "method not allowed\n"),
    }
}

/// Reads until the blank line ending the request head. `None` on
/// timeout, disconnect, oversize or non-UTF-8 head.
fn read_head(stream: &mut TcpStream) -> Option<String> {
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => return None,
            Ok(n) => n,
            Err(_) => return None,
        };
        head.extend_from_slice(&buf[..n]);
        if head.len() > MAX_HEAD {
            return None;
        }
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n") {
            // Any POST body after the head is irrelevant to every
            // endpoint we serve (swap parameters ride the query string).
            return String::from_utf8(head).ok();
        }
    }
}

/// Parses `model=K[&tenant=T]` from the `/swap` query string.
fn parse_swap_query(query: &str) -> Result<(usize, Option<u32>), &'static str> {
    let mut model = None;
    let mut tenant = None;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        match pair.split_once('=') {
            Some(("model", v)) => {
                model = Some(v.parse().map_err(|_| "swap: bad model index\n")?);
            }
            Some(("tenant", v)) => {
                tenant = Some(v.parse().map_err(|_| "swap: bad tenant id\n")?);
            }
            _ => return Err("swap: unknown parameter\n"),
        }
    }
    match model {
        Some(m) => Ok((m, tenant)),
        None => Err("swap: missing model=<shelf index>\n"),
    }
}

fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    // Best-effort: the probe may already have hung up.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}
