//! `oasd-serve` — the network front door as a binary.
//!
//! Two modes:
//!
//! * default: train a synthetic-city demo model, start the wire + ops
//!   listeners and serve until killed (addresses printed on stdout);
//! * `--smoke`: start a loopback server, drive a load-generator fleet
//!   through it, probe every ops endpoint, verify accounting and shut
//!   down cleanly — the CI end-to-end check. Exit code 0 iff everything
//!   held.
//!
//! ```text
//! oasd-serve [--smoke] [--shards N] [--connections N] [--sessions N] [--points N] [--seed N]
//! ```

use obs::ObsConfig;
use rl4oasd::Rl4oasdConfig;
use rnet::{CityBuilder, CityConfig};
use serve::{run_load, LoadSpec, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;
use traj::{Dataset, IngestConfig, TrafficConfig, TrafficSimulator};

struct Args {
    smoke: bool,
    shards: usize,
    connections: usize,
    sessions: usize,
    points: usize,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        shards: 2,
        connections: 4,
        sessions: 100,
        points: 40,
        seed: 0x0A5D,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse()
                .map_err(|_| format!("{name} needs an integer"))
        };
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--shards" => args.shards = num("--shards")?.max(1) as usize,
            "--connections" => args.connections = num("--connections")?.max(1) as usize,
            "--sessions" => args.sessions = num("--sessions")?.max(1) as usize,
            "--points" => args.points = num("--points")?.max(1) as usize,
            "--seed" => args.seed = num("--seed")?,
            "--help" | "-h" => {
                return Err(
                    "usage: oasd-serve [--smoke] [--shards N] [--connections N] \
                     [--sessions N] [--points N] [--seed N]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// Trains the demo serving fixture on the tiny synthetic city.
fn build_fixture(seed: u64) -> (Arc<rnet::RoadNetwork>, Arc<rl4oasd::TrainedModel>) {
    let net = CityBuilder::new(CityConfig::tiny(seed)).build();
    let traffic = TrafficConfig {
        num_sd_pairs: 4,
        trajs_per_pair: (50, 70),
        anomaly_ratio: 0.15,
        ..TrafficConfig::tiny(seed)
    };
    let ds = Dataset::from_generated(&TrafficSimulator::new(&net, traffic).generate());
    let model = Arc::new(rl4oasd::train(&net, &ds, &Rl4oasdConfig::tiny(seed)));
    (Arc::new(net), model)
}

fn start_server(args: &Args) -> (Server, u32) {
    let (net, model) = build_fixture(args.seed);
    let num_segments = net.num_segments() as u32;
    let config = ServerConfig {
        shards: args.shards,
        ingest: IngestConfig {
            obs: obs::Obs::new(ObsConfig::enabled()),
            ..IngestConfig::default()
        },
        ..ServerConfig::default()
    };
    let server = Server::start(model, net, config).expect("bind loopback listeners");
    (server, num_segments)
}

/// One-shot HTTP GET against the ops listener; returns (status, body).
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect ops listener");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set ops read timeout");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: oasd\r\n\r\n").as_bytes())
        .expect("send ops request");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read ops response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn smoke(args: &Args) -> Result<(), String> {
    let (server, num_segments) = start_server(args);
    let per_conn = args.sessions.div_ceil(args.connections);
    let spec = LoadSpec {
        connections: args.connections,
        sessions_per_conn: per_conn,
        points_per_session: args.points,
        tenant: 0,
        num_segments,
    };
    let report = run_load(server.wire_addr(), spec);

    let expected_sessions = (args.connections * per_conn) as u64;
    let expected_labels = expected_sessions * args.points as u64;
    if report.sessions_opened != expected_sessions {
        return Err(format!(
            "opened {} of {expected_sessions} sessions",
            report.sessions_opened
        ));
    }
    if report.sessions_closed != expected_sessions {
        return Err(format!(
            "closed {} of {expected_sessions} sessions",
            report.sessions_closed
        ));
    }
    if report.labels_streamed != expected_labels {
        return Err(format!(
            "streamed {} of {expected_labels} labels",
            report.labels_streamed
        ));
    }
    if report.faults != 0 || report.opens_rejected != 0 {
        return Err(format!(
            "unexpected faults={} rejects={}",
            report.faults, report.opens_rejected
        ));
    }

    let (status, body) = http_get(server.ops_addr(), "/healthz");
    if status != 200 || !body.contains("\"ok\"") {
        return Err(format!("/healthz: {status} {body}"));
    }
    let (status, body) = http_get(server.ops_addr(), "/stats");
    if status != 200 || !body.contains("\"tenants\"") {
        return Err(format!("/stats: {status}"));
    }
    let (status, metrics) = http_get(server.ops_addr(), "/metrics");
    if status != 200 || metrics.is_empty() {
        return Err(format!("/metrics: {status}, {} bytes", metrics.len()));
    }
    if !metrics.contains("oasd_serve_connections_total") {
        return Err("/metrics is missing serve counters".to_string());
    }

    let ingest_report = server.shutdown();
    let stats = &ingest_report.ingest;
    if stats.submitted != stats.flushed_events + stats.shed_events + stats.quarantined_events {
        return Err(format!(
            "accounting broke: submitted {} != flushed {} + shed {} + quarantined {}",
            stats.submitted, stats.flushed_events, stats.shed_events, stats.quarantined_events
        ));
    }

    println!(
        "smoke ok: {} sessions x {} pts over {} connections, {} labels, \
         p50 {:?} p99 {:?}, {:.1?} total",
        expected_sessions,
        args.points,
        args.connections,
        report.labels_streamed,
        report.latency.percentile(0.50),
        report.latency.percentile(0.99),
        report.elapsed,
    );
    Ok(())
}

fn serve_forever(args: &Args) {
    let (server, num_segments) = start_server(args);
    println!("oasd-serve up");
    println!(
        "  wire: {}  (protocol OSD1, {num_segments} segments)",
        server.wire_addr()
    );
    println!(
        "  ops:  http://{}/healthz /stats /metrics",
        server.ops_addr()
    );
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if args.smoke {
        if let Err(msg) = smoke(&args) {
            eprintln!("smoke FAILED: {msg}");
            std::process::exit(1);
        }
    } else {
        serve_forever(&args);
    }
}
