//! Planar geometry primitives used across the workspace.
//!
//! All coordinates are metres in a city-local frame (x grows east, y grows
//! north). The paper's figures use raw lon/lat; [`Point::to_lonlat`] provides
//! an equivalent display projection anchored at a Chengdu-like origin so the
//! case-study output is visually comparable.

use serde::{Deserialize, Serialize};

/// Metres per degree of latitude (WGS-84 mean).
const METRES_PER_DEG_LAT: f64 = 111_320.0;
/// Display anchor longitude (Chengdu-like), used by [`Point::to_lonlat`].
pub const ANCHOR_LON: f64 = 104.05;
/// Display anchor latitude (Chengdu-like), used by [`Point::to_lonlat`].
pub const ANCHOR_LAT: f64 = 30.65;

/// A point in the city-local planar frame, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Easting in metres.
    pub x: f64,
    /// Northing in metres.
    pub y: f64,
}

impl Point {
    /// Creates a point from planar metre coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in metres.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance (avoids the `sqrt` when only comparing).
    #[inline]
    pub fn dist_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Linear interpolation: the point `t` of the way from `self` to `other`
    /// (`t` in `[0, 1]`).
    #[inline]
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Converts to a pseudo (longitude, latitude) pair for display,
    /// anchored at a Chengdu-like origin.
    pub fn to_lonlat(&self) -> (f64, f64) {
        let lat = ANCHOR_LAT + self.y / METRES_PER_DEG_LAT;
        let lon = ANCHOR_LON + self.x / (METRES_PER_DEG_LAT * ANCHOR_LAT.to_radians().cos());
        (lon, lat)
    }
}

/// Result of projecting a point onto a segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Projection {
    /// Closest point on the segment.
    pub point: Point,
    /// Distance from the query point to [`Projection::point`], in metres.
    pub distance: f64,
    /// Position along the segment in `[0, 1]` (0 = start, 1 = end).
    pub t: f64,
}

/// Projects `p` onto the line segment `a`–`b`.
///
/// Returns the closest point, the perpendicular (or endpoint) distance and
/// the normalised offset along the segment. Degenerate segments (`a == b`)
/// project onto `a`.
pub fn project_onto_segment(p: &Point, a: &Point, b: &Point) -> Projection {
    let abx = b.x - a.x;
    let aby = b.y - a.y;
    let len_sq = abx * abx + aby * aby;
    if len_sq <= f64::EPSILON {
        return Projection {
            point: *a,
            distance: p.dist(a),
            t: 0.0,
        };
    }
    let t = (((p.x - a.x) * abx + (p.y - a.y) * aby) / len_sq).clamp(0.0, 1.0);
    let point = a.lerp(b, t);
    Projection {
        point,
        distance: p.dist(&point),
        t,
    }
}

/// Projects `p` onto a polyline, returning the best [`Projection`] together
/// with the arc-length offset (metres from the polyline start to the
/// projected point).
///
/// Returns `None` for polylines with fewer than two points.
pub fn project_onto_polyline(p: &Point, line: &[Point]) -> Option<(Projection, f64)> {
    if line.len() < 2 {
        return None;
    }
    let mut best: Option<(Projection, f64)> = None;
    let mut walked = 0.0;
    for w in line.windows(2) {
        let proj = project_onto_segment(p, &w[0], &w[1]);
        let seg_len = w[0].dist(&w[1]);
        let offset = walked + proj.t * seg_len;
        match &best {
            Some((b, _)) if b.distance <= proj.distance => {}
            _ => best = Some((proj, offset)),
        }
        walked += seg_len;
    }
    best
}

/// Total arc length of a polyline in metres.
pub fn polyline_length(line: &[Point]) -> f64 {
    line.windows(2).map(|w| w[0].dist(&w[1])).sum()
}

/// The point at arc-length `offset` along a polyline, clamped to its ends.
///
/// Returns `None` for polylines with fewer than two points.
pub fn point_at_offset(line: &[Point], offset: f64) -> Option<Point> {
    if line.len() < 2 {
        return line.first().copied();
    }
    if offset <= 0.0 {
        return line.first().copied();
    }
    let mut remaining = offset;
    for w in line.windows(2) {
        let seg_len = w[0].dist(&w[1]);
        if remaining <= seg_len {
            let t = if seg_len > 0.0 {
                remaining / seg_len
            } else {
                0.0
            };
            return Some(w[0].lerp(&w[1], t));
        }
        remaining -= seg_len;
    }
    line.last().copied()
}

/// Heading of the vector `a -> b` in radians, in `(-pi, pi]` measured from
/// the +x axis.
#[inline]
pub fn heading(a: &Point, b: &Point) -> f64 {
    (b.y - a.y).atan2(b.x - a.x)
}

/// Heading (radians) of the polyline leg containing arc-length `offset`.
///
/// Offsets beyond the ends clamp to the first/last leg. Returns `None` for
/// polylines with fewer than two points.
pub fn heading_at_offset(line: &[Point], offset: f64) -> Option<f64> {
    if line.len() < 2 {
        return None;
    }
    let mut remaining = offset.max(0.0);
    for w in line.windows(2) {
        let seg_len = w[0].dist(&w[1]);
        if remaining <= seg_len || seg_len == 0.0 {
            if seg_len > 0.0 {
                return Some(heading(&w[0], &w[1]));
            }
            remaining -= seg_len;
            continue;
        }
        remaining -= seg_len;
    }
    let n = line.len();
    Some(heading(&line[n - 2], &line[n - 1]))
}

/// Absolute turning angle (radians, in `[0, pi]`) between headings `h1` and
/// `h2`. Used by the DBTOD baseline's turning-angle feature.
pub fn turn_angle(h1: f64, h2: f64) -> f64 {
    let mut d = (h2 - h1).abs() % (2.0 * std::f64::consts::PI);
    if d > std::f64::consts::PI {
        d = 2.0 * std::f64::consts::PI - d;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_basics() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.dist(&b) - 5.0).abs() < 1e-12);
        assert!((a.dist_sq(&b) - 25.0).abs() < 1e-12);
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let m = a.lerp(&b, 0.5);
        assert!((m.x - 5.0).abs() < 1e-12 && (m.y - 10.0).abs() < 1e-12);
    }

    #[test]
    fn projection_interior() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let p = Point::new(4.0, 3.0);
        let proj = project_onto_segment(&p, &a, &b);
        assert!((proj.distance - 3.0).abs() < 1e-12);
        assert!((proj.t - 0.4).abs() < 1e-12);
        assert!((proj.point.x - 4.0).abs() < 1e-12);
    }

    #[test]
    fn projection_clamps_to_endpoints() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let before = Point::new(-5.0, 1.0);
        let after = Point::new(15.0, 1.0);
        assert_eq!(project_onto_segment(&before, &a, &b).t, 0.0);
        assert_eq!(project_onto_segment(&after, &a, &b).t, 1.0);
    }

    #[test]
    fn projection_degenerate_segment() {
        let a = Point::new(1.0, 1.0);
        let p = Point::new(4.0, 5.0);
        let proj = project_onto_segment(&p, &a, &a);
        assert_eq!(proj.point, a);
        assert!((proj.distance - 5.0).abs() < 1e-12);
    }

    #[test]
    fn polyline_projection_picks_best_leg_and_offset() {
        let line = [
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
        ];
        let p = Point::new(11.0, 5.0);
        let (proj, offset) = project_onto_polyline(&p, &line).unwrap();
        assert!((proj.distance - 1.0).abs() < 1e-12);
        assert!((offset - 15.0).abs() < 1e-12);
    }

    #[test]
    fn polyline_projection_requires_two_points() {
        assert!(project_onto_polyline(&Point::new(0.0, 0.0), &[Point::new(1.0, 1.0)]).is_none());
        assert!(project_onto_polyline(&Point::new(0.0, 0.0), &[]).is_none());
    }

    #[test]
    fn polyline_length_sums_legs() {
        let line = [
            Point::new(0.0, 0.0),
            Point::new(3.0, 4.0),
            Point::new(3.0, 10.0),
        ];
        assert!((polyline_length(&line) - 11.0).abs() < 1e-12);
        assert_eq!(polyline_length(&line[..1]), 0.0);
    }

    #[test]
    fn point_at_offset_walks_polyline() {
        let line = [
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
        ];
        let p = point_at_offset(&line, 15.0).unwrap();
        assert!((p.x - 10.0).abs() < 1e-12 && (p.y - 5.0).abs() < 1e-12);
        // clamped at both ends
        assert_eq!(point_at_offset(&line, -3.0).unwrap(), line[0]);
        assert_eq!(point_at_offset(&line, 1e9).unwrap(), line[2]);
    }

    #[test]
    fn heading_at_offset_picks_leg() {
        let line = [
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
        ];
        // first leg points east (0 rad), second leg north (pi/2)
        assert!((heading_at_offset(&line, 5.0).unwrap() - 0.0).abs() < 1e-12);
        assert!(
            (heading_at_offset(&line, 15.0).unwrap() - std::f64::consts::FRAC_PI_2).abs() < 1e-12
        );
        // clamped beyond the end
        assert!(
            (heading_at_offset(&line, 100.0).unwrap() - std::f64::consts::FRAC_PI_2).abs() < 1e-12
        );
        assert!(heading_at_offset(&line[..1], 0.0).is_none());
    }

    #[test]
    fn turn_angle_wraps() {
        use std::f64::consts::PI;
        assert!((turn_angle(0.0, PI / 2.0) - PI / 2.0).abs() < 1e-12);
        // wrap-around: -170deg vs +170deg is a 20deg turn
        let a = -170.0f64.to_radians();
        let b = 170.0f64.to_radians();
        assert!((turn_angle(a, b) - 20.0f64.to_radians()).abs() < 1e-9);
    }

    #[test]
    fn lonlat_projection_is_monotone() {
        let a = Point::new(0.0, 0.0).to_lonlat();
        let b = Point::new(1000.0, 1000.0).to_lonlat();
        assert!(b.0 > a.0 && b.1 > a.1);
        // 1 km north is roughly 0.009 degrees of latitude
        assert!((b.1 - a.1 - 0.009).abs() < 1e-3);
    }
}
