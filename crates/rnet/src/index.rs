//! Uniform-grid spatial index over road segments.
//!
//! The map matcher must find, for every GPS point, the road segments within
//! an error radius (candidate set). A uniform grid over segment bounding
//! boxes answers that query in O(cells touched + candidates), which is
//! ample for city-scale networks (thousands of segments) and keeps the
//! per-point detection cost flat — the property behind the paper's
//! sub-0.1 ms per-point claim.

use crate::geo::{self, Point};
use crate::graph::{RoadNetwork, SegmentId};

/// A candidate segment near a query point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The nearby segment.
    pub segment: SegmentId,
    /// Distance from the query point to the segment, metres.
    pub distance: f64,
    /// Arc-length offset of the projection along the segment, metres.
    pub offset: f64,
}

/// Uniform grid index over the segments of a [`RoadNetwork`].
#[derive(Debug, Clone)]
pub struct SegmentIndex {
    cell_size: f64,
    min: Point,
    cols: usize,
    rows: usize,
    cells: Vec<Vec<SegmentId>>,
}

impl SegmentIndex {
    /// Builds an index with the given cell size (metres). A cell size around
    /// the mean segment length (~100 m) works well.
    ///
    /// # Panics
    /// Panics if `cell_size` is not strictly positive or the network has no
    /// segments.
    pub fn build(net: &RoadNetwork, cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "cell_size must be positive");
        assert!(net.num_segments() > 0, "cannot index an empty network");
        let (min, max) = net.bounds();
        let cols = (((max.x - min.x) / cell_size).floor() as usize + 1).max(1);
        let rows = (((max.y - min.y) / cell_size).floor() as usize + 1).max(1);
        let mut cells = vec![Vec::new(); cols * rows];
        for seg in net.segments() {
            let (lo, hi) = polyline_bbox(&seg.geometry);
            let c0 = ((lo.x - min.x) / cell_size).floor().max(0.0) as usize;
            let c1 = (((hi.x - min.x) / cell_size).floor() as usize).min(cols - 1);
            let r0 = ((lo.y - min.y) / cell_size).floor().max(0.0) as usize;
            let r1 = (((hi.y - min.y) / cell_size).floor() as usize).min(rows - 1);
            for r in r0..=r1 {
                for c in c0..=c1 {
                    cells[r * cols + c].push(seg.id);
                }
            }
        }
        SegmentIndex {
            cell_size,
            min,
            cols,
            rows,
            cells,
        }
    }

    /// All segments whose distance to `p` is at most `radius`, sorted by
    /// distance (ascending, ties by id for determinism).
    pub fn candidates(&self, net: &RoadNetwork, p: &Point, radius: f64) -> Vec<Candidate> {
        let mut out = Vec::new();
        let c0 = (((p.x - radius) - self.min.x) / self.cell_size)
            .floor()
            .max(0.0) as usize;
        let r0 = (((p.y - radius) - self.min.y) / self.cell_size)
            .floor()
            .max(0.0) as usize;
        let c1 =
            ((((p.x + radius) - self.min.x) / self.cell_size).floor() as usize).min(self.cols - 1);
        let r1 =
            ((((p.y + radius) - self.min.y) / self.cell_size).floor() as usize).min(self.rows - 1);
        let mut seen = std::collections::HashSet::new();
        for r in r0..=r1 {
            for c in c0..=c1 {
                for &sid in &self.cells[r * self.cols + c] {
                    if !seen.insert(sid) {
                        continue;
                    }
                    let seg = net.segment(sid);
                    if let Some((proj, offset)) = geo::project_onto_polyline(p, &seg.geometry) {
                        if proj.distance <= radius {
                            out.push(Candidate {
                                segment: sid,
                                distance: proj.distance,
                                offset,
                            });
                        }
                    }
                }
            }
        }
        out.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .unwrap()
                .then_with(|| a.segment.cmp(&b.segment))
        });
        out
    }

    /// The nearest segment to `p` within `radius`, if any.
    pub fn nearest(&self, net: &RoadNetwork, p: &Point, radius: f64) -> Option<Candidate> {
        self.candidates(net, p, radius).into_iter().next()
    }

    /// Grid dimensions `(cols, rows)` — exposed for tests and diagnostics.
    pub fn grid_shape(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }
}

fn polyline_bbox(line: &[Point]) -> (Point, Point) {
    let mut lo = Point::new(f64::INFINITY, f64::INFINITY);
    let mut hi = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
    for p in line {
        lo.x = lo.x.min(p.x);
        lo.y = lo.y.min(p.y);
        hi.x = hi.x.max(p.x);
        hi.y = hi.y.max(p.y);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{RoadClass, RoadNetworkBuilder};

    fn two_street_net() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        // Horizontal street at y=0, vertical street at x=500.
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(500.0, 0.0));
        let d = b.add_node(Point::new(500.0, 500.0));
        b.add_segment(a, c, RoadClass::Arterial); // e0
        b.add_segment(c, d, RoadClass::Local); // e1
        b.build()
    }

    #[test]
    fn candidates_within_radius() {
        let net = two_street_net();
        let idx = SegmentIndex::build(&net, 100.0);
        let p = Point::new(250.0, 30.0);
        let cands = idx.candidates(&net, &p, 50.0);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].segment, SegmentId(0));
        assert!((cands[0].distance - 30.0).abs() < 1e-9);
        assert!((cands[0].offset - 250.0).abs() < 1e-9);
    }

    #[test]
    fn candidates_sorted_by_distance() {
        let net = two_street_net();
        let idx = SegmentIndex::build(&net, 100.0);
        // Near the corner: both segments in range, e1 closer.
        let p = Point::new(510.0, 40.0);
        let cands = idx.candidates(&net, &p, 100.0);
        assert_eq!(cands.len(), 2);
        assert_eq!(cands[0].segment, SegmentId(1));
        assert!(cands[0].distance <= cands[1].distance);
    }

    #[test]
    fn nearest_none_when_out_of_range() {
        let net = two_street_net();
        let idx = SegmentIndex::build(&net, 100.0);
        assert!(idx.nearest(&net, &Point::new(0.0, 400.0), 50.0).is_none());
        assert!(idx.nearest(&net, &Point::new(0.0, 400.0), 450.0).is_some());
    }

    #[test]
    fn query_far_outside_grid_is_clamped() {
        let net = two_street_net();
        let idx = SegmentIndex::build(&net, 100.0);
        // Point far outside the bounding box must not panic and must still
        // find segments when the radius reaches them.
        let p = Point::new(-1000.0, -1000.0);
        assert!(idx.candidates(&net, &p, 10.0).is_empty());
        let cands = idx.candidates(&net, &p, 2000.0);
        assert!(!cands.is_empty());
    }

    #[test]
    fn brute_force_agreement() {
        // Index results must match a brute-force scan for random queries.
        use rand::{Rng, SeedableRng};
        let net = two_street_net();
        let idx = SegmentIndex::build(&net, 73.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let p = Point::new(rng.gen_range(-100.0..700.0), rng.gen_range(-100.0..700.0));
            let radius = rng.gen_range(10.0..400.0);
            let got: Vec<_> = idx
                .candidates(&net, &p, radius)
                .into_iter()
                .map(|c| c.segment)
                .collect();
            let mut want: Vec<_> = net
                .segments()
                .iter()
                .filter_map(|s| {
                    let (proj, _) = geo::project_onto_polyline(&p, &s.geometry)?;
                    (proj.distance <= radius).then_some((proj.distance, s.id))
                })
                .collect();
            want.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then_with(|| a.1.cmp(&b.1)));
            let want: Vec<_> = want.into_iter().map(|(_, id)| id).collect();
            assert_eq!(got, want, "mismatch at p=({}, {}), r={}", p.x, p.y, radius);
        }
    }
}
