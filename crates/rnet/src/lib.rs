//! Road-network substrate for the RL4OASD reproduction.
//!
//! The paper evaluates on road networks of Chengdu and Xi'an obtained from
//! OpenStreetMap. Those extracts (and the DiDi trajectories that traverse
//! them) are not redistributable, so this crate provides:
//!
//! * a directed road-network graph ([`RoadNetwork`]) with the exact
//!   properties the algorithms consume — per-segment geometry and length,
//!   intersection in/out degrees (used by the paper's Road Network Enhanced
//!   Labeling rules), road classes and speed limits (traffic-context
//!   features);
//! * a synthetic **city generator** ([`generator::CityBuilder`]) that builds
//!   degree-heterogeneous, imperfect grid cities sized like the paper's
//!   datasets (Table II: 4,885 / 5,052 segments), plus a Porto-style
//!   ring-and-spoke generator ([`generator::RadialCityBuilder`]) so the
//!   scenario suite can run cross-network;
//! * **shortest-path** machinery ([`path`]) used by the map matcher and by
//!   the traffic simulator's route-family construction;
//! * a **spatial index** ([`index::SegmentIndex`]) for GPS-point candidate
//!   lookup during map matching.
//!
//! Coordinates are planar metres in a city-local frame. Helpers convert to
//! pseudo lon/lat for display parity with the paper's case-study figures.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod astar;
pub mod generator;
pub mod geo;
pub mod graph;
pub mod index;
pub mod path;

pub use astar::{alternative_routes, astar};
pub use generator::{CityBuilder, CityConfig, RadialCityBuilder, RadialCityConfig};
pub use geo::Point;
pub use graph::{NodeId, RoadClass, RoadNetwork, RoadNetworkBuilder, Segment, SegmentId};
pub use index::SegmentIndex;
pub use path::{dijkstra, shortest_path, PathResult};
