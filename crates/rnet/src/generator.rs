//! Synthetic city generator.
//!
//! The paper's road networks (Chengdu, Xi'an) come from OpenStreetMap and
//! carry DiDi's proprietary traffic. This module builds *imperfect grid
//! cities* with the statistical properties the algorithms actually consume:
//!
//! * thousands of directed segments (~100 m each, Table II scale);
//! * heterogeneous intersection degrees — some corridors have no
//!   alternatives (degree-1 chains, where the paper's RNEL rules fire) and
//!   some are dense grid crossings with 3–4 choices;
//! * a road-class hierarchy (arterial avenues every few blocks, collectors,
//!   local streets) feeding the traffic-context features;
//! * mild geometric jitter and curvature so map matching is non-trivial.
//!
//! Determinism: every build is a pure function of [`CityConfig`] (including
//! its seed), which the test suite relies on.

use crate::geo::Point;
use crate::graph::{NodeId, RoadClass, RoadNetwork, RoadNetworkBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the grid-city generator.
#[derive(Debug, Clone, PartialEq)]
pub struct CityConfig {
    /// Number of node columns.
    pub cols: usize,
    /// Number of node rows.
    pub rows: usize,
    /// Block edge length in metres.
    pub spacing: f64,
    /// Max node position jitter as a fraction of `spacing` (0.0–0.4).
    pub jitter: f64,
    /// Probability of removing a (two-way) local street, creating irregular
    /// blocks and degree heterogeneity. Arterials are never removed.
    pub removal_prob: f64,
    /// Every `arterial_every`-th grid line is an arterial avenue.
    pub arterial_every: usize,
    /// RNG seed; equal configs build identical cities.
    pub seed: u64,
}

impl CityConfig {
    /// Chengdu-scale preset: ~4.8k directed segments (paper: 4,885).
    pub fn chengdu_like() -> Self {
        CityConfig {
            cols: 35,
            rows: 35,
            spacing: 110.0,
            jitter: 0.18,
            removal_prob: 0.12,
            arterial_every: 5,
            seed: 0xC4E6_0001,
        }
    }

    /// Xi'an-scale preset: ~5.0k directed segments (paper: 5,052).
    pub fn xian_like() -> Self {
        CityConfig {
            cols: 36,
            rows: 36,
            spacing: 105.0,
            jitter: 0.22,
            removal_prob: 0.10,
            arterial_every: 6,
            seed: 0x71A6_0002,
        }
    }

    /// Small city for unit tests (fast to build, still degree-heterogeneous).
    pub fn tiny(seed: u64) -> Self {
        CityConfig {
            cols: 8,
            rows: 8,
            spacing: 100.0,
            jitter: 0.1,
            removal_prob: 0.1,
            arterial_every: 3,
            seed,
        }
    }
}

/// Builds synthetic cities from a [`CityConfig`].
#[derive(Debug, Clone)]
pub struct CityBuilder {
    config: CityConfig,
}

impl CityBuilder {
    /// Creates a builder for the given config.
    pub fn new(config: CityConfig) -> Self {
        assert!(
            config.cols >= 2 && config.rows >= 2,
            "city needs a 2x2 grid"
        );
        assert!(
            (0.0..=0.4).contains(&config.jitter),
            "jitter must be in [0, 0.4]"
        );
        assert!(
            (0.0..1.0).contains(&config.removal_prob),
            "removal_prob must be in [0, 1)"
        );
        CityBuilder { config }
    }

    /// Generates the road network.
    pub fn build(&self) -> RoadNetwork {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut b = RoadNetworkBuilder::new();

        // 1. Nodes: jittered grid.
        let mut node_ids = vec![vec![NodeId(0); cfg.cols]; cfg.rows];
        for (r, row) in node_ids.iter_mut().enumerate() {
            for (c, slot) in row.iter_mut().enumerate() {
                let jx = rng.gen_range(-cfg.jitter..=cfg.jitter) * cfg.spacing;
                let jy = rng.gen_range(-cfg.jitter..=cfg.jitter) * cfg.spacing;
                *slot = b.add_node(Point::new(
                    c as f64 * cfg.spacing + jx,
                    r as f64 * cfg.spacing + jy,
                ));
            }
        }

        // 2. Candidate streets between grid neighbours. A street on an
        //    arterial line (or the perimeter) is protected from removal so a
        //    connected backbone always survives.
        struct Street {
            u: NodeId,
            v: NodeId,
            class: RoadClass,
            protected: bool,
        }
        let line_class = |i: usize, n: usize| -> (RoadClass, bool) {
            if i == 0 || i == n - 1 || i.is_multiple_of(self.config.arterial_every) {
                (RoadClass::Arterial, true)
            } else if i.is_multiple_of(2) {
                (RoadClass::Collector, false)
            } else {
                (RoadClass::Local, false)
            }
        };
        let mut streets = Vec::new();
        for (r, row) in node_ids.iter().enumerate() {
            let (class, protected) = line_class(r, cfg.rows);
            for c in 0..cfg.cols - 1 {
                streets.push(Street {
                    u: row[c],
                    v: row[c + 1],
                    class,
                    protected,
                });
            }
        }
        for c in 0..cfg.cols {
            let (class, protected) = line_class(c, cfg.cols);
            for pair in node_ids.windows(2) {
                streets.push(Street {
                    u: pair[0][c],
                    v: pair[1][c],
                    class,
                    protected,
                });
            }
        }

        // 3. Randomly drop unprotected streets.
        let kept: Vec<&Street> = streets
            .iter()
            .filter(|s| s.protected || rng.gen::<f64>() >= cfg.removal_prob)
            .collect();

        // 4. Realise kept streets as two directed segments with a curved
        //    3-point geometry (midpoint bowed sideways).
        for s in kept {
            let pu = b.node_position(s.u);
            let pv = b.node_position(s.v);
            let mid = pu.lerp(&pv, 0.5);
            let dx = pv.x - pu.x;
            let dy = pv.y - pu.y;
            let norm = (dx * dx + dy * dy).sqrt().max(1e-9);
            let bow = rng.gen_range(-0.06..=0.06) * norm;
            let mid = Point::new(mid.x - dy / norm * bow, mid.y + dx / norm * bow);
            b.add_segment_with_geometry(s.u, s.v, s.class, vec![pu, mid, pv]);
            b.add_segment_with_geometry(s.v, s.u, s.class, vec![pv, mid, pu]);
        }

        let net = b.build();
        debug_assert!(
            strongly_connected(&net),
            "backbone must keep the city strongly connected"
        );
        net
    }
}

/// Configuration for the radial (ring + spoke) city generator.
///
/// European coastal cities like Porto grew outward from a historic core:
/// concentric ring roads crossed by radial avenues, rather than the planned
/// grid of the Chinese cities in the paper. This topology stresses the
/// detectors differently — route families share long radial prefixes,
/// detours hop between rings, and segment lengths grow with distance from
/// the centre (inner ring arcs are short, outer ones long).
#[derive(Debug, Clone, PartialEq)]
pub struct RadialCityConfig {
    /// Number of concentric rings around the centre node.
    pub rings: usize,
    /// Number of radial spokes (nodes per ring).
    pub spokes: usize,
    /// Distance between consecutive rings in metres.
    pub ring_spacing: f64,
    /// Max node position jitter as a fraction of `ring_spacing` (0.0–0.4).
    pub jitter: f64,
    /// Probability of removing a (two-way) non-arterial radial street.
    /// Ring arcs and arterial spokes are never removed, so every build
    /// stays strongly connected.
    pub removal_prob: f64,
    /// Every `arterial_every`-th spoke is a protected arterial avenue.
    pub arterial_every: usize,
    /// RNG seed; equal configs build identical cities.
    pub seed: u64,
}

impl RadialCityConfig {
    /// Porto-scale preset: ~2.5k directed segments — deliberately a
    /// different scale *and* topology than [`CityConfig::chengdu_like`], so
    /// cross-network scenarios exercise both.
    pub fn porto_like() -> Self {
        RadialCityConfig {
            rings: 18,
            spokes: 36,
            ring_spacing: 130.0,
            jitter: 0.15,
            removal_prob: 0.12,
            arterial_every: 6,
            seed: 0x9027_0003,
        }
    }

    /// Small radial city for unit tests (41 nodes, fast to build).
    pub fn tiny(seed: u64) -> Self {
        RadialCityConfig {
            rings: 4,
            spokes: 10,
            ring_spacing: 120.0,
            jitter: 0.1,
            removal_prob: 0.1,
            arterial_every: 3,
            seed,
        }
    }
}

/// Builds radial (ring + spoke) cities from a [`RadialCityConfig`].
#[derive(Debug, Clone)]
pub struct RadialCityBuilder {
    config: RadialCityConfig,
}

impl RadialCityBuilder {
    /// Creates a builder for the given config.
    pub fn new(config: RadialCityConfig) -> Self {
        assert!(
            config.rings >= 2 && config.spokes >= 3,
            "radial city needs >= 2 rings and >= 3 spokes"
        );
        assert!(
            (0.0..=0.4).contains(&config.jitter),
            "jitter must be in [0, 0.4]"
        );
        assert!(
            (0.0..1.0).contains(&config.removal_prob),
            "removal_prob must be in [0, 1)"
        );
        assert!(config.arterial_every >= 1, "arterial_every must be >= 1");
        RadialCityBuilder { config }
    }

    /// Generates the road network.
    pub fn build(&self) -> RoadNetwork {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut b = RoadNetworkBuilder::new();

        // 1. Nodes: historic core + jittered concentric rings.
        let centre = b.add_node(Point::new(0.0, 0.0));
        let mut ring_nodes = vec![vec![NodeId(0); cfg.spokes]; cfg.rings];
        for (k, ring) in ring_nodes.iter_mut().enumerate() {
            let radius = (k + 1) as f64 * cfg.ring_spacing;
            for (s, slot) in ring.iter_mut().enumerate() {
                let theta = std::f64::consts::TAU * s as f64 / cfg.spokes as f64;
                let jr = rng.gen_range(-cfg.jitter..=cfg.jitter) * cfg.ring_spacing;
                let jt =
                    rng.gen_range(-cfg.jitter..=cfg.jitter) * cfg.ring_spacing / radius.max(1.0);
                let r = radius + jr;
                let t = theta + jt;
                *slot = b.add_node(Point::new(r * t.cos(), r * t.sin()));
            }
        }

        // 2. Candidate streets. Ring arcs and arterial spokes are protected
        //    so the ring-cycles + arterial-radials backbone always keeps the
        //    city strongly connected.
        struct Street {
            u: NodeId,
            v: NodeId,
            class: RoadClass,
            protected: bool,
        }
        let ring_class = |k: usize| -> RoadClass {
            if k == 0 || k == cfg.rings - 1 || (k + 1).is_multiple_of(cfg.arterial_every) {
                RoadClass::Arterial
            } else if k.is_multiple_of(2) {
                RoadClass::Collector
            } else {
                RoadClass::Local
            }
        };
        let spoke_class = |s: usize| -> (RoadClass, bool) {
            if s.is_multiple_of(cfg.arterial_every) {
                (RoadClass::Arterial, true)
            } else if s.is_multiple_of(2) {
                (RoadClass::Collector, false)
            } else {
                (RoadClass::Local, false)
            }
        };
        let mut streets = Vec::new();
        // Ring arcs between angular neighbours (always protected).
        for (k, ring) in ring_nodes.iter().enumerate() {
            let class = ring_class(k);
            for s in 0..cfg.spokes {
                streets.push(Street {
                    u: ring[s],
                    v: ring[(s + 1) % cfg.spokes],
                    class,
                    protected: true,
                });
            }
        }
        // Radial streets along each spoke: centre -> ring 0 -> ... -> rim.
        for (s, &inner) in ring_nodes[0].iter().enumerate() {
            let (class, protected) = spoke_class(s);
            streets.push(Street {
                u: centre,
                v: inner,
                class,
                protected,
            });
            for rings in ring_nodes.windows(2) {
                streets.push(Street {
                    u: rings[0][s],
                    v: rings[1][s],
                    class,
                    protected,
                });
            }
        }

        // 3. Randomly drop unprotected (non-arterial radial) streets.
        let kept: Vec<&Street> = streets
            .iter()
            .filter(|s| s.protected || rng.gen::<f64>() >= cfg.removal_prob)
            .collect();

        // 4. Realise kept streets as two directed segments with a curved
        //    3-point geometry (midpoint bowed sideways), like the grid.
        for s in kept {
            let pu = b.node_position(s.u);
            let pv = b.node_position(s.v);
            let mid = pu.lerp(&pv, 0.5);
            let dx = pv.x - pu.x;
            let dy = pv.y - pu.y;
            let norm = (dx * dx + dy * dy).sqrt().max(1e-9);
            let bow = rng.gen_range(-0.06..=0.06) * norm;
            let mid = Point::new(mid.x - dy / norm * bow, mid.y + dx / norm * bow);
            b.add_segment_with_geometry(s.u, s.v, s.class, vec![pu, mid, pv]);
            b.add_segment_with_geometry(s.v, s.u, s.class, vec![pv, mid, pu]);
        }

        let net = b.build();
        debug_assert!(
            strongly_connected(&net),
            "ring backbone must keep the radial city strongly connected"
        );
        net
    }
}

/// Whether every node can reach and be reached from node 0.
pub fn strongly_connected(net: &RoadNetwork) -> bool {
    if net.num_nodes() == 0 {
        return true;
    }
    let fwd = bfs_reach(net, NodeId(0), false);
    let bwd = bfs_reach(net, NodeId(0), true);
    fwd.iter().all(|&r| r) && bwd.iter().all(|&r| r)
}

fn bfs_reach(net: &RoadNetwork, start: NodeId, reversed: bool) -> Vec<bool> {
    let mut seen = vec![false; net.num_nodes()];
    let mut queue = std::collections::VecDeque::new();
    seen[start.idx()] = true;
    queue.push_back(start);
    while let Some(n) = queue.pop_front() {
        let segs = if reversed {
            net.in_segments(n)
        } else {
            net.out_segments(n)
        };
        for &sid in segs {
            let seg = net.segment(sid);
            let next = if reversed { seg.from } else { seg.to };
            if !seen[next.idx()] {
                seen[next.idx()] = true;
                queue.push_back(next);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_city_is_strongly_connected() {
        let net = CityBuilder::new(CityConfig::tiny(3)).build();
        assert!(strongly_connected(&net));
        assert!(net.num_segments() > 50);
        assert_eq!(net.num_nodes(), 64);
    }

    #[test]
    fn builds_are_deterministic() {
        let a = CityBuilder::new(CityConfig::tiny(42)).build();
        let b = CityBuilder::new(CityConfig::tiny(42)).build();
        assert_eq!(a.num_segments(), b.num_segments());
        for (sa, sb) in a.segments().iter().zip(b.segments().iter()) {
            assert_eq!(sa.from, sb.from);
            assert_eq!(sa.to, sb.to);
            assert!((sa.length - sb.length).abs() < 1e-12);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = CityBuilder::new(CityConfig::tiny(1)).build();
        let b = CityBuilder::new(CityConfig::tiny(2)).build();
        // Node jitter differs, so segment lengths differ somewhere.
        let differs = a
            .segments()
            .iter()
            .zip(b.segments().iter())
            .any(|(x, y)| (x.length - y.length).abs() > 1e-9)
            || a.num_segments() != b.num_segments();
        assert!(differs);
    }

    #[test]
    fn chengdu_preset_matches_paper_scale() {
        let net = CityBuilder::new(CityConfig::chengdu_like()).build();
        // Paper Table II: 4,885 segments. Accept +-15%.
        let n = net.num_segments() as f64;
        assert!(n > 4_885.0 * 0.85 && n < 4_885.0 * 1.15, "got {n}");
        assert!(strongly_connected(&net));
    }

    #[test]
    fn xian_preset_matches_paper_scale() {
        let net = CityBuilder::new(CityConfig::xian_like()).build();
        let n = net.num_segments() as f64;
        assert!(n > 5_052.0 * 0.85 && n < 5_052.0 * 1.15, "got {n}");
    }

    #[test]
    fn degree_heterogeneity_exists() {
        // RNEL needs both degree-1 corridors and >1-degree choice points.
        let net = CityBuilder::new(CityConfig::tiny(9)).build();
        let mut deg1 = 0usize;
        let mut deg_many = 0usize;
        for s in net.segment_ids() {
            match net.out_degree(s) {
                0 | 1 => deg1 += 1,
                _ => deg_many += 1,
            }
        }
        assert!(deg_many > 0, "need choice intersections");
        // deg1 may be rare in a dense grid, but removal creates some chains;
        // accept zero only if removal_prob was zero.
        let _ = deg1;
    }

    #[test]
    fn road_classes_present() {
        let net = CityBuilder::new(CityConfig::tiny(5)).build();
        let mut classes = std::collections::HashSet::new();
        for s in net.segments() {
            classes.insert(s.class.code());
        }
        assert!(classes.contains(&0), "arterials exist");
        assert!(classes.len() >= 2, "class hierarchy exists");
    }

    #[test]
    fn geometry_is_curved_but_bounded() {
        let net = CityBuilder::new(CityConfig::tiny(11)).build();
        for s in net.segments() {
            assert_eq!(s.geometry.len(), 3);
            // Arc length is at least the straight-line distance and not
            // absurdly longer.
            let chord = s.geometry[0].dist(&s.geometry[2]);
            assert!(s.length >= chord - 1e-9);
            assert!(s.length <= chord * 1.2);
        }
    }

    // ---- radial (Porto-style) city -------------------------------------

    #[test]
    fn tiny_radial_city_is_strongly_connected() {
        let net = RadialCityBuilder::new(RadialCityConfig::tiny(3)).build();
        assert!(strongly_connected(&net));
        assert!(net.num_segments() > 50);
        assert_eq!(net.num_nodes(), 1 + 4 * 10);
    }

    #[test]
    fn radial_builds_are_deterministic() {
        let a = RadialCityBuilder::new(RadialCityConfig::tiny(42)).build();
        let b = RadialCityBuilder::new(RadialCityConfig::tiny(42)).build();
        assert_eq!(a.num_segments(), b.num_segments());
        for (sa, sb) in a.segments().iter().zip(b.segments().iter()) {
            assert_eq!(sa.from, sb.from);
            assert_eq!(sa.to, sb.to);
            assert!((sa.length - sb.length).abs() < 1e-12);
        }
    }

    #[test]
    fn radial_different_seeds_differ() {
        let a = RadialCityBuilder::new(RadialCityConfig::tiny(1)).build();
        let b = RadialCityBuilder::new(RadialCityConfig::tiny(2)).build();
        let differs = a
            .segments()
            .iter()
            .zip(b.segments().iter())
            .any(|(x, y)| (x.length - y.length).abs() > 1e-9)
            || a.num_segments() != b.num_segments();
        assert!(differs);
    }

    #[test]
    fn porto_preset_is_a_different_scale_than_chengdu() {
        let porto = RadialCityBuilder::new(RadialCityConfig::porto_like()).build();
        assert!(strongly_connected(&porto));
        let n = porto.num_segments();
        assert!((2_000..3_200).contains(&n), "got {n}");
        let chengdu = CityBuilder::new(CityConfig::chengdu_like()).build();
        // Cross-network scenarios need genuinely different scales.
        assert!((n as f64) < chengdu.num_segments() as f64 * 0.75);
    }

    #[test]
    fn radial_road_classes_present() {
        let net = RadialCityBuilder::new(RadialCityConfig::tiny(5)).build();
        let mut classes = std::collections::HashSet::new();
        for s in net.segments() {
            classes.insert(s.class.code());
        }
        assert!(classes.contains(&0), "arterials exist");
        assert!(classes.len() >= 2, "class hierarchy exists");
    }

    #[test]
    fn radial_geometry_is_curved_but_bounded() {
        let net = RadialCityBuilder::new(RadialCityConfig::tiny(11)).build();
        for s in net.segments() {
            assert_eq!(s.geometry.len(), 3);
            let chord = s.geometry[0].dist(&s.geometry[2]);
            assert!(s.length >= chord - 1e-9);
            assert!(s.length <= chord * 1.2);
        }
    }

    #[test]
    fn radial_degree_heterogeneity_exists() {
        let net = RadialCityBuilder::new(RadialCityConfig::tiny(9)).build();
        let mut deg_many = 0usize;
        for s in net.segment_ids() {
            if net.out_degree(s) > 1 {
                deg_many += 1;
            }
        }
        assert!(deg_many > 0, "need choice intersections");
    }
}
