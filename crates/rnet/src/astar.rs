//! A* shortest paths and alternative-route enumeration.
//!
//! Dijkstra ([`crate::path`]) is the workhorse for one-to-many queries (map
//! matching, simulator route families). For one-to-one queries — the CTSS
//! reference-route computation and interactive routing in the examples — A*
//! with the straight-line-distance heuristic expands a fraction of the
//! nodes. [`alternative_routes`] produces a small set of dissimilar routes
//! via the standard penalty method, which downstream users (and the
//! simulator's route families) can use to model route choice.

use crate::geo::Point;
use crate::graph::{NodeId, RoadNetwork, SegmentId};
use crate::path::PathResult;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashMap;

#[derive(PartialEq)]
struct Entry {
    f: f64,
    g: f64,
    node: NodeId,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .f
            .partial_cmp(&self.f)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A* shortest path by length with the Euclidean heuristic (admissible:
/// road lengths are at least the straight-line distance).
///
/// Returns `None` if `target` is unreachable; `source == target` yields an
/// empty path.
pub fn astar(net: &RoadNetwork, source: NodeId, target: NodeId) -> Option<PathResult> {
    astar_weighted(net, source, target, |s| net.segment(s).length)
}

/// A* under a custom weight function. The Euclidean heuristic remains
/// admissible as long as `weight(s) >= straight-line length of s`, which
/// holds for any non-negative per-metre penalty ≥ 1; for arbitrary weights
/// the result is still a path but may be suboptimal — callers needing exact
/// optima under discounted weights should use Dijkstra.
pub fn astar_weighted<W>(
    net: &RoadNetwork,
    source: NodeId,
    target: NodeId,
    mut weight: W,
) -> Option<PathResult>
where
    W: FnMut(SegmentId) -> f64,
{
    let goal: Point = net.node(target);
    let h = |n: NodeId| net.node(n).dist(&goal);
    let mut g_score: HashMap<NodeId, f64> = HashMap::new();
    let mut parent: HashMap<NodeId, SegmentId> = HashMap::new();
    let mut heap = BinaryHeap::new();
    g_score.insert(source, 0.0);
    heap.push(Entry {
        f: h(source),
        g: 0.0,
        node: source,
    });
    while let Some(Entry { g, node, .. }) = heap.pop() {
        if node == target {
            // reconstruct
            let mut segments = Vec::new();
            let mut cur = target;
            while cur != source {
                let sid = *parent.get(&cur)?;
                segments.push(sid);
                cur = net.segment(sid).from;
            }
            segments.reverse();
            return Some(PathResult { segments, cost: g });
        }
        if g > *g_score.get(&node).unwrap_or(&f64::INFINITY) {
            continue;
        }
        for &sid in net.out_segments(node) {
            let w = weight(sid);
            if !w.is_finite() {
                continue;
            }
            let next = net.segment(sid).to;
            let ng = g + w;
            if ng < *g_score.get(&next).unwrap_or(&f64::INFINITY) {
                g_score.insert(next, ng);
                parent.insert(next, sid);
                heap.push(Entry {
                    f: ng + h(next),
                    g: ng,
                    node: next,
                });
            }
        }
    }
    None
}

/// Up to `k` dissimilar routes from `source` to `target` via the penalty
/// method: each found route's segments are penalised by `penalty_factor`
/// before the next search, pushing subsequent searches onto alternatives.
/// The first route is the true shortest path. Duplicate routes are dropped.
pub fn alternative_routes(
    net: &RoadNetwork,
    source: NodeId,
    target: NodeId,
    k: usize,
    penalty_factor: f64,
) -> Vec<PathResult> {
    assert!(penalty_factor >= 1.0, "penalty must not shorten edges");
    let mut penalties: HashMap<SegmentId, f64> = HashMap::new();
    let mut routes: Vec<PathResult> = Vec::new();
    for _ in 0..k {
        let found = astar_weighted(net, source, target, |s| {
            net.segment(s).length * penalties.get(&s).copied().unwrap_or(1.0)
        });
        let Some(route) = found else { break };
        for &s in &route.segments {
            *penalties.entry(s).or_insert(1.0) *= penalty_factor;
        }
        if routes.iter().all(|r| r.segments != route.segments) {
            // report the route's true length, not the penalised cost
            let cost = net.path_length(&route.segments);
            routes.push(PathResult {
                segments: route.segments,
                cost,
            });
        }
    }
    routes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CityBuilder, CityConfig};
    use crate::path::shortest_path;

    fn city(seed: u64) -> RoadNetwork {
        CityBuilder::new(CityConfig::tiny(seed)).build()
    }

    #[test]
    fn astar_matches_dijkstra_costs() {
        let net = city(1);
        let n = net.num_nodes() as u32;
        for (s, t) in [(0u32, n - 1), (3, n / 2), (n / 3, 1)] {
            let a = astar(&net, NodeId(s), NodeId(t)).unwrap();
            let d = shortest_path(&net, NodeId(s), NodeId(t)).unwrap();
            assert!(
                (a.cost - d.cost).abs() < 1e-6,
                "A* {} vs Dijkstra {}",
                a.cost,
                d.cost
            );
            assert!(net.is_connected_path(&a.segments));
        }
    }

    #[test]
    fn astar_trivial_and_unreachable() {
        let net = city(2);
        let same = astar(&net, NodeId(5), NodeId(5)).unwrap();
        assert!(same.segments.is_empty());
        assert_eq!(same.cost, 0.0);
    }

    #[test]
    fn alternatives_are_distinct_and_sorted_by_generation() {
        let net = city(3);
        let n = net.num_nodes() as u32;
        let routes = alternative_routes(&net, NodeId(0), NodeId(n - 1), 3, 1.6);
        assert!(!routes.is_empty());
        // first route is the true shortest path
        let sp = shortest_path(&net, NodeId(0), NodeId(n - 1)).unwrap();
        assert!((routes[0].cost - sp.cost).abs() < 1e-6);
        // all distinct and connected, with true (unpenalised) costs
        for (i, r) in routes.iter().enumerate() {
            assert!(net.is_connected_path(&r.segments));
            assert!((r.cost - net.path_length(&r.segments)).abs() < 1e-9);
            for other in &routes[i + 1..] {
                assert_ne!(r.segments, other.segments);
            }
            // alternatives can't beat the shortest path
            assert!(r.cost >= routes[0].cost - 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "penalty")]
    fn penalty_below_one_rejected() {
        let net = city(4);
        alternative_routes(&net, NodeId(0), NodeId(1), 2, 0.5);
    }
}
