//! Directed road-network graph.
//!
//! Matches the paper's preliminaries (§III-A): a road network is a directed
//! graph `G(V, E)` where vertices are intersections and edges are road
//! segments. Map-matched trajectories are sequences of [`SegmentId`]s.
//!
//! The graph exposes exactly the topology the algorithms need:
//! * `out_degree` / `in_degree` of a *segment* (the number of possible next /
//!   previous segments), which drive the paper's Road Network Enhanced
//!   Labeling rules (§IV-E);
//! * per-segment geometry and length for map matching and Fréchet distance;
//! * per-segment traffic context (road class, speed limit) for the
//!   Toast-style embeddings.

use crate::geo::{self, Point};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of an intersection (graph vertex).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

/// Identifier of a road segment (directed graph edge).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct SegmentId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl SegmentId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Functional class of a road, used as a traffic-context feature.
///
/// Mirrors the coarse OSM highway classes relevant to urban taxi data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoadClass {
    /// High-capacity urban artery.
    Arterial,
    /// Connector between arterials and local streets.
    Collector,
    /// Local/residential street.
    Local,
}

impl RoadClass {
    /// Default free-flow speed for the class, metres per second.
    pub fn default_speed(self) -> f64 {
        match self {
            RoadClass::Arterial => 16.7,  // ~60 km/h
            RoadClass::Collector => 11.1, // ~40 km/h
            RoadClass::Local => 8.3,      // ~30 km/h
        }
    }

    /// Small integer code (used as an embedding feature).
    pub fn code(self) -> usize {
        match self {
            RoadClass::Arterial => 0,
            RoadClass::Collector => 1,
            RoadClass::Local => 2,
        }
    }
}

/// A directed road segment (edge `e = (u, v)` of the paper).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Segment {
    /// This segment's id.
    pub id: SegmentId,
    /// Tail intersection.
    pub from: NodeId,
    /// Head intersection.
    pub to: NodeId,
    /// Geometry polyline from `from` to `to` (at least two points).
    pub geometry: Vec<Point>,
    /// Arc length of [`Segment::geometry`] in metres.
    pub length: f64,
    /// Functional class.
    pub class: RoadClass,
    /// Free-flow speed in metres per second.
    pub speed_limit: f64,
}

impl Segment {
    /// Heading (radians) of the segment's first geometry leg.
    pub fn entry_heading(&self) -> f64 {
        geo::heading(&self.geometry[0], &self.geometry[1])
    }

    /// Heading (radians) of the segment's last geometry leg.
    pub fn exit_heading(&self) -> f64 {
        let n = self.geometry.len();
        geo::heading(&self.geometry[n - 2], &self.geometry[n - 1])
    }

    /// Mid point of the segment's geometry (by arc length).
    pub fn midpoint(&self) -> Point {
        geo::point_at_offset(&self.geometry, self.length * 0.5).unwrap_or(self.geometry[0])
    }
}

/// An immutable directed road network.
///
/// Build with [`RoadNetworkBuilder`] or [`crate::generator::CityBuilder`].
/// Serialization stores only nodes and segments; adjacency is rebuilt on
/// deserialization.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(from = "NetworkData", into = "NetworkData")]
pub struct RoadNetwork {
    nodes: Vec<Point>,
    segments: Vec<Segment>,
    /// Outgoing segment ids per node.
    out_adj: Vec<Vec<SegmentId>>,
    /// Incoming segment ids per node.
    in_adj: Vec<Vec<SegmentId>>,
    /// `segment_between[(u, v)]` — the segment from node `u` to node `v`.
    segment_between: HashMap<(NodeId, NodeId), SegmentId>,
}

/// Serialized form of [`RoadNetwork`] (nodes + segments only).
#[derive(Serialize, Deserialize)]
struct NetworkData {
    nodes: Vec<Point>,
    segments: Vec<Segment>,
}

impl From<NetworkData> for RoadNetwork {
    fn from(d: NetworkData) -> Self {
        let mut b = RoadNetworkBuilder {
            nodes: d.nodes,
            segments: d.segments,
        };
        // Preserve ids as stored; builder.build() recomputes adjacency.
        let nodes = std::mem::take(&mut b.nodes);
        let segments = std::mem::take(&mut b.segments);
        RoadNetworkBuilder { nodes, segments }.build()
    }
}

impl From<RoadNetwork> for NetworkData {
    fn from(n: RoadNetwork) -> Self {
        NetworkData {
            nodes: n.nodes,
            segments: n.segments,
        }
    }
}

impl RoadNetwork {
    /// Number of intersections.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of road segments.
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Position of intersection `n`.
    #[inline]
    pub fn node(&self, n: NodeId) -> Point {
        self.nodes[n.idx()]
    }

    /// The segment with id `s`.
    #[inline]
    pub fn segment(&self, s: SegmentId) -> &Segment {
        &self.segments[s.idx()]
    }

    /// All segments, ordered by id.
    #[inline]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterator over all segment ids.
    pub fn segment_ids(&self) -> impl Iterator<Item = SegmentId> + '_ {
        (0..self.segments.len() as u32).map(SegmentId)
    }

    /// Outgoing segments of node `n`.
    #[inline]
    pub fn out_segments(&self, n: NodeId) -> &[SegmentId] {
        &self.out_adj[n.idx()]
    }

    /// Incoming segments of node `n`.
    #[inline]
    pub fn in_segments(&self, n: NodeId) -> &[SegmentId] {
        &self.in_adj[n.idx()]
    }

    /// Segments that can follow `s` (those leaving `s.to`).
    #[inline]
    pub fn successors(&self, s: SegmentId) -> &[SegmentId] {
        self.out_segments(self.segment(s).to)
    }

    /// Segments that can precede `s` (those entering `s.from`).
    #[inline]
    pub fn predecessors(&self, s: SegmentId) -> &[SegmentId] {
        self.in_segments(self.segment(s).from)
    }

    /// The paper's `e.out`: number of alternative transitions *out of* the
    /// segment — the out-degree of its head intersection.
    #[inline]
    pub fn out_degree(&self, s: SegmentId) -> usize {
        self.successors(s).len()
    }

    /// The paper's `e.in`: number of alternative transitions *into* the
    /// segment — the in-degree of its tail intersection.
    #[inline]
    pub fn in_degree(&self, s: SegmentId) -> usize {
        self.predecessors(s).len()
    }

    /// The segment connecting node `u` to node `v`, if one exists.
    #[inline]
    pub fn segment_between(&self, u: NodeId, v: NodeId) -> Option<SegmentId> {
        self.segment_between.get(&(u, v)).copied()
    }

    /// Whether `b` can directly follow `a` on the network (i.e. the
    /// transition `<a, b>` is feasible).
    #[inline]
    pub fn is_transition(&self, a: SegmentId, b: SegmentId) -> bool {
        self.segment(a).to == self.segment(b).from
    }

    /// Checks that a segment sequence is a connected path on the network.
    pub fn is_connected_path(&self, path: &[SegmentId]) -> bool {
        path.windows(2).all(|w| self.is_transition(w[0], w[1]))
    }

    /// Total length (metres) of a segment sequence.
    pub fn path_length(&self, path: &[SegmentId]) -> f64 {
        path.iter().map(|&s| self.segment(s).length).sum()
    }

    /// Bounding box of all node positions, `(min, max)`.
    pub fn bounds(&self) -> (Point, Point) {
        let mut min = Point::new(f64::INFINITY, f64::INFINITY);
        let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in &self.nodes {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        (min, max)
    }
}

/// Incremental builder for [`RoadNetwork`].
#[derive(Debug, Default)]
pub struct RoadNetworkBuilder {
    nodes: Vec<Point>,
    segments: Vec<Segment>,
}

impl RoadNetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an intersection at `p`, returning its id.
    pub fn add_node(&mut self, p: Point) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(p);
        id
    }

    /// Adds a directed segment from `u` to `v` with straight-line geometry.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    pub fn add_segment(&mut self, u: NodeId, v: NodeId, class: RoadClass) -> SegmentId {
        let geometry = vec![self.nodes[u.idx()], self.nodes[v.idx()]];
        self.add_segment_with_geometry(u, v, class, geometry)
    }

    /// Adds a directed segment with explicit polyline geometry.
    ///
    /// # Panics
    /// Panics if the geometry has fewer than two points, or `u`/`v` are out
    /// of range.
    pub fn add_segment_with_geometry(
        &mut self,
        u: NodeId,
        v: NodeId,
        class: RoadClass,
        geometry: Vec<Point>,
    ) -> SegmentId {
        assert!(geometry.len() >= 2, "segment geometry needs >= 2 points");
        assert!(u.idx() < self.nodes.len() && v.idx() < self.nodes.len());
        let id = SegmentId(self.segments.len() as u32);
        let length = geo::polyline_length(&geometry);
        self.segments.push(Segment {
            id,
            from: u,
            to: v,
            geometry,
            length,
            class,
            speed_limit: class.default_speed(),
        });
        id
    }

    /// Adds a two-way street: two directed segments `u->v` and `v->u`.
    pub fn add_two_way(
        &mut self,
        u: NodeId,
        v: NodeId,
        class: RoadClass,
    ) -> (SegmentId, SegmentId) {
        (self.add_segment(u, v, class), self.add_segment(v, u, class))
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Position of an already-added node.
    ///
    /// # Panics
    /// Panics if `n` has not been added to this builder.
    pub fn node_position(&self, n: NodeId) -> Point {
        self.nodes[n.idx()]
    }

    /// Finalises the network, computing adjacency.
    pub fn build(self) -> RoadNetwork {
        let mut out_adj = vec![Vec::new(); self.nodes.len()];
        let mut in_adj = vec![Vec::new(); self.nodes.len()];
        let mut segment_between = HashMap::with_capacity(self.segments.len());
        for seg in &self.segments {
            out_adj[seg.from.idx()].push(seg.id);
            in_adj[seg.to.idx()].push(seg.id);
            segment_between.insert((seg.from, seg.to), seg.id);
        }
        RoadNetwork {
            nodes: self.nodes,
            segments: self.segments,
            out_adj,
            in_adj,
            segment_between,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small diamond: 0 -> 1 -> 3 and 0 -> 2 -> 3.
    fn diamond() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(100.0, 100.0));
        let n2 = b.add_node(Point::new(100.0, -100.0));
        let n3 = b.add_node(Point::new(200.0, 0.0));
        b.add_segment(n0, n1, RoadClass::Arterial); // e0
        b.add_segment(n1, n3, RoadClass::Arterial); // e1
        b.add_segment(n0, n2, RoadClass::Local); // e2
        b.add_segment(n2, n3, RoadClass::Local); // e3
        b.build()
    }

    #[test]
    fn adjacency_and_degrees() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_segments(), 4);
        // node 0 has two outgoing segments
        assert_eq!(g.out_segments(NodeId(0)).len(), 2);
        // e0 = (0 -> 1): successors are segments leaving node 1 => [e1]
        assert_eq!(g.successors(SegmentId(0)), &[SegmentId(1)]);
        assert_eq!(g.out_degree(SegmentId(0)), 1);
        // e1 = (1 -> 3): in-degree of node 1 is 1 (only e0 enters)
        assert_eq!(g.in_degree(SegmentId(1)), 1);
        // e1 and e3 both enter node 3, so in-degree of any segment leaving
        // node 3 would be 2 (none here); instead check predecessors of e1:
        assert_eq!(g.predecessors(SegmentId(1)), &[SegmentId(0)]);
    }

    #[test]
    fn transitions_and_paths() {
        let g = diamond();
        assert!(g.is_transition(SegmentId(0), SegmentId(1)));
        assert!(!g.is_transition(SegmentId(0), SegmentId(3)));
        assert!(g.is_connected_path(&[SegmentId(0), SegmentId(1)]));
        assert!(!g.is_connected_path(&[SegmentId(0), SegmentId(3)]));
        assert!(g.is_connected_path(&[SegmentId(2)]));
        assert!(g.is_connected_path(&[]));
    }

    #[test]
    fn segment_between_lookup() {
        let g = diamond();
        assert_eq!(g.segment_between(NodeId(0), NodeId(1)), Some(SegmentId(0)));
        assert_eq!(g.segment_between(NodeId(1), NodeId(0)), None);
    }

    #[test]
    fn lengths_and_geometry() {
        let g = diamond();
        let e0 = g.segment(SegmentId(0));
        let expect = (100.0f64 * 100.0 + 100.0 * 100.0).sqrt();
        assert!((e0.length - expect).abs() < 1e-9);
        assert!((g.path_length(&[SegmentId(0), SegmentId(1)]) - 2.0 * expect).abs() < 1e-9);
        // midpoint of a straight segment is the centre
        let mid = e0.midpoint();
        assert!((mid.x - 50.0).abs() < 1e-9 && (mid.y - 50.0).abs() < 1e-9);
    }

    #[test]
    fn two_way_streets() {
        let mut b = RoadNetworkBuilder::new();
        let u = b.add_node(Point::new(0.0, 0.0));
        let v = b.add_node(Point::new(50.0, 0.0));
        let (fwd, back) = b.add_two_way(u, v, RoadClass::Collector);
        let g = b.build();
        assert_eq!(g.segment(fwd).from, u);
        assert_eq!(g.segment(back).from, v);
        // going fwd then back is a connected (if silly) path
        assert!(g.is_connected_path(&[fwd, back]));
    }

    #[test]
    fn bounds_cover_all_nodes() {
        let g = diamond();
        let (min, max) = g.bounds();
        assert_eq!((min.x, min.y), (0.0, -100.0));
        assert_eq!((max.x, max.y), (200.0, 100.0));
    }

    #[test]
    fn serde_roundtrip() {
        let g = diamond();
        let json = serde_json::to_string(&g).unwrap();
        let g2: RoadNetwork = serde_json::from_str(&json).unwrap();
        assert_eq!(g2.num_segments(), g.num_segments());
        assert_eq!(g2.segment(SegmentId(2)).from, g.segment(SegmentId(2)).from);
        assert_eq!(g2.segment_between(NodeId(0), NodeId(1)), Some(SegmentId(0)));
    }

    #[test]
    fn headings() {
        let g = diamond();
        let e0 = g.segment(SegmentId(0));
        // 0 -> 1 is north-east: 45 degrees
        assert!((e0.entry_heading() - std::f64::consts::FRAC_PI_4).abs() < 1e-9);
        assert!((e0.exit_heading() - std::f64::consts::FRAC_PI_4).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn geometry_must_have_two_points() {
        let mut b = RoadNetworkBuilder::new();
        let u = b.add_node(Point::new(0.0, 0.0));
        let v = b.add_node(Point::new(1.0, 0.0));
        b.add_segment_with_geometry(u, v, RoadClass::Local, vec![Point::new(0.0, 0.0)]);
    }
}
