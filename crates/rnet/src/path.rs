//! Shortest-path machinery over [`RoadNetwork`].
//!
//! Used by three consumers:
//! * the map matcher's transition probabilities (network distance between
//!   candidate segments, computed with a radius-bounded Dijkstra);
//! * the traffic simulator's route-family construction (weight-perturbed
//!   Dijkstra yields plausible alternative routes between an SD pair);
//! * the CTSS baseline's reference routes.

use crate::graph::{NodeId, RoadNetwork, SegmentId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A shortest path expressed as a segment sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct PathResult {
    /// Segments in travel order (empty iff source == target).
    pub segments: Vec<SegmentId>,
    /// Total cost (metres under the default weight).
    pub cost: f64,
}

#[derive(PartialEq)]
struct HeapEntry {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost; ties broken on node id for determinism.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Single-source Dijkstra with per-segment weights.
///
/// `weight(seg)` must be non-negative and finite; `f64::INFINITY` removes a
/// segment from consideration. Expansion stops once all nodes within
/// `max_cost` are settled. Returns `(dist, parent_segment)` arrays indexed by
/// node, with unreachable nodes at `f64::INFINITY` / `None`.
pub fn dijkstra<W>(
    net: &RoadNetwork,
    source: NodeId,
    max_cost: f64,
    mut weight: W,
) -> (Vec<f64>, Vec<Option<SegmentId>>)
where
    W: FnMut(SegmentId) -> f64,
{
    let n = net.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<SegmentId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[source.idx()] = 0.0;
    heap.push(HeapEntry {
        cost: 0.0,
        node: source,
    });
    while let Some(HeapEntry { cost, node }) = heap.pop() {
        if cost > dist[node.idx()] {
            continue; // stale entry
        }
        if cost > max_cost {
            break;
        }
        for &sid in net.out_segments(node) {
            let w = weight(sid);
            if !w.is_finite() {
                continue;
            }
            debug_assert!(w >= 0.0, "negative edge weight");
            let next = net.segment(sid).to;
            let nd = cost + w;
            if nd < dist[next.idx()] {
                dist[next.idx()] = nd;
                parent[next.idx()] = Some(sid);
                heap.push(HeapEntry {
                    cost: nd,
                    node: next,
                });
            }
        }
    }
    (dist, parent)
}

/// Reconstructs the segment path from `source` to `target` out of a Dijkstra
/// `parent` array. Returns `None` if `target` is unreachable.
pub fn reconstruct(
    net: &RoadNetwork,
    parent: &[Option<SegmentId>],
    source: NodeId,
    target: NodeId,
) -> Option<Vec<SegmentId>> {
    let mut path = Vec::new();
    let mut cur = target;
    while cur != source {
        let sid = parent[cur.idx()]?;
        path.push(sid);
        cur = net.segment(sid).from;
    }
    path.reverse();
    Some(path)
}

/// Shortest path by length from `source` to `target`.
///
/// Returns `None` if unreachable. `source == target` yields an empty path of
/// zero cost.
pub fn shortest_path(net: &RoadNetwork, source: NodeId, target: NodeId) -> Option<PathResult> {
    shortest_path_weighted(net, source, target, |s| net.segment(s).length)
}

/// Shortest path under a custom non-negative weight function.
pub fn shortest_path_weighted<W>(
    net: &RoadNetwork,
    source: NodeId,
    target: NodeId,
    weight: W,
) -> Option<PathResult>
where
    W: FnMut(SegmentId) -> f64,
{
    let (dist, parent) = dijkstra(net, source, f64::INFINITY, weight);
    if !dist[target.idx()].is_finite() {
        return None;
    }
    let segments = reconstruct(net, &parent, source, target)?;
    Some(PathResult {
        segments,
        cost: dist[target.idx()],
    })
}

/// Network distance (metres) from the head of every node to `target`,
/// bounded by `max_cost`. This is Dijkstra on the reversed graph, used by
/// the map matcher to compute many-to-one distances cheaply.
pub fn reverse_dijkstra(net: &RoadNetwork, target: NodeId, max_cost: f64) -> Vec<f64> {
    let n = net.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut heap = BinaryHeap::new();
    dist[target.idx()] = 0.0;
    heap.push(HeapEntry {
        cost: 0.0,
        node: target,
    });
    while let Some(HeapEntry { cost, node }) = heap.pop() {
        if cost > dist[node.idx()] {
            continue;
        }
        if cost > max_cost {
            break;
        }
        for &sid in net.in_segments(node) {
            let seg = net.segment(sid);
            let nd = cost + seg.length;
            if nd < dist[seg.from.idx()] {
                dist[seg.from.idx()] = nd;
                heap.push(HeapEntry {
                    cost: nd,
                    node: seg.from,
                });
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::Point;
    use crate::graph::{RoadClass, RoadNetworkBuilder};

    /// Diamond with a short top path (e0+e1 = 200) and long bottom (e2+e3 = 400).
    fn diamond() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(100.0, 0.0));
        let n2 = b.add_node(Point::new(100.0, -200.0));
        let n3 = b.add_node(Point::new(200.0, 0.0));
        b.add_segment(n0, n1, RoadClass::Arterial); // e0 len 100
        b.add_segment(n1, n3, RoadClass::Arterial); // e1 len 100
        b.add_segment(n0, n2, RoadClass::Local); // e2 len ~223.6
        b.add_segment(n2, n3, RoadClass::Local); // e3 len ~223.6
        b.build()
    }

    #[test]
    fn shortest_path_prefers_short_route() {
        let g = diamond();
        let p = shortest_path(&g, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p.segments, vec![SegmentId(0), SegmentId(1)]);
        assert!((p.cost - 200.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_path_can_flip_preference() {
        let g = diamond();
        // Penalise the top path heavily.
        let p = shortest_path_weighted(&g, NodeId(0), NodeId(3), |s| {
            if s == SegmentId(0) || s == SegmentId(1) {
                10_000.0
            } else {
                g.segment(s).length
            }
        })
        .unwrap();
        assert_eq!(p.segments, vec![SegmentId(2), SegmentId(3)]);
    }

    #[test]
    fn infinite_weight_removes_edge() {
        let g = diamond();
        let p = shortest_path_weighted(&g, NodeId(0), NodeId(3), |s| {
            if s == SegmentId(0) {
                f64::INFINITY
            } else {
                g.segment(s).length
            }
        })
        .unwrap();
        assert_eq!(p.segments, vec![SegmentId(2), SegmentId(3)]);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(100.0, 0.0));
        b.add_segment(n1, n0, RoadClass::Local); // only 1 -> 0
        let g = b.build();
        assert!(shortest_path(&g, NodeId(0), NodeId(1)).is_none());
        assert!(shortest_path(&g, NodeId(1), NodeId(0)).is_some());
    }

    #[test]
    fn source_equals_target() {
        let g = diamond();
        let p = shortest_path(&g, NodeId(2), NodeId(2)).unwrap();
        assert!(p.segments.is_empty());
        assert_eq!(p.cost, 0.0);
    }

    #[test]
    fn bounded_dijkstra_stops_early() {
        let g = diamond();
        let (dist, _) = dijkstra(&g, NodeId(0), 150.0, |s| g.segment(s).length);
        assert!((dist[1] - 100.0).abs() < 1e-9);
        // node 3 is at cost 200 > bound: may or may not have a tentative
        // value, but node 2 (223.6) must not be *settled* below its true
        // cost; tentative values are still correct upper bounds.
        assert!(dist[3] >= 200.0 - 1e-9 || dist[3].is_infinite());
    }

    #[test]
    fn reverse_dijkstra_matches_forward() {
        let g = diamond();
        let back = reverse_dijkstra(&g, NodeId(3), f64::INFINITY);
        for n in 0..g.num_nodes() as u32 {
            let fwd = shortest_path(&g, NodeId(n), NodeId(3)).map(|p| p.cost);
            match fwd {
                Some(c) => assert!((back[n as usize] - c).abs() < 1e-9),
                None => assert!(back[n as usize].is_infinite()),
            }
        }
    }

    #[test]
    fn reconstructed_paths_are_connected() {
        let g = diamond();
        let (dist, parent) = dijkstra(&g, NodeId(0), f64::INFINITY, |s| g.segment(s).length);
        for n in g.node_ids() {
            if dist[n.idx()].is_finite() {
                let p = reconstruct(&g, &parent, NodeId(0), n).unwrap();
                assert!(g.is_connected_path(&p));
                if let Some(first) = p.first() {
                    assert_eq!(g.segment(*first).from, NodeId(0));
                }
                if let Some(last) = p.last() {
                    assert_eq!(g.segment(*last).to, n);
                }
            }
        }
    }
}
