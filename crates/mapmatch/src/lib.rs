//! HMM map matching (the paper's preprocessing step \[34\]).
//!
//! Raw GPS trajectories are noisy point sequences; every algorithm in the
//! paper operates on *map-matched* trajectories (road-segment sequences).
//! This crate implements the standard hidden-Markov-model formulation made
//! fast by FMM \[34\]:
//!
//! * **candidates**: for each GPS point, the road segments within an error
//!   radius (via [`rnet::SegmentIndex`]);
//! * **emission**: Gaussian in the point-to-segment distance;
//! * **transition**: exponential in the disagreement between the network
//!   ("driving") distance between consecutive candidates and the
//!   great-circle distance between the points — the driving distance uses a
//!   radius-bounded Dijkstra per candidate, the precomputation-friendly
//!   structure FMM exploits;
//! * **decoding**: Viterbi over the candidate lattice, then path stitching
//!   with shortest paths between consecutive matched segments.

#![deny(missing_docs)]
#![warn(clippy::all)]

use rnet::index::Candidate;
use rnet::path::{dijkstra, reconstruct};
use rnet::{RoadNetwork, SegmentId, SegmentIndex};
use traj::{MappedTrajectory, RawTrajectory};

/// Map-matching configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchConfig {
    /// Candidate search radius around each GPS point, metres.
    pub candidate_radius: f64,
    /// GPS error standard deviation, metres (emission model).
    pub gps_sigma: f64,
    /// Keep at most this many candidates per point.
    pub max_candidates: usize,
    /// Transition scale `beta`, metres (Newson–Krumm style exponential).
    pub beta: f64,
    /// Bound on the per-hop network-distance search, metres.
    pub max_hop_distance: f64,
    /// Weight of the heading-agreement emission term. Disambiguates the two
    /// directions of a two-way street (whose geometries coincide).
    pub heading_weight: f64,
    /// Minimum GPS displacement (metres) for a usable heading estimate.
    pub min_heading_displacement: f64,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            candidate_radius: 60.0,
            gps_sigma: 10.0,
            max_candidates: 8,
            beta: 30.0,
            max_hop_distance: 800.0,
            heading_weight: 3.0,
            min_heading_displacement: 5.0,
        }
    }
}

/// A map matcher bound to a road network.
pub struct MapMatcher<'a> {
    net: &'a RoadNetwork,
    index: SegmentIndex,
    config: MatchConfig,
}

impl<'a> MapMatcher<'a> {
    /// Builds a matcher (constructs the spatial index once).
    pub fn new(net: &'a RoadNetwork, config: MatchConfig) -> Self {
        let index = SegmentIndex::build(net, 100.0);
        MapMatcher { net, index, config }
    }

    /// The effective configuration.
    pub fn config(&self) -> &MatchConfig {
        &self.config
    }

    /// Matches a raw trajectory onto the network.
    ///
    /// Points with no candidate within the radius are skipped. Returns
    /// `None` when fewer than two points could be matched or the lattice
    /// has no feasible path.
    pub fn match_trajectory(&self, raw: &RawTrajectory) -> Option<MappedTrajectory> {
        // 1. Candidate lattice.
        let mut lattice: Vec<(usize, Vec<Candidate>)> = Vec::with_capacity(raw.len());
        for (i, p) in raw.points.iter().enumerate() {
            let mut cands = self
                .index
                .candidates(self.net, &p.pos, self.config.candidate_radius);
            cands.truncate(self.config.max_candidates);
            if !cands.is_empty() {
                lattice.push((i, cands));
            }
        }
        if lattice.len() < 2 {
            return None;
        }

        // 2. Viterbi.
        let sigma2 = 2.0 * self.config.gps_sigma * self.config.gps_sigma;
        // Per-point travel heading from the surrounding GPS displacement
        // (unreliable when nearly stationary → None).
        let gps_heading = |pi: usize| -> Option<f64> {
            let next = raw.points.get(pi + 1).map(|p| p.pos);
            let prev = if pi > 0 {
                Some(raw.points[pi - 1].pos)
            } else {
                None
            };
            let (a, b) = match (prev, next) {
                (_, Some(n))
                    if raw.points[pi].pos.dist(&n) >= self.config.min_heading_displacement =>
                {
                    (raw.points[pi].pos, n)
                }
                (Some(p), _)
                    if p.dist(&raw.points[pi].pos) >= self.config.min_heading_displacement =>
                {
                    (p, raw.points[pi].pos)
                }
                _ => return None,
            };
            Some(rnet::geo::heading(&a, &b))
        };
        let emission = |pi: usize, c: &Candidate| -> f64 {
            let mut e = -(c.distance * c.distance) / sigma2;
            if let Some(hg) = gps_heading(pi) {
                let geom = &self.net.segment(c.segment).geometry;
                if let Some(hs) = rnet::geo::heading_at_offset(geom, c.offset) {
                    // (cos Δ − 1) ∈ [−2, 0]: free when aligned, −2w opposed.
                    e += self.config.heading_weight * ((hg - hs).cos() - 1.0);
                }
            }
            e
        };

        let mut score: Vec<f64> = lattice[0]
            .1
            .iter()
            .map(|c| emission(lattice[0].0, c))
            .collect();
        // back[t][j] = index of best predecessor candidate at t-1
        let mut back: Vec<Vec<usize>> = Vec::with_capacity(lattice.len());
        back.push(vec![0; lattice[0].1.len()]);

        for t in 1..lattice.len() {
            let (pi_prev, prev_cands) = &lattice[t - 1];
            let (pi_cur, cur_cands) = &lattice[t];
            let gc = raw.points[*pi_prev].pos.dist(&raw.points[*pi_cur].pos);

            // Bounded Dijkstra from each previous candidate's head node.
            let hop_costs: Vec<Vec<f64>> = prev_cands
                .iter()
                .map(|a| {
                    let seg_a = self.net.segment(a.segment);
                    let rem_a = (seg_a.length - a.offset).max(0.0);
                    let (dist, _) =
                        dijkstra(self.net, seg_a.to, self.config.max_hop_distance, |s| {
                            self.net.segment(s).length
                        });
                    cur_cands
                        .iter()
                        .map(|b| {
                            if a.segment == b.segment {
                                let fwd = b.offset - a.offset;
                                if fwd >= -1.0 {
                                    fwd.max(0.0)
                                } else {
                                    // slight backtracking on the same
                                    // segment: tolerated with a penalty
                                    fwd.abs() * 2.0
                                }
                            } else {
                                let seg_b = self.net.segment(b.segment);
                                let via = dist[seg_b.from.idx()];
                                if via.is_finite() {
                                    rem_a + via + b.offset
                                } else {
                                    f64::INFINITY
                                }
                            }
                        })
                        .collect()
                })
                .collect();

            let mut new_score = vec![f64::NEG_INFINITY; cur_cands.len()];
            let mut new_back = vec![0usize; cur_cands.len()];
            for (j, b) in cur_cands.iter().enumerate() {
                let em = emission(*pi_cur, b);
                for (i, _a) in prev_cands.iter().enumerate() {
                    let hop = hop_costs[i][j];
                    if !hop.is_finite() {
                        continue;
                    }
                    let trans = -(hop - gc).abs() / self.config.beta;
                    let s = score[i] + trans + em;
                    if s > new_score[j] {
                        new_score[j] = s;
                        new_back[j] = i;
                    }
                }
            }
            if new_score.iter().all(|s| s.is_infinite()) {
                return None; // broken lattice
            }
            score = new_score;
            back.push(new_back);
        }

        // 3. Backtrack the best candidate chain.
        let mut j = score
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(j, _)| j)?;
        let mut chain = vec![j; lattice.len()];
        for t in (1..lattice.len()).rev() {
            j = back[t][j];
            chain[t - 1] = j;
        }

        // 4. Stitch segments with shortest paths between matched segments.
        let mut segments: Vec<SegmentId> = Vec::new();
        let first = &lattice[0].1[chain[0]];
        segments.push(first.segment);
        for t in 1..lattice.len() {
            let a = &lattice[t - 1].1[chain[t - 1]];
            let b = &lattice[t].1[chain[t]];
            if a.segment == b.segment {
                continue;
            }
            let seg_a = self.net.segment(a.segment);
            let seg_b = self.net.segment(b.segment);
            if seg_a.to == seg_b.from {
                push_dedup(&mut segments, b.segment);
                continue;
            }
            let (dist, parent) = dijkstra(self.net, seg_a.to, self.config.max_hop_distance, |s| {
                self.net.segment(s).length
            });
            if dist[seg_b.from.idx()].is_finite() {
                if let Some(path) = reconstruct(self.net, &parent, seg_a.to, seg_b.from) {
                    for s in path {
                        push_dedup(&mut segments, s);
                    }
                }
            }
            push_dedup(&mut segments, b.segment);
        }

        // 5. Trim boundary artifacts: when the first GPS point sits at the
        //    very end of its matched segment (i.e. the vehicle covered only
        //    the last few metres of it), that segment is an artefact of
        //    noise at the start intersection — symmetric for the last point.
        let trim = 2.0 * self.config.gps_sigma;
        let first_c = &lattice[0].1[chain[0]];
        if segments.len() >= 2 && segments[0] == first_c.segment {
            let seg = self.net.segment(first_c.segment);
            if seg.length - first_c.offset < trim {
                segments.remove(0);
            }
        }
        let (last_t, last_cands) = lattice.last().expect("nonempty lattice");
        let _ = last_t;
        let last_c = &last_cands[*chain.last().expect("nonempty chain")];
        if segments.len() >= 2
            && *segments.last().unwrap() == last_c.segment
            && last_c.offset < trim
        {
            segments.pop();
        }

        debug_assert!(
            self.net.is_connected_path(&segments),
            "stitched path must be connected"
        );
        Some(MappedTrajectory {
            id: raw.id,
            segments,
            start_time: raw.points.first().map(|p| p.t).unwrap_or(0.0),
        })
    }
}

fn push_dedup(segments: &mut Vec<SegmentId>, s: SegmentId) {
    if segments.last() != Some(&s) {
        segments.push(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnet::{CityBuilder, CityConfig};
    use traj::{TrafficConfig, TrafficSimulator};

    fn setup(seed: u64, noise: f64) -> (rnet::RoadNetwork, traj::generator::GeneratedTraffic) {
        let net = CityBuilder::new(CityConfig::tiny(seed)).build();
        let cfg = TrafficConfig {
            num_sd_pairs: 3,
            trajs_per_pair: (4, 6),
            generate_raw: true,
            gps_noise_std: noise,
            ..TrafficConfig::tiny(seed)
        };
        let data = TrafficSimulator::new(&net, cfg).generate();
        (net, data)
    }

    /// Fraction of positions where two segment sequences agree, after
    /// aligning by longest-common-subsequence length.
    fn lcs_ratio(a: &[SegmentId], b: &[SegmentId]) -> f64 {
        let (n, m) = (a.len(), b.len());
        let mut dp = vec![vec![0usize; m + 1]; n + 1];
        for i in 1..=n {
            for j in 1..=m {
                dp[i][j] = if a[i - 1] == b[j - 1] {
                    dp[i - 1][j - 1] + 1
                } else {
                    dp[i - 1][j].max(dp[i][j - 1])
                };
            }
        }
        dp[n][m] as f64 / n.max(m) as f64
    }

    #[test]
    fn low_noise_recovers_routes() {
        let (net, data) = setup(3, 3.0);
        let matcher = MapMatcher::new(&net, MatchConfig::default());
        let mut total = 0.0;
        let mut count = 0;
        for (raw, mapped) in data.raw.iter().zip(&data.trajectories) {
            let got = matcher.match_trajectory(raw).expect("match must succeed");
            assert!(net.is_connected_path(&got.segments));
            total += lcs_ratio(&got.segments, &mapped.segments);
            count += 1;
        }
        let mean = total / count as f64;
        assert!(mean > 0.9, "mean LCS ratio {mean} too low");
    }

    #[test]
    fn moderate_noise_still_close() {
        let (net, data) = setup(5, 12.0);
        let matcher = MapMatcher::new(&net, MatchConfig::default());
        let mut total = 0.0;
        let mut count = 0;
        for (raw, mapped) in data.raw.iter().zip(&data.trajectories) {
            if let Some(got) = matcher.match_trajectory(raw) {
                total += lcs_ratio(&got.segments, &mapped.segments);
                count += 1;
            }
        }
        assert!(count > 0);
        let mean = total / count as f64;
        assert!(mean > 0.75, "mean LCS ratio {mean} too low");
    }

    #[test]
    fn preserves_id_and_start_time() {
        let (net, data) = setup(7, 3.0);
        let matcher = MapMatcher::new(&net, MatchConfig::default());
        let raw = &data.raw[0];
        let got = matcher.match_trajectory(raw).unwrap();
        assert_eq!(got.id, raw.id);
        assert!((got.start_time - raw.points[0].t).abs() < 1e-9);
    }

    #[test]
    fn too_few_points_returns_none() {
        let (net, data) = setup(9, 3.0);
        let matcher = MapMatcher::new(&net, MatchConfig::default());
        let mut raw = data.raw[0].clone();
        raw.points.truncate(1);
        assert!(matcher.match_trajectory(&raw).is_none());
        raw.points.clear();
        assert!(matcher.match_trajectory(&raw).is_none());
    }

    #[test]
    fn far_off_network_points_are_skipped() {
        let (net, data) = setup(11, 3.0);
        let matcher = MapMatcher::new(&net, MatchConfig::default());
        let mut raw = data.raw[0].clone();
        // Teleport one mid point far away; matching must still succeed.
        let mid = raw.points.len() / 2;
        raw.points[mid].pos = rnet::Point::new(1e7, 1e7);
        let got = matcher.match_trajectory(&raw);
        assert!(got.is_some());
        assert!(net.is_connected_path(&got.unwrap().segments));
    }

    #[test]
    fn output_has_no_consecutive_duplicates() {
        let (net, data) = setup(13, 8.0);
        let matcher = MapMatcher::new(&net, MatchConfig::default());
        for raw in &data.raw {
            if let Some(got) = matcher.match_trajectory(raw) {
                for w in got.segments.windows(2) {
                    assert_ne!(w[0], w[1]);
                }
                assert!(net.is_connected_path(&got.segments));
            }
        }
    }
}
