//! Data preprocessing (paper §IV-B): SD-pair/time-slot grouping, transition
//! fractions, noisy labels (threshold α) and normal-route features
//! (threshold δ).
//!
//! The preprocessor is *fit* on historical (training) trajectories and then
//! *queried* for any trajectory — including unseen test trajectories of the
//! same SD pairs, which is how the online detector computes normal-route
//! features incrementally.

use crate::config::Rl4oasdConfig;
use rnet::SegmentId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use traj::{Dataset, MappedTrajectory, SdPair, TrajectoryId, HOURS_PER_DAY};

/// A transition key: `(previous segment or None for <*, e1>, segment)`.
pub type TransKey = (Option<SegmentId>, SegmentId);

/// Serde helper: (de)serialises maps with non-string keys as entry lists,
/// keeping the model JSON-serialisable.
mod map_as_vec {
    use serde::{Deserialize, Error, Serialize, Value};
    use std::collections::HashMap;
    use std::hash::Hash;

    pub fn serialize<K, V>(map: &HashMap<K, V>) -> Value
    where
        K: Serialize,
        V: Serialize,
    {
        let entries: Vec<(&K, &V)> = map.iter().collect();
        entries.serialize()
    }

    pub fn deserialize<K, V>(v: &Value) -> Result<HashMap<K, V>, Error>
    where
        K: Deserialize + Eq + Hash,
        V: Deserialize,
    {
        let entries: Vec<(K, V)> = Vec::deserialize(v)?;
        Ok(entries.into_iter().collect())
    }
}

/// Fraction statistics of one (SD pair, time slot) group.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroupStats {
    /// Number of trajectories in the group.
    pub size: usize,
    /// Count of trajectories containing each transition.
    #[serde(with = "map_as_vec")]
    pub transition_count: HashMap<TransKey, usize>,
    /// Transitions belonging to the inferred *normal routes* (route-level
    /// fraction > δ; falls back to the most frequent route if none passes).
    pub normal_transitions: HashSet<TransKey>,
}

impl GroupStats {
    /// Fraction of the group's trajectories containing `key`. Source and
    /// destination transitions are pinned to 1.0 by the caller.
    pub fn fraction(&self, key: &TransKey) -> f64 {
        if self.size == 0 {
            return 0.0;
        }
        *self.transition_count.get(key).unwrap_or(&0) as f64 / self.size as f64
    }
}

/// Per-trajectory preprocessing output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryFeatures {
    /// Noisy labels (0 normal / 1 anomalous) from transition fractions vs α.
    pub noisy_labels: Vec<u8>,
    /// Normal-route features (0 = transition occurs in a normal route).
    pub nrf: Vec<u8>,
    /// Raw transition fractions (diagnostics and the frequency-only
    /// baseline of the ablation study).
    pub fractions: Vec<f64>,
}

/// Fitted preprocessing statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Preprocessor {
    alpha: f64,
    delta: f64,
    min_group_size: usize,
    /// Per-(pair, slot) statistics.
    #[serde(with = "map_as_vec")]
    slot_stats: HashMap<(SdPair, usize), GroupStats>,
    /// Whole-pair fallback statistics (all slots merged).
    #[serde(with = "map_as_vec")]
    pair_stats: HashMap<SdPair, GroupStats>,
}

impl Preprocessor {
    /// Fits group statistics on the training corpus.
    pub fn fit(config: &Rl4oasdConfig, data: &Dataset) -> Self {
        Self::fit_with_drop(config, data, 0.0, config.seed)
    }

    /// Fits while randomly dropping a fraction of each pair's historical
    /// trajectories first (the paper's cold-start experiment, Table VI).
    pub fn fit_with_drop(
        config: &Rl4oasdConfig,
        data: &Dataset,
        drop_rate: f64,
        seed: u64,
    ) -> Self {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        assert!((0.0..1.0).contains(&drop_rate) || drop_rate == 0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xD20F);
        let mut pre = Preprocessor {
            alpha: config.alpha,
            delta: config.delta,
            min_group_size: config.min_group_size,
            slot_stats: HashMap::new(),
            pair_stats: HashMap::new(),
        };
        for (&pair, ids) in &data.by_pair {
            let kept: Vec<TrajectoryId> = if drop_rate > 0.0 {
                let mut ids = ids.clone();
                ids.shuffle(&mut rng);
                let keep = ((ids.len() as f64) * (1.0 - drop_rate)).ceil() as usize;
                ids.truncate(keep.max(1));
                ids
            } else {
                ids.clone()
            };
            // Whole-pair group.
            let trajs: Vec<&MappedTrajectory> = kept.iter().map(|&id| data.get(id)).collect();
            pre.pair_stats
                .insert(pair, build_group(&trajs, config.delta));
            // Per-slot groups.
            let mut by_slot: Vec<Vec<&MappedTrajectory>> = vec![Vec::new(); HOURS_PER_DAY];
            for t in &trajs {
                by_slot[t.time_slot()].push(t);
            }
            for (slot, group) in by_slot.iter().enumerate() {
                if !group.is_empty() {
                    pre.slot_stats
                        .insert((pair, slot), build_group(group, config.delta));
                }
            }
        }
        pre
    }

    /// The group statistics used for a trajectory of `pair` in `slot`:
    /// the slot group if it is large enough, otherwise the whole-pair group.
    pub fn stats_for(&self, pair: SdPair, slot: usize) -> Option<&GroupStats> {
        if let Some(s) = self.slot_stats.get(&(pair, slot)) {
            if s.size >= self.min_group_size {
                return Some(s);
            }
        }
        self.pair_stats.get(&pair)
    }

    /// Whether the preprocessor has statistics for `pair`.
    pub fn knows_pair(&self, pair: SdPair) -> bool {
        self.pair_stats.contains_key(&pair)
    }

    /// Number of fitted SD pairs.
    pub fn num_pairs(&self) -> usize {
        self.pair_stats.len()
    }

    /// Computes noisy labels, NRF and fractions for a trajectory
    /// (§IV-B Step 3–4 and §IV-C NRF). Unknown pairs fall back to
    /// all-anomalous noisy labels and all-1 NRF except the endpoints —
    /// "never seen this route" is the strongest deviation signal available.
    pub fn features(&self, traj: &MappedTrajectory) -> TrajectoryFeatures {
        let n = traj.len();
        let mut noisy = vec![1u8; n];
        let mut nrf = vec![1u8; n];
        let mut fractions = vec![0.0f64; n];
        if n == 0 {
            return TrajectoryFeatures {
                noisy_labels: noisy,
                nrf,
                fractions,
            };
        }
        let pair = traj.sd_pair().expect("non-empty trajectory");
        let stats = self.stats_for(pair, traj.time_slot());
        for i in 0..n {
            let endpoint = i == 0 || i == n - 1;
            let key = key_of(traj, i);
            let (frac, is_normal_route) = match stats {
                Some(s) => (
                    if endpoint { 1.0 } else { s.fraction(&key) },
                    s.normal_transitions.contains(&key),
                ),
                None => (0.0, false),
            };
            fractions[i] = frac;
            noisy[i] = u8::from(!(endpoint || frac > self.alpha));
            nrf[i] = u8::from(!(endpoint || is_normal_route));
        }
        TrajectoryFeatures {
            noisy_labels: noisy,
            nrf,
            fractions,
        }
    }

    /// Incremental NRF for the online detector: the feature of position `i`
    /// given the previous segment (`None` at the source).
    pub fn nrf_at(
        &self,
        pair: SdPair,
        slot: usize,
        prev: Option<SegmentId>,
        seg: SegmentId,
        is_endpoint: bool,
    ) -> u8 {
        if is_endpoint {
            return 0;
        }
        match self.stats_for(pair, slot) {
            Some(s) => u8::from(!s.normal_transitions.contains(&(prev, seg))),
            None => 1,
        }
    }

    /// Incremental transition fraction (used by the frequency-only ablation
    /// detector).
    pub fn fraction_at(
        &self,
        pair: SdPair,
        slot: usize,
        prev: Option<SegmentId>,
        seg: SegmentId,
        is_endpoint: bool,
    ) -> f64 {
        if is_endpoint {
            return 1.0;
        }
        self.stats_for(pair, slot)
            .map(|s| s.fraction(&(prev, seg)))
            .unwrap_or(0.0)
    }

    /// The α threshold this preprocessor was fitted with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Merges statistics from newly recorded trajectories (online learning:
    /// the concept-drift experiments refresh fractions with recent data).
    /// New data *replaces* the statistics of the pairs it covers.
    pub fn refresh(&mut self, config: &Rl4oasdConfig, data: &Dataset) {
        let newer = Preprocessor::fit(config, data);
        for (k, v) in newer.slot_stats {
            self.slot_stats.insert(k, v);
        }
        for (k, v) in newer.pair_stats {
            self.pair_stats.insert(k, v);
        }
    }
}

fn key_of(traj: &MappedTrajectory, i: usize) -> TransKey {
    let t = traj.transition_at(i);
    (t.from, t.to)
}

/// Builds group statistics: transition counts plus normal-route inference
/// (§IV-C): a route (unique segment sequence) is normal if the fraction of
/// the group's trajectories travelling it exceeds δ. If no route passes,
/// the most frequent route is taken as normal (a group always has at least
/// one representative route).
fn build_group(trajs: &[&MappedTrajectory], delta: f64) -> GroupStats {
    let size = trajs.len();
    let mut transition_count: HashMap<TransKey, usize> = HashMap::new();
    let mut route_count: HashMap<&[SegmentId], usize> = HashMap::new();
    for t in trajs {
        // Count each transition once per trajectory (fraction semantics:
        // "the fraction of transitions with respect to all trajectories").
        let mut seen = HashSet::new();
        for i in 0..t.len() {
            let key = key_of(t, i);
            if seen.insert(key) {
                *transition_count.entry(key).or_insert(0) += 1;
            }
        }
        *route_count.entry(t.segments.as_slice()).or_insert(0) += 1;
    }
    let mut normal_transitions = HashSet::new();
    let mut best: Option<(&[SegmentId], usize)> = None;
    for (route, count) in &route_count {
        if best.map(|(_, c)| *count > c).unwrap_or(true) {
            best = Some((route, *count));
        }
        if size > 0 && *count as f64 / size as f64 > delta {
            insert_route_transitions(&mut normal_transitions, route);
        }
    }
    if normal_transitions.is_empty() {
        if let Some((route, _)) = best {
            insert_route_transitions(&mut normal_transitions, route);
        }
    }
    GroupStats {
        size,
        transition_count,
        normal_transitions,
    }
}

fn insert_route_transitions(set: &mut HashSet<TransKey>, route: &[SegmentId]) {
    for (i, &seg) in route.iter().enumerate() {
        let prev = if i == 0 { None } else { Some(route[i - 1]) };
        set.insert((prev, seg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnet::{CityBuilder, CityConfig};
    use traj::{RouteKind, TrafficConfig, TrafficSimulator};

    fn setup(seed: u64) -> (traj::generator::GeneratedTraffic, Dataset, Preprocessor) {
        let net = CityBuilder::new(CityConfig::tiny(seed)).build();
        let cfg = TrafficConfig {
            num_sd_pairs: 3,
            trajs_per_pair: (60, 80),
            anomaly_ratio: 0.1,
            ..TrafficConfig::tiny(seed)
        };
        let data = TrafficSimulator::new(&net, cfg).generate();
        let ds = Dataset::from_generated(&data);
        let pre = Preprocessor::fit(&Rl4oasdConfig::tiny(seed), &ds);
        (data, ds, pre)
    }

    #[test]
    fn fits_all_pairs() {
        let (data, _, pre) = setup(1);
        assert_eq!(pre.num_pairs(), data.pairs.len());
        for p in &data.pairs {
            assert!(pre.knows_pair(p.pair));
        }
    }

    #[test]
    fn endpoints_always_normal() {
        let (_, ds, pre) = setup(2);
        for t in &ds.trajectories {
            let f = pre.features(t);
            assert_eq!(f.noisy_labels[0], 0);
            assert_eq!(*f.noisy_labels.last().unwrap(), 0);
            assert_eq!(f.nrf[0], 0);
            assert_eq!(*f.nrf.last().unwrap(), 0);
            assert_eq!(f.fractions[0], 1.0);
            assert_eq!(*f.fractions.last().unwrap(), 1.0);
        }
    }

    #[test]
    fn popular_route_segments_look_normal() {
        let (data, ds, pre) = setup(3);
        // Trajectories on the most popular route should be mostly 0 in both
        // noisy labels and NRF.
        for (k, t) in ds.trajectories.iter().enumerate() {
            let pair = &data.pairs[data.pair_of[k]];
            let route = &pair.routes[data.route_of[k]];
            let f = pre.features(t);
            if data.route_of[k] == 0 && route.kind == RouteKind::Normal {
                let frac_anom =
                    f.nrf.iter().filter(|&&l| l == 1).count() as f64 / f.nrf.len() as f64;
                assert!(
                    frac_anom < 0.2,
                    "dominant normal route flagged {frac_anom} anomalous (nrf)"
                );
            }
        }
    }

    #[test]
    fn detour_segments_look_anomalous() {
        let (data, ds, pre) = setup(4);
        let mut checked = false;
        for (k, t) in ds.trajectories.iter().enumerate() {
            let pair = &data.pairs[data.pair_of[k]];
            let route = &pair.routes[data.route_of[k]];
            if let Some((a, b)) = route.detour_span {
                let f = pre.features(t);
                // the detour interior must be flagged by NRF
                let flagged = (a..=b).filter(|&i| f.nrf[i] == 1).count();
                assert!(
                    flagged as f64 / (b - a + 1) as f64 > 0.8,
                    "detour span under-flagged"
                );
                checked = true;
            }
        }
        assert!(checked);
    }

    #[test]
    fn noisy_labels_approximate_ground_truth() {
        let (_, ds, pre) = setup(5);
        // Aggregate agreement between noisy labels and ground truth should
        // be high (the labels are "noisy", not random).
        let mut agree = 0usize;
        let mut total = 0usize;
        for t in &ds.trajectories {
            let f = pre.features(t);
            let gt = ds.truth(t.id).unwrap();
            for (a, b) in f.noisy_labels.iter().zip(gt) {
                agree += usize::from(a == b);
                total += 1;
            }
        }
        let acc = agree as f64 / total as f64;
        // Noisy labels are genuinely noisy: with two normal routes at
        // fractions ~0.55/0.4 and alpha = 0.5, the less popular normal
        // route's own transitions fall below alpha and get mislabelled —
        // exactly the cold-start noise the RL refinement exists to fix.
        assert!(acc > 0.7, "noisy-label accuracy {acc} too low");
    }

    #[test]
    fn unknown_pair_falls_back_to_anomalous() {
        let (_, _, pre) = setup(6);
        let t = MappedTrajectory {
            id: TrajectoryId(999),
            segments: vec![SegmentId(9991), SegmentId(9992), SegmentId(9993)],
            start_time: 0.0,
        };
        // not fitted; features must not panic
        let f = pre.features(&t);
        assert_eq!(f.noisy_labels, vec![0, 1, 0]); // endpoints pinned normal
        assert_eq!(f.nrf, vec![0, 1, 0]);
    }

    #[test]
    fn drop_rate_shrinks_groups() {
        let net = CityBuilder::new(CityConfig::tiny(7)).build();
        let cfg = TrafficConfig {
            num_sd_pairs: 2,
            trajs_per_pair: (50, 50),
            ..TrafficConfig::tiny(7)
        };
        let data = TrafficSimulator::new(&net, cfg).generate();
        let ds = Dataset::from_generated(&data);
        let full = Preprocessor::fit(&Rl4oasdConfig::tiny(7), &ds);
        let dropped = Preprocessor::fit_with_drop(&Rl4oasdConfig::tiny(7), &ds, 0.8, 7);
        for p in &data.pairs {
            let f = full.pair_stats.get(&p.pair).unwrap();
            let d = dropped.pair_stats.get(&p.pair).unwrap();
            assert_eq!(f.size, 50);
            assert_eq!(d.size, 10);
            // normal routes can still be inferred from the survivors
            assert!(!d.normal_transitions.is_empty());
        }
    }

    #[test]
    fn incremental_matches_batch() {
        let (_, ds, pre) = setup(8);
        for t in ds.trajectories.iter().take(20) {
            let f = pre.features(t);
            let pair = t.sd_pair().unwrap();
            let slot = t.time_slot();
            for i in 0..t.len() {
                let prev = if i == 0 {
                    None
                } else {
                    Some(t.segments[i - 1])
                };
                let endpoint = i == 0 || i == t.len() - 1;
                assert_eq!(
                    pre.nrf_at(pair, slot, prev, t.segments[i], endpoint),
                    f.nrf[i]
                );
                assert!(
                    (pre.fraction_at(pair, slot, prev, t.segments[i], endpoint) - f.fractions[i])
                        .abs()
                        < 1e-12
                );
            }
        }
    }

    #[test]
    fn refresh_replaces_pair_stats() {
        let (_, ds, mut pre) = setup(9);
        let cfg = Rl4oasdConfig::tiny(9);
        // Refit on a truncated dataset: sizes must change after refresh.
        let mut small = ds.clone();
        small.trajectories.truncate(ds.len() / 2);
        small.ground_truth.truncate(ds.len() / 2);
        small.rebuild_index();
        let before: usize = pre.pair_stats.values().map(|s| s.size).sum();
        pre.refresh(&cfg, &small);
        let after: usize = pre.pair_stats.values().map(|s| s.size).sum();
        assert!(after < before);
    }
}
