//! Ablation variants of RL4OASD (paper Table IV).
//!
//! Each variant disables one component; [`variant_config`] produces the
//! corresponding configuration, and [`TransitionFrequencyDetector`]
//! implements the "only transition frequency" row — the simplest possible
//! method, thresholding the preprocessing fractions directly.

use crate::config::Rl4oasdConfig;
use crate::preprocess::Preprocessor;
use rnet::SegmentId;
use serde::{Deserialize, Serialize};
use traj::{slot_of_time, OnlineDetector, SdPair};

/// The rows of the paper's ablation study (Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AblationVariant {
    /// The full model.
    Full,
    /// Noisy labels replaced by random labels for the warm start.
    NoNoisyLabels,
    /// Random embedding init instead of Toast pre-training.
    NoRoadSegmentEmbeddings,
    /// Road Network Enhanced Labeling disabled.
    NoRnel,
    /// Delayed Labeling disabled.
    NoDelayedLabeling,
    /// Local (continuity) reward disabled.
    NoLocalReward,
    /// Global (label-quality) reward disabled.
    NoGlobalReward,
    /// ASDNet replaced by an ordinary classifier on RSRNet outputs.
    NoAsdNet,
    /// Detection by thresholded transition frequency only.
    TransitionFrequencyOnly,
}

impl AblationVariant {
    /// All variants in the order of the paper's Table IV.
    pub const ALL: [AblationVariant; 9] = [
        AblationVariant::Full,
        AblationVariant::NoNoisyLabels,
        AblationVariant::NoRoadSegmentEmbeddings,
        AblationVariant::NoRnel,
        AblationVariant::NoDelayedLabeling,
        AblationVariant::NoLocalReward,
        AblationVariant::NoGlobalReward,
        AblationVariant::NoAsdNet,
        AblationVariant::TransitionFrequencyOnly,
    ];

    /// Row label as printed in Table IV.
    pub fn name(self) -> &'static str {
        match self {
            AblationVariant::Full => "RL4OASD",
            AblationVariant::NoNoisyLabels => "w/o noisy labels",
            AblationVariant::NoRoadSegmentEmbeddings => "w/o road segment embeddings",
            AblationVariant::NoRnel => "w/o RNEL",
            AblationVariant::NoDelayedLabeling => "w/o DL",
            AblationVariant::NoLocalReward => "w/o local reward",
            AblationVariant::NoGlobalReward => "w/o global reward",
            AblationVariant::NoAsdNet => "w/o ASDNet",
            AblationVariant::TransitionFrequencyOnly => "only transition frequency",
        }
    }
}

/// The configuration implementing an ablation variant on top of `base`.
///
/// [`AblationVariant::TransitionFrequencyOnly`] needs no trained model; use
/// [`TransitionFrequencyDetector`] instead of training.
pub fn variant_config(base: &Rl4oasdConfig, variant: AblationVariant) -> Rl4oasdConfig {
    let mut cfg = base.clone();
    match variant {
        AblationVariant::Full | AblationVariant::TransitionFrequencyOnly => {}
        AblationVariant::NoNoisyLabels => cfg.use_noisy_labels = false,
        AblationVariant::NoRoadSegmentEmbeddings => cfg.use_toast_init = false,
        AblationVariant::NoRnel => cfg.use_rnel = false,
        AblationVariant::NoDelayedLabeling => cfg.use_delayed_labeling = false,
        AblationVariant::NoLocalReward => cfg.use_local_reward = false,
        AblationVariant::NoGlobalReward => cfg.use_global_reward = false,
        AblationVariant::NoAsdNet => cfg.use_asdnet = false,
    }
    cfg
}

/// The "only transition frequency" detector: labels a segment anomalous iff
/// its transition fraction within the (SD pair, time slot) group is at most
/// α. This is exactly the noisy-label heuristic used online.
pub struct TransitionFrequencyDetector<'a> {
    pre: &'a Preprocessor,
    sd: SdPair,
    slot: usize,
    prev: Option<SegmentId>,
    labels: Vec<u8>,
}

impl<'a> TransitionFrequencyDetector<'a> {
    /// Creates the detector over fitted preprocessing statistics.
    pub fn new(pre: &'a Preprocessor) -> Self {
        TransitionFrequencyDetector {
            pre,
            sd: SdPair::default(),
            slot: 0,
            prev: None,
            labels: Vec::new(),
        }
    }
}

impl OnlineDetector for TransitionFrequencyDetector<'_> {
    fn name(&self) -> &'static str {
        "TransitionFrequency"
    }

    fn begin(&mut self, sd: SdPair, start_time: f64) {
        self.sd = sd;
        self.slot = slot_of_time(start_time);
        self.prev = None;
        self.labels.clear();
    }

    fn observe(&mut self, segment: SegmentId) -> u8 {
        let is_endpoint = self.labels.is_empty() || segment == self.sd.dest;
        let frac = self
            .pre
            .fraction_at(self.sd, self.slot, self.prev, segment, is_endpoint);
        let label = u8::from(frac <= self.pre.alpha());
        self.labels.push(label);
        self.prev = Some(segment);
        label
    }

    fn finish(&mut self) -> Vec<u8> {
        if let Some(last) = self.labels.last_mut() {
            *last = 0;
        }
        std::mem::take(&mut self.labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnet::{CityBuilder, CityConfig};
    use traj::{Dataset, TrafficConfig, TrafficSimulator};

    #[test]
    fn variant_configs_flip_exactly_one_switch() {
        let base = Rl4oasdConfig::default();
        for v in AblationVariant::ALL {
            let cfg = variant_config(&base, v);
            let flips = [
                cfg.use_noisy_labels != base.use_noisy_labels,
                cfg.use_toast_init != base.use_toast_init,
                cfg.use_rnel != base.use_rnel,
                cfg.use_delayed_labeling != base.use_delayed_labeling,
                cfg.use_local_reward != base.use_local_reward,
                cfg.use_global_reward != base.use_global_reward,
                cfg.use_asdnet != base.use_asdnet,
            ]
            .iter()
            .filter(|&&f| f)
            .count();
            let expected = usize::from(!matches!(
                v,
                AblationVariant::Full | AblationVariant::TransitionFrequencyOnly
            ));
            assert_eq!(flips, expected, "variant {v:?}");
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<&str> =
            AblationVariant::ALL.iter().map(|v| v.name()).collect();
        assert_eq!(names.len(), AblationVariant::ALL.len());
    }

    #[test]
    fn frequency_detector_flags_detours() {
        let net = CityBuilder::new(CityConfig::tiny(11)).build();
        let cfg = TrafficConfig {
            num_sd_pairs: 3,
            trajs_per_pair: (50, 60),
            anomaly_ratio: 0.1,
            ..TrafficConfig::tiny(11)
        };
        let data = TrafficSimulator::new(&net, cfg).generate();
        let ds = Dataset::from_generated(&data);
        let pre = Preprocessor::fit(&Rl4oasdConfig::tiny(11), &ds);
        let mut det = TransitionFrequencyDetector::new(&pre);
        let outputs: Vec<Vec<u8>> = ds
            .trajectories
            .iter()
            .map(|t| det.label_trajectory(t))
            .collect();
        let truths: Vec<Vec<u8>> = ds
            .trajectories
            .iter()
            .map(|t| ds.truth(t.id).unwrap().to_vec())
            .collect();
        let m = eval::evaluate(&outputs, &truths);
        // The heuristic is decent but imperfect (that is the point of the
        // ablation row).
        assert!(m.f1 > 0.2, "F1 = {}", m.f1);
        // endpoints always normal
        for o in &outputs {
            assert_eq!(o[0], 0);
            assert_eq!(*o.last().unwrap(), 0);
        }
    }
}
