//! ASDNet: Anomalous Subtrajectory Detection Network (paper §IV-D).
//!
//! Labelling road segments is modelled as an MDP:
//!
//! * **state** `s_i = [z_i ; v(e_{i-1}.l)]` — RSRNet's representation
//!   concatenated with an embedding of the previous segment's label;
//! * **action** `a_i ∈ {0, 1}` — label the segment normal or anomalous;
//! * **rewards** — a *local* continuity reward
//!   `sign(e_{i-1}.l = e_i.l) · cos(z_{i-1}, z_i)` (Eq. 2) and a *global*
//!   quality reward `1 / (1 + L)` from RSRNet's loss on the refined labels
//!   (Eq. 3), combined as `R_n = mean(local) + global` (Eq. 5).
//!
//! The stochastic policy is a single-layer feed-forward network with
//! softmax (paper §V-A) trained with REINFORCE (Eq. 4). A running-mean
//! baseline is subtracted from `R_n` to reduce gradient variance — this
//! leaves the gradient estimator unbiased and is the standard REINFORCE
//! stabilisation; the paper does not specify one.

use crate::config::Rl4oasdConfig;
use nn::ops;
use nn::{Embedding, Linear};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The policy network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsdNet {
    /// Label embedding `v(·)`, `2 × label_dim`.
    pub label_embed: Embedding,
    /// Single-layer policy over `[z ; v(prev label)]`, output dim 2.
    pub policy: Linear,
    /// Running-mean reward baseline.
    baseline: f32,
    /// Baseline update momentum.
    baseline_beta: f32,
}

/// One recorded decision of an episode (for the REINFORCE update).
#[derive(Debug, Clone)]
pub struct Step {
    /// The state vector the action was sampled from.
    pub state: Vec<f32>,
    /// Previous label fed into the state (for label-embedding gradients).
    pub prev_label: u8,
    /// The sampled action.
    pub action: u8,
}

impl AsdNet {
    /// Builds the policy network for representations of dimension `z_dim`.
    pub fn new(config: &Rl4oasdConfig, z_dim: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xA5D);
        AsdNet {
            label_embed: Embedding::new(2, config.label_dim, &mut rng),
            policy: Linear::new(z_dim + config.label_dim, 2, &mut rng),
            baseline: 0.0,
            baseline_beta: 0.95,
        }
    }

    /// Builds the state `s_i = [z_i ; v(prev_label)]`.
    pub fn state(&self, z: &[f32], prev_label: u8) -> Vec<f32> {
        ops::concat(z, self.label_embed.lookup(prev_label as usize))
    }

    /// Action probabilities `π(a | s)`.
    pub fn action_probs(&self, state: &[f32]) -> [f32; 2] {
        let mut logits = vec![0.0; 2];
        self.policy.infer(state, &mut logits);
        Self::probs_from_logits([logits[0], logits[1]])
    }

    /// Action probabilities from the policy head's raw logits. Shared by
    /// the scalar path and the engine's batched head pass so both make
    /// bit-identical decisions.
    pub fn probs_from_logits(logits: [f32; 2]) -> [f32; 2] {
        let m = logits[0].max(logits[1]);
        let e0 = (logits[0] - m).exp();
        let e1 = (logits[1] - m).exp();
        let s = e0 + e1;
        [e0 / s, e1 / s]
    }

    /// Greedy action from raw logits (see [`AsdNet::probs_from_logits`]).
    pub fn greedy_from_logits(logits: [f32; 2]) -> u8 {
        let p = Self::probs_from_logits(logits);
        u8::from(p[1] > p[0])
    }

    /// Samples an action from the stochastic policy.
    pub fn sample(&self, state: &[f32], rng: &mut StdRng) -> u8 {
        let p = self.action_probs(state);
        u8::from(rng.gen::<f32>() >= p[0])
    }

    /// Greedy action (inference).
    pub fn greedy(&self, state: &[f32]) -> u8 {
        let mut logits = vec![0.0; 2];
        self.policy.infer(state, &mut logits);
        Self::greedy_from_logits([logits[0], logits[1]])
    }

    /// The local (continuity) reward of Eq. 2 for consecutive
    /// representations and labels.
    pub fn local_reward(prev_label: u8, label: u8, z_prev: &[f32], z: &[f32]) -> f32 {
        let sign = if prev_label == label { 1.0 } else { -1.0 };
        sign * ops::cosine(z_prev, z)
    }

    /// The global reward of Eq. 3 from an RSRNet loss.
    pub fn global_reward(loss: f32) -> f32 {
        1.0 / (1.0 + loss)
    }

    /// REINFORCE update (Eq. 4) for one episode: ascends
    /// `Σ_i R_n ∇ ln π(a_i | s_i)` with the running-mean baseline
    /// subtracted from `R_n`. Returns the advantage used.
    pub fn reinforce(&mut self, steps: &[Step], reward: f32, lr: f32) -> f32 {
        if steps.is_empty() {
            return 0.0;
        }
        // Update the baseline first, then use the residual advantage.
        self.baseline = self.baseline_beta * self.baseline + (1.0 - self.baseline_beta) * reward;
        let advantage = reward - self.baseline;
        self.zero_grad();
        let label_dim = self.label_embed.dim();
        for step in steps {
            let (logits, ctx) = self.policy.forward(&step.state);
            let mut p = [logits[0], logits[1]];
            let m = p[0].max(p[1]);
            let s = (p[0] - m).exp() + (p[1] - m).exp();
            p[0] = (p[0] - m).exp() / s;
            p[1] = (p[1] - m).exp() / s;
            // d(-R ln π(a|s)) / dlogits = R * (π - onehot(a))
            let mut dlogits = [advantage * p[0], advantage * p[1]];
            dlogits[step.action as usize] -= advantage;
            let dstate = self.policy.backward(&ctx, &dlogits);
            let z_dim = step.state.len() - label_dim;
            self.label_embed
                .backward(step.prev_label as usize, &dstate[z_dim..]);
        }
        let mut params = self.params_mut();
        nn::param::clip_global_norm(&mut params, 5.0);
        // Plain SGD here, deliberately: REINFORCE gradients vanish as the
        // policy grows confident, so SGD steps shrink to zero and the
        // policy is stable at convergence. Adam's bias-corrected steps stay
        // ~lr-sized on pure gradient noise and slowly random-walk a
        // converged policy back to high entropy.
        for p in params {
            p.sgd_step(lr);
        }
        advantage
    }

    /// Behaviour-cloning step for the warm start: the paper pre-trains
    /// ASDNet by "specifying its actions as the noisy labels" and ascending
    /// Eq. 4 — with the actions fixed, that gradient is exactly the
    /// cross-entropy gradient towards the forced actions (scaled by the
    /// reward, which is constant within an episode). Returns the mean CE.
    pub fn clone_step(&mut self, steps: &[Step], lr: f32) -> f32 {
        if steps.is_empty() {
            return 0.0;
        }
        self.zero_grad();
        let label_dim = self.label_embed.dim();
        let scale = 1.0 / steps.len() as f32;
        let mut loss = 0.0f32;
        for step in steps {
            let (logits, ctx) = self.policy.forward(&step.state);
            let m = logits[0].max(logits[1]);
            let e0 = (logits[0] - m).exp();
            let e1 = (logits[1] - m).exp();
            let s = e0 + e1;
            let p = [e0 / s, e1 / s];
            loss -= p[step.action as usize].max(1e-12).ln() * scale;
            let mut dlogits = [p[0] * scale, p[1] * scale];
            dlogits[step.action as usize] -= scale;
            let dstate = self.policy.backward(&ctx, &dlogits);
            let z_dim = step.state.len() - label_dim;
            self.label_embed
                .backward(step.prev_label as usize, &dstate[z_dim..]);
        }
        let mut params = self.params_mut();
        nn::param::clip_global_norm(&mut params, 5.0);
        for p in params {
            p.adam_step(lr);
        }
        loss
    }

    /// Clears all gradients.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// All learnable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut nn::Param> {
        let mut v = Vec::new();
        v.extend(self.label_embed.params_mut());
        v.extend(self.policy.params_mut());
        v
    }

    /// Current reward baseline (diagnostics).
    pub fn baseline(&self) -> f32 {
        self.baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(seed: u64) -> AsdNet {
        let cfg = Rl4oasdConfig {
            label_dim: 4,
            ..Rl4oasdConfig::tiny(seed)
        };
        AsdNet::new(&cfg, 6)
    }

    #[test]
    fn probs_sum_to_one() {
        let net = tiny(1);
        let s = net.state(&[0.1, -0.2, 0.3, 0.0, 0.5, -0.5], 0);
        let p = net.action_probs(&s);
        assert!((p[0] + p[1] - 1.0).abs() < 1e-6);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn local_reward_signs() {
        let z = vec![1.0, 0.0];
        // same labels, identical z: +1
        assert!((AsdNet::local_reward(0, 0, &z, &z) - 1.0).abs() < 1e-6);
        // different labels, identical z: -1
        assert!((AsdNet::local_reward(0, 1, &z, &z) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn global_reward_range() {
        assert!((AsdNet::global_reward(0.0) - 1.0).abs() < 1e-6);
        assert!(AsdNet::global_reward(10.0) < 0.1);
        assert!(AsdNet::global_reward(0.5) > 0.6);
    }

    #[test]
    fn reinforce_increases_rewarded_action_probability() {
        // Rewarding action 1 in a fixed state must raise π(1|s). The
        // running baseline starts at 0, so a positive reward yields a
        // positive advantage.
        let mut net = tiny(2);
        let z = vec![0.2, -0.1, 0.4, 0.3, -0.2, 0.1];
        let state = net.state(&z, 0);
        let before = net.action_probs(&state)[1];
        for _ in 0..30 {
            let state = net.state(&z, 0);
            let steps = vec![Step {
                state: state.clone(),
                prev_label: 0,
                action: 1,
            }];
            net.reinforce(&steps, 1.0, 0.05);
        }
        let state = net.state(&z, 0);
        let after = net.action_probs(&state)[1];
        assert!(after > before, "π(1|s) {before} -> {after}");
    }

    #[test]
    fn negative_advantage_decreases_probability() {
        let mut net = tiny(3);
        let z = vec![0.5; 6];
        // Saturate the baseline high so a zero reward has negative
        // advantage.
        for _ in 0..50 {
            let s = net.state(&z, 1);
            net.reinforce(
                &[Step {
                    state: s,
                    prev_label: 1,
                    action: 0,
                }],
                2.0,
                0.0001,
            );
        }
        let s = net.state(&z, 1);
        let before = net.action_probs(&s)[0];
        for _ in 0..30 {
            let s = net.state(&z, 1);
            net.reinforce(
                &[Step {
                    state: s,
                    prev_label: 1,
                    action: 0,
                }],
                0.0,
                0.05,
            );
        }
        let s = net.state(&z, 1);
        let after = net.action_probs(&s)[0];
        assert!(after < before, "π(0|s) {before} -> {after}");
    }

    #[test]
    fn sampling_is_distributed() {
        let net = tiny(4);
        let z = vec![0.0; 6];
        let s = net.state(&z, 0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut ones = 0;
        for _ in 0..200 {
            ones += net.sample(&s, &mut rng) as usize;
        }
        // near-uniform policy at init: both actions sampled
        assert!(ones > 20 && ones < 180, "ones = {ones}");
    }

    #[test]
    fn empty_episode_is_noop() {
        let mut net = tiny(5);
        assert_eq!(net.reinforce(&[], 1.0, 0.1), 0.0);
    }
}
