//! Configuration of the RL4OASD pipeline.

use serde::{Deserialize, Serialize};

/// Hyperparameters and ablation switches for RL4OASD.
///
/// Defaults follow the paper's §V-A parameter setting scaled to CPU
/// training (the paper uses 128-dimensional embeddings/hidden units on a
/// GPU; [`Rl4oasdConfig::paper`] restores those sizes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rl4oasdConfig {
    /// Noisy-label transition-fraction threshold α (paper: 0.5; default
    /// tuned to 0.25 for the synthetic corpus — its secondary normal
    /// routes carry ~30–38% of traffic, so α must sit below that band;
    /// see the parameter study, `bench --bin params`).
    pub alpha: f64,
    /// Normal-route fraction threshold δ (paper: 0.4; default tuned to 0.2
    /// for the synthetic corpus for the same reason as α; see the
    /// parameter study).
    pub delta: f64,
    /// Delayed-labeling window D (paper: 8).
    pub delay_d: usize,
    /// Road-segment (TCF) embedding dimension.
    pub embed_dim: usize,
    /// LSTM hidden units.
    pub hidden_dim: usize,
    /// Normal-route-feature embedding dimension.
    pub nrf_dim: usize,
    /// Previous-label embedding dimension in ASDNet states.
    pub label_dim: usize,
    /// RSRNet learning rate (paper: 0.01).
    pub lr_rsrnet: f32,
    /// ASDNet learning rate (paper: 0.001).
    pub lr_asdnet: f32,
    /// Trajectories used for warm-start pre-training (paper: 200).
    pub pretrain_trajs: usize,
    /// Warm-start passes over the pre-training set. The paper pre-trains
    /// "separately" without stating a count; several passes are needed for
    /// the warm start to actually steer the joint loop away from the all-
    /// normal degenerate policy.
    pub pretrain_epochs: usize,
    /// Trajectories sampled for joint training (paper: 10,000).
    pub joint_trajs: usize,
    /// Joint-training epochs over the sampled set (paper: 5).
    pub joint_epochs: usize,
    /// Minimum (SD pair, time slot) group size before falling back to the
    /// whole-pair group when computing fractions. The paper's datasets have
    /// hundreds of trajectories per labelled pair; synthetic corpora can be
    /// sparser, and per-slot fractions over a handful of trajectories are
    /// meaningless.
    pub min_group_size: usize,
    /// Skip-gram epochs for Toast-style embedding pre-training.
    pub toast_epochs: usize,
    /// Weight (relative learning-rate multiplier) of the noisy-label anchor
    /// kept on RSRNet during joint training. The paper trains RSRNet only
    /// on the policy's refined labels after the warm start; without an
    /// anchor that loop has a degenerate all-normal fixed point (the policy
    /// labels everything 0, RSRNet fits it, the global reward saturates).
    /// The paper escapes it by selecting "the best model during the
    /// process" on a labelled dev set; we instead keep a small anchor,
    /// which is ablated together with `use_noisy_labels`. Set to 0.0 for
    /// the paper's exact protocol.
    pub noisy_anchor_weight: f32,
    /// Learning-rate scale applied to RSRNet during the joint phase. The
    /// warm start uses the full `lr_rsrnet`; the joint loop must move the
    /// representations slowly or the policy's decision boundary is
    /// invalidated faster than REINFORCE can track it.
    pub joint_lr_scale: f32,
    /// Weight of the continued behaviour-cloning anchor on the policy
    /// during the joint phase (relative to `lr_asdnet`). Stabilises the
    /// policy against REINFORCE variance; ablated with `use_noisy_labels`.
    pub policy_anchor_weight: f32,
    /// Evaluate the model on the dev set (if one is provided) every this
    /// many joint episodes, keeping the best snapshot — the paper's "the
    /// best model is chosen during the process".
    pub dev_eval_every: usize,
    /// RNG seed for model init and action sampling.
    pub seed: u64,
    // ---- ablation switches (Table IV) --------------------------------
    /// Use heuristic noisy labels for warm-start (ablation: random labels).
    pub use_noisy_labels: bool,
    /// Initialise the embedding layer from Toast vectors (ablation: random).
    pub use_toast_init: bool,
    /// Road Network Enhanced Labeling rules at inference.
    pub use_rnel: bool,
    /// Delayed Labeling post-processing at inference.
    pub use_delayed_labeling: bool,
    /// Local (continuity) reward.
    pub use_local_reward: bool,
    /// Global (label-quality) reward.
    pub use_global_reward: bool,
    /// Use the RL network; `false` replaces ASDNet with an ordinary
    /// classifier on RSRNet outputs (ablation "w/o ASDNet").
    pub use_asdnet: bool,
}

impl Default for Rl4oasdConfig {
    fn default() -> Self {
        Rl4oasdConfig {
            alpha: 0.25,
            delta: 0.2,
            delay_d: 8,
            embed_dim: 64,
            hidden_dim: 64,
            nrf_dim: 16,
            label_dim: 16,
            lr_rsrnet: 0.01,
            lr_asdnet: 0.001,
            pretrain_trajs: 200,
            pretrain_epochs: 3,
            joint_trajs: 2_000,
            joint_epochs: 3,
            min_group_size: 50,
            toast_epochs: 3,
            noisy_anchor_weight: 0.3,
            joint_lr_scale: 0.1,
            policy_anchor_weight: 0.3,
            dev_eval_every: 500,
            seed: 0x5EED,
            use_noisy_labels: true,
            use_toast_init: true,
            use_rnel: true,
            use_delayed_labeling: true,
            use_local_reward: true,
            use_global_reward: true,
            use_asdnet: true,
        }
    }
}

impl Rl4oasdConfig {
    /// The paper's exact parameter setting (§V-A): 128-dimensional
    /// embeddings and hidden units, 10,000 joint-training trajectories,
    /// 5 epochs.
    pub fn paper() -> Self {
        Rl4oasdConfig {
            alpha: 0.5,
            delta: 0.4,
            embed_dim: 128,
            hidden_dim: 128,
            nrf_dim: 128,
            label_dim: 128,
            joint_trajs: 10_000,
            joint_epochs: 5,
            ..Default::default()
        }
    }

    /// Small configuration for unit tests: tiny dimensions, few training
    /// trajectories, deterministic.
    pub fn tiny(seed: u64) -> Self {
        Rl4oasdConfig {
            embed_dim: 12,
            hidden_dim: 12,
            nrf_dim: 4,
            label_dim: 4,
            pretrain_trajs: 60,
            pretrain_epochs: 4,
            joint_trajs: 60,
            joint_epochs: 2,
            toast_epochs: 1,
            seed,
            ..Default::default()
        }
    }

    /// Validates the configuration, panicking with a descriptive message on
    /// nonsense values. Called by the training entry points.
    pub fn validate(&self) {
        assert!((0.0..=1.0).contains(&self.alpha), "alpha must be in [0,1]");
        assert!((0.0..=1.0).contains(&self.delta), "delta must be in [0,1]");
        assert!(self.embed_dim > 0 && self.hidden_dim > 0);
        assert!(self.nrf_dim > 0 && self.label_dim > 0);
        assert!(self.lr_rsrnet > 0.0 && self.lr_asdnet > 0.0);
        assert!(self.joint_epochs > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        Rl4oasdConfig::default().validate();
        Rl4oasdConfig::paper().validate();
        Rl4oasdConfig::tiny(1).validate();
    }

    #[test]
    fn paper_preset_matches_section_5a() {
        let c = Rl4oasdConfig::paper();
        assert_eq!(c.embed_dim, 128);
        assert_eq!(c.hidden_dim, 128);
        assert_eq!(c.joint_trajs, 10_000);
        assert_eq!(c.joint_epochs, 5);
        assert_eq!(c.alpha, 0.5);
        assert_eq!(c.delta, 0.4);
        assert_eq!(c.delay_d, 8);
        assert_eq!(c.pretrain_trajs, 200);
        assert!((c.lr_rsrnet - 0.01).abs() < 1e-9);
        assert!((c.lr_asdnet - 0.001).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_rejected() {
        Rl4oasdConfig {
            alpha: 1.5,
            ..Default::default()
        }
        .validate();
    }
}
