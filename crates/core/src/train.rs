//! Joint training of RSRNet and ASDNet (paper §IV-D) and online learning
//! for concept drift (§IV-E, §V-G).
//!
//! Protocol (paper "Joint Training of RSRNet and ASDNet"):
//!
//! 1. map-match + noisy labels (done upstream / [`Preprocessor`]);
//! 2. **warm start**: 200 random trajectories pre-train RSRNet supervised
//!    on the noisy labels, and pre-train ASDNet with its actions *forced to*
//!    the noisy labels (a REINFORCE step towards the heuristic behaviour);
//! 3. **joint loop**: sample 10,000 trajectories × 5 epochs; per
//!    trajectory, the policy refines labels (sampled actions), the episode
//!    reward `R_n = mean(local) + global` (Eq. 5) updates the policy
//!    (Eq. 4), and RSRNet trains on the refined labels, improving the
//!    representations the policy sees next.

use crate::asdnet::{AsdNet, Step};
use crate::config::Rl4oasdConfig;
use crate::preprocess::Preprocessor;
use crate::rsrnet::RsrNet;
use crate::toast::{self, ToastConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rnet::RoadNetwork;
use serde::{Deserialize, Serialize};
use traj::{Dataset, MappedTrajectory};

/// A trained RL4OASD model: preprocessor statistics plus the two networks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedModel {
    /// The configuration the model was trained with.
    pub config: Rl4oasdConfig,
    /// Fitted group statistics (α-labels, δ-routes).
    pub preprocessor: Preprocessor,
    /// Representation network.
    pub rsrnet: RsrNet,
    /// Policy network.
    pub asdnet: AsdNet,
    /// Lazily-built packed hot-path weights (see [`TrainedModel::packed`]).
    /// Derived from the networks above, so excluded from serialisation via
    /// the [`packed_cache`] adapter and rebuilt on first use after load.
    #[serde(with = "packed_cache")]
    packed: std::sync::OnceLock<crate::packed::PackedModel>,
}

impl TrainedModel {
    /// Assembles a model from its trained parts.
    pub fn from_parts(
        config: Rl4oasdConfig,
        preprocessor: Preprocessor,
        rsrnet: RsrNet,
        asdnet: AsdNet,
    ) -> Self {
        TrainedModel {
            config,
            preprocessor,
            rsrnet,
            asdnet,
            packed: std::sync::OnceLock::new(),
        }
    }

    /// The packed hot-path weights, built on first use and cached for the
    /// model's lifetime. Every serving engine sharing this model (via
    /// `Arc`) hits the same packed copy — packing happens once per loaded
    /// model, never per session or per tick.
    ///
    /// # Example
    ///
    /// ```
    /// use rl4oasd::Rl4oasdConfig;
    /// use rnet::{CityBuilder, CityConfig};
    /// use traj::{Dataset, TrafficConfig, TrafficSimulator};
    ///
    /// let net = CityBuilder::new(CityConfig::tiny(3)).build();
    /// let data = TrafficSimulator::new(&net, TrafficConfig::tiny(3)).generate();
    /// let model = rl4oasd::train(&net, &Dataset::from_generated(&data), &Rl4oasdConfig::tiny(3));
    ///
    /// // Packing happens on the first call; later calls hit the cache.
    /// let packed = model.packed();
    /// assert!(std::ptr::eq(packed, model.packed()));
    ///
    /// // The cache is derived data: it survives neither serialisation...
    /// let json = serde_json::to_string(&model).unwrap();
    /// assert!(!json.contains("\"packed\":{"));
    /// // ...nor deserialisation — the loaded model repacks on first use.
    /// let reloaded: rl4oasd::TrainedModel = serde_json::from_str(&json).unwrap();
    /// let _ = reloaded.packed();
    /// ```
    pub fn packed(&self) -> &crate::packed::PackedModel {
        self.packed
            .get_or_init(|| crate::packed::PackedModel::of(&self.rsrnet, &self.asdnet))
    }
}

/// Serde adapter for the packed-kernel cache: serialised as `null`
/// (the packed form is derived data), deserialised as an empty cache.
mod packed_cache {
    use crate::packed::PackedModel;
    use std::sync::OnceLock;

    pub fn serialize(_: &OnceLock<PackedModel>) -> serde::Value {
        serde::Value::Null
    }

    pub fn deserialize(_: &serde::Value) -> Result<OnceLock<PackedModel>, serde::Error> {
        Ok(OnceLock::new())
    }
}

/// Diagnostics of a training run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainStats {
    /// Mean RSRNet loss per joint epoch.
    pub epoch_losses: Vec<f32>,
    /// Mean episode reward per joint epoch.
    pub epoch_rewards: Vec<f32>,
    /// Wall-clock seconds spent in training (excl. preprocessing).
    pub train_seconds: f64,
}

/// Trains RL4OASD on a road network and an (unlabelled) trajectory corpus.
pub fn train(net: &RoadNetwork, data: &Dataset, config: &Rl4oasdConfig) -> TrainedModel {
    train_with_dev(net, data, None, config).0
}

/// [`train`] returning per-epoch diagnostics (used by Table V / Fig. 6).
pub fn train_with_stats(
    net: &RoadNetwork,
    data: &Dataset,
    config: &Rl4oasdConfig,
) -> (TrainedModel, TrainStats) {
    train_with_dev(net, data, None, config)
}

/// Full training entry point with an optional labelled dev set.
///
/// The paper keeps a small manually labelled development set (100
/// trajectories, §V-A) and "the best model is chosen during the process";
/// when `dev` is provided, the model is evaluated every
/// `config.dev_eval_every` joint episodes and the best-F1 snapshot is
/// returned.
pub fn train_with_dev(
    net: &RoadNetwork,
    data: &Dataset,
    dev: Option<&Dataset>,
    config: &Rl4oasdConfig,
) -> (TrainedModel, TrainStats) {
    config.validate();
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    let started = std::time::Instant::now();
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Preprocessing statistics (noisy labels + NRF).
    let preprocessor = Preprocessor::fit(config, data);

    // Toast-style embedding pre-training.
    let toast_init = if config.use_toast_init {
        Some(toast::train_embeddings(
            net,
            data,
            &ToastConfig {
                embed_dim: config.embed_dim,
                epochs: config.toast_epochs,
                seed: config.seed ^ 0x70,
                ..Default::default()
            },
        ))
    } else {
        None
    };

    let mut rsrnet = RsrNet::new(config, net.num_segments(), toast_init);
    let mut asdnet = AsdNet::new(config, rsrnet.z_dim());
    let mut model_ctx = ModelCtx {
        config,
        preprocessor: &preprocessor,
        rng: &mut rng,
    };

    // ---- warm start -----------------------------------------------------
    // Phase 1: RSRNet supervised on the noisy labels (several passes so the
    // representations actually encode the heuristic before the policy sees
    // them).
    let pretrain_ids = model_ctx.sample_ids(data, config.pretrain_trajs);
    let warm_labels: Vec<(usize, Vec<u8>)> = pretrain_ids
        .iter()
        .filter(|&&id| data.trajectories[id].len() >= 2)
        .map(|&id| (id, model_ctx.warmstart_labels(&data.trajectories[id])))
        .collect();
    for _ in 0..config.pretrain_epochs {
        for (id, labels) in &warm_labels {
            let traj = &data.trajectories[*id];
            let feats = preprocessor.features(traj);
            rsrnet.train_step(&traj.segments, &feats.nrf, labels, config.lr_rsrnet);
        }
    }
    // Phase 2: ASDNet warm start with actions forced to the noisy labels
    // (behaviour cloning; see AsdNet::clone_step). A higher warm-start rate
    // is used — the joint loop then continues at the paper's lr. Skipped
    // entirely for the "w/o ASDNet" ablation, which replaces the policy
    // with an ordinary classifier trained on the noisy labels.
    for _ in 0..if config.use_asdnet {
        config.pretrain_epochs
    } else {
        0
    } {
        for (id, labels) in &warm_labels {
            let traj = &data.trajectories[*id];
            let feats = preprocessor.features(traj);
            let fwd = rsrnet.forward(&traj.segments, &feats.nrf);
            let steps = forced_steps(&asdnet, &fwd.zs, labels);
            asdnet.clone_step(&steps, config.lr_rsrnet);
        }
    }

    // ---- joint training --------------------------------------------------
    let mut stats = TrainStats::default();
    let joint_ids = model_ctx.sample_ids(data, config.joint_trajs);
    let joint_lr = config.lr_rsrnet * config.joint_lr_scale;
    let mut best: Option<(f64, RsrNet, AsdNet)> = None;
    let mut episode = 0usize;
    for _epoch in 0..config.joint_epochs {
        let mut loss_sum = 0.0f32;
        let mut reward_sum = 0.0f32;
        let mut count = 0usize;
        for &id in &joint_ids {
            let traj = &data.trajectories[id];
            if traj.len() < 2 {
                continue;
            }
            let feats = preprocessor.features(traj);
            if !config.use_asdnet {
                // "w/o ASDNet": keep training the classifier on the noisy
                // labels; no refinement loop exists without the policy.
                let loss =
                    rsrnet.train_step(&traj.segments, &feats.nrf, &feats.noisy_labels, joint_lr);
                loss_sum += loss;
                count += 1;
                continue;
            }
            let fwd = rsrnet.forward(&traj.segments, &feats.nrf);
            // Policy rollout: sample refined labels (endpoints pinned 0 per
            // Algorithm 1 lines 2–3).
            let n = traj.len();
            let mut refined = vec![0u8; n];
            let mut steps = Vec::with_capacity(n.saturating_sub(2));
            let mut prev = 0u8;
            #[allow(clippy::needless_range_loop)]
            for i in 1..n - 1 {
                let state = asdnet.state(&fwd.zs[i], prev);
                let action = asdnet.sample(&state, model_ctx.rng);
                steps.push(Step {
                    state,
                    prev_label: prev,
                    action,
                });
                refined[i] = action;
                prev = action;
            }
            let reward = episode_reward(
                config,
                &rsrnet,
                &fwd.zs,
                &traj.segments,
                &feats.nrf,
                &refined,
            );
            asdnet.reinforce(&steps, reward, config.lr_asdnet);
            // Continued policy anchor (behaviour cloning towards the noisy
            // labels) — keeps the policy from random-walking under
            // REINFORCE variance.
            if config.use_noisy_labels && config.policy_anchor_weight > 0.0 {
                let anchor_steps = forced_steps(&asdnet, &fwd.zs, &feats.noisy_labels);
                asdnet.clone_step(
                    &anchor_steps,
                    config.lr_asdnet * config.policy_anchor_weight,
                );
            }
            // RSRNet trains on the refined labels at a reduced joint-phase
            // rate, with a small noisy-label anchor, so the representation
            // geometry the policy depends on moves slowly (see
            // Rl4oasdConfig::{joint_lr_scale, noisy_anchor_weight}).
            let loss = rsrnet.train_step(&traj.segments, &feats.nrf, &refined, joint_lr);
            if config.use_noisy_labels && config.noisy_anchor_weight > 0.0 {
                rsrnet.train_step(
                    &traj.segments,
                    &feats.nrf,
                    &feats.noisy_labels,
                    joint_lr * config.noisy_anchor_weight,
                );
            }
            loss_sum += loss;
            reward_sum += reward;
            count += 1;
            episode += 1;
            if let Some(dev) = dev {
                if episode.is_multiple_of(config.dev_eval_every.max(1)) {
                    let f1 = dev_f1(config, &preprocessor, &rsrnet, &asdnet, net, dev);
                    if best.as_ref().map(|(b, _, _)| f1 > *b).unwrap_or(true) {
                        best = Some((f1, rsrnet.clone(), asdnet.clone()));
                    }
                }
            }
        }
        stats.epoch_losses.push(loss_sum / count.max(1) as f32);
        stats.epoch_rewards.push(reward_sum / count.max(1) as f32);
    }
    // Final candidate also competes for best.
    if let Some(dev) = dev {
        let f1 = dev_f1(config, &preprocessor, &rsrnet, &asdnet, net, dev);
        if best.as_ref().map(|(b, _, _)| f1 > *b).unwrap_or(true) {
            best = Some((f1, rsrnet.clone(), asdnet.clone()));
        }
    }
    if let Some((_, r, a)) = best {
        rsrnet = r;
        asdnet = a;
    }
    stats.train_seconds = started.elapsed().as_secs_f64();

    (
        TrainedModel::from_parts(config.clone(), preprocessor, rsrnet, asdnet),
        stats,
    )
}

/// Dev-set F1 of the current model parts (paper's model-selection metric).
fn dev_f1(
    config: &Rl4oasdConfig,
    preprocessor: &Preprocessor,
    rsrnet: &RsrNet,
    asdnet: &AsdNet,
    net: &RoadNetwork,
    dev: &Dataset,
) -> f64 {
    let mut detector =
        crate::detector::Rl4oasdDetector::from_parts(config, preprocessor, rsrnet, asdnet, net);
    let mut outputs = Vec::with_capacity(dev.len());
    let mut truths = Vec::with_capacity(dev.len());
    for t in &dev.trajectories {
        if let Some(gt) = dev.truth(t.id) {
            outputs.push(traj::OnlineDetector::label_trajectory(&mut detector, t));
            truths.push(gt.to_vec());
        }
    }
    eval::evaluate(&outputs, &truths).f1
}

/// The episode reward `R_n` (Eq. 5): mean local continuity reward over
/// positions 2..n plus the global reward from RSRNet's loss on the refined
/// labels. Ablations can disable either part.
fn episode_reward(
    config: &Rl4oasdConfig,
    rsrnet: &RsrNet,
    zs: &[Vec<f32>],
    segs: &[rnet::SegmentId],
    nrf: &[u8],
    labels: &[u8],
) -> f32 {
    let n = labels.len();
    let mut reward = 0.0f32;
    if config.use_local_reward && n >= 2 {
        let mut local = 0.0f32;
        for i in 1..n {
            local += AsdNet::local_reward(labels[i - 1], labels[i], &zs[i - 1], &zs[i]);
        }
        reward += local / (n - 1) as f32;
    }
    if config.use_global_reward {
        let loss = rsrnet.loss(segs, nrf, labels);
        reward += AsdNet::global_reward(loss);
    }
    reward
}

/// Builds forced-action steps for the ASDNet warm start.
fn forced_steps(asdnet: &AsdNet, zs: &[Vec<f32>], labels: &[u8]) -> Vec<Step> {
    let n = labels.len();
    let mut steps = Vec::with_capacity(n.saturating_sub(2));
    let mut prev = 0u8;
    for i in 1..n.saturating_sub(1) {
        steps.push(Step {
            state: asdnet.state(&zs[i], prev),
            prev_label: prev,
            action: labels[i],
        });
        prev = labels[i];
    }
    steps
}

struct ModelCtx<'a> {
    config: &'a Rl4oasdConfig,
    preprocessor: &'a Preprocessor,
    rng: &'a mut StdRng,
}

impl ModelCtx<'_> {
    /// Samples `n` trajectory indices (with replacement once exhausted).
    fn sample_ids(&mut self, data: &Dataset, n: usize) -> Vec<usize> {
        let total = data.len();
        if n >= total {
            let mut ids: Vec<usize> = (0..total).collect();
            ids.shuffle(self.rng);
            ids
        } else {
            let mut ids: Vec<usize> = (0..total).collect();
            ids.shuffle(self.rng);
            ids.truncate(n);
            ids
        }
    }

    /// Warm-start labels: the preprocessor's noisy labels, or uniform
    /// random labels for the "w/o noisy labels" ablation.
    fn warmstart_labels(&mut self, traj: &MappedTrajectory) -> Vec<u8> {
        if self.config.use_noisy_labels {
            self.preprocessor.features(traj).noisy_labels
        } else {
            let n = traj.len();
            (0..n)
                .map(|i| {
                    if i == 0 || i == n - 1 {
                        0
                    } else {
                        self.rng.gen_range(0..2) as u8
                    }
                })
                .collect()
        }
    }
}

/// Online learning for concept drift (paper §V-G): refreshes the
/// preprocessor's fraction statistics with newly recorded trajectories and
/// fine-tunes both networks on them.
///
/// The learner owns its model copy, so fine-tuning never mutates weights a
/// serving engine is reading: publish a snapshot (`learner.model.clone()`
/// behind an `Arc`) into a running engine with
/// [`StreamEngine::swap_model`](crate::StreamEngine::swap_model) /
/// [`SwapModel`](crate::SwapModel) — the train → serve → fine-tune → swap
/// loop of `examples/drift_adaptation.rs`.
///
/// # Example
///
/// ```
/// use rl4oasd::{OnlineLearner, Rl4oasdConfig};
/// use rnet::{CityBuilder, CityConfig};
/// use traj::{Dataset, TrafficConfig, TrafficSimulator};
///
/// let net = CityBuilder::new(CityConfig::tiny(4)).build();
/// let data = TrafficSimulator::new(&net, TrafficConfig::tiny(4)).generate();
/// let ds = Dataset::from_generated(&data);
/// let model = rl4oasd::train(&net, &ds, &Rl4oasdConfig::tiny(4));
///
/// // Newly recorded traffic under a drifted regime...
/// let drifted = TrafficSimulator::new(&net, TrafficConfig::tiny(5)).generate();
/// let recent = Dataset::from_generated(&drifted);
///
/// // ...refreshes the statistics and fine-tunes both networks in place.
/// let mut learner = OnlineLearner::new(model);
/// let seconds = learner.fine_tune(&net, &recent);
/// assert!(seconds >= 0.0);
/// let snapshot = std::sync::Arc::new(learner.model.clone()); // publishable
/// # let _ = snapshot;
/// ```
pub struct OnlineLearner {
    /// The model being kept up to date.
    pub model: TrainedModel,
}

impl OnlineLearner {
    /// Wraps a trained model for continued learning.
    pub fn new(model: TrainedModel) -> Self {
        OnlineLearner { model }
    }

    /// Fine-tunes on newly recorded data, refreshing the preprocessing
    /// statistics first. Returns the wall-clock seconds spent.
    ///
    /// Concept drift changes which routes are *normal*, so the refreshed
    /// noisy labels and normal-route features may contradict what the
    /// networks learned. Fine-tuning therefore repeats the training recipe
    /// in miniature on the new data: supervised adaptation of RSRNet and
    /// the policy towards the new noisy labels, followed by the joint
    /// refinement pass.
    pub fn fine_tune(&mut self, net: &RoadNetwork, new_data: &Dataset) -> f64 {
        let _ = net;
        let started = std::time::Instant::now();
        let config = self.model.config.clone();
        self.model.preprocessor.refresh(&config, new_data);
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xF17E);
        // Phase 1: adapt to the new regime's noisy labels.
        for _ in 0..config.pretrain_epochs.min(2) {
            for traj in &new_data.trajectories {
                if traj.len() < 2 {
                    continue;
                }
                let feats = self.model.preprocessor.features(traj);
                self.model.rsrnet.train_step(
                    &traj.segments,
                    &feats.nrf,
                    &feats.noisy_labels,
                    config.lr_rsrnet,
                );
                let fwd = self.model.rsrnet.forward(&traj.segments, &feats.nrf);
                let steps = forced_steps(&self.model.asdnet, &fwd.zs, &feats.noisy_labels);
                self.model.asdnet.clone_step(&steps, config.lr_rsrnet);
            }
        }
        // Phase 2: one joint refinement pass (as in training).
        let joint_lr = config.lr_rsrnet * config.joint_lr_scale;
        for traj in &new_data.trajectories {
            if traj.len() < 2 {
                continue;
            }
            let feats = self.model.preprocessor.features(traj);
            let fwd = self.model.rsrnet.forward(&traj.segments, &feats.nrf);
            let n = traj.len();
            let mut refined = vec![0u8; n];
            let mut steps = Vec::with_capacity(n.saturating_sub(2));
            let mut prev = 0u8;
            #[allow(clippy::needless_range_loop)]
            for i in 1..n - 1 {
                let state = self.model.asdnet.state(&fwd.zs[i], prev);
                let action = self.model.asdnet.sample(&state, &mut rng);
                steps.push(Step {
                    state,
                    prev_label: prev,
                    action,
                });
                refined[i] = action;
                prev = action;
            }
            let reward = episode_reward(
                &config,
                &self.model.rsrnet,
                &fwd.zs,
                &traj.segments,
                &feats.nrf,
                &refined,
            );
            self.model
                .asdnet
                .reinforce(&steps, reward, config.lr_asdnet);
            if config.use_noisy_labels && config.policy_anchor_weight > 0.0 {
                let anchor = forced_steps(&self.model.asdnet, &fwd.zs, &feats.noisy_labels);
                self.model
                    .asdnet
                    .clone_step(&anchor, config.lr_asdnet * config.policy_anchor_weight);
            }
            self.model
                .rsrnet
                .train_step(&traj.segments, &feats.nrf, &refined, joint_lr);
        }
        started.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnet::{CityBuilder, CityConfig};
    use traj::{TrafficConfig, TrafficSimulator};

    fn setup(seed: u64) -> (RoadNetwork, Dataset) {
        let net = CityBuilder::new(CityConfig::tiny(seed)).build();
        let cfg = TrafficConfig {
            num_sd_pairs: 3,
            trajs_per_pair: (40, 60),
            anomaly_ratio: 0.12,
            ..TrafficConfig::tiny(seed)
        };
        let data = TrafficSimulator::new(&net, cfg).generate();
        (net, Dataset::from_generated(&data))
    }

    #[test]
    fn training_completes_and_is_finite() {
        let (net, ds) = setup(1);
        let cfg = Rl4oasdConfig::tiny(1);
        let (model, stats) = train_with_stats(&net, &ds, &cfg);
        assert_eq!(stats.epoch_losses.len(), cfg.joint_epochs);
        assert!(stats.epoch_losses.iter().all(|l| l.is_finite()));
        assert!(stats.epoch_rewards.iter().all(|r| r.is_finite()));
        assert!(model.preprocessor.num_pairs() > 0);
        assert!(stats.train_seconds > 0.0);
    }

    #[test]
    fn rewards_do_not_collapse() {
        // Episode rewards should stay in a sane range (local ∈ [-1, 1],
        // global ∈ (0, 1]) — a sign bug would push them outside.
        let (net, ds) = setup(2);
        let (_, stats) = train_with_stats(&net, &ds, &Rl4oasdConfig::tiny(2));
        for &r in &stats.epoch_rewards {
            assert!((-2.0..=2.0).contains(&r), "reward {r} out of range");
        }
    }

    #[test]
    fn fine_tune_runs() {
        let (net, ds) = setup(3);
        let model = train(&net, &ds, &Rl4oasdConfig::tiny(3));
        let mut learner = OnlineLearner::new(model);
        let secs = learner.fine_tune(&net, &ds);
        assert!(secs >= 0.0);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_rejected() {
        let (net, _) = setup(4);
        train(&net, &Dataset::default(), &Rl4oasdConfig::tiny(4));
    }
}
