//! End-to-end pipeline: raw GPS corpus → map matching → training →
//! detector, plus model persistence.
//!
//! The paper's system ingests *raw* GPS trajectories; everything in
//! [`crate::train()`] operates on map-matched ones. This module packages the
//! full ingestion path (the left half of the paper's Fig. 2) so a
//! downstream user can go from a GPS corpus to a working detector in one
//! call, and persist/restore trained models.

use crate::config::Rl4oasdConfig;
use crate::train::{train_with_dev, TrainStats, TrainedModel};
use mapmatch::{MapMatcher, MatchConfig};
use rnet::RoadNetwork;
use traj::{Dataset, RawTrajectory};

/// Outcome of a pipeline run.
pub struct PipelineResult {
    /// The trained model.
    pub model: TrainedModel,
    /// Training diagnostics.
    pub stats: TrainStats,
    /// The map-matched training corpus (for inspection / reuse).
    pub matched: Dataset,
    /// Raw trajectories that failed map matching (indices into the input).
    pub unmatched: Vec<usize>,
}

/// Runs the full pipeline: map-match `raw` onto `net`, assemble a dataset,
/// and train RL4OASD. Trajectories that fail to match (too short, off-map)
/// are skipped and reported.
pub fn train_from_gps(
    net: &RoadNetwork,
    raw: &[RawTrajectory],
    match_config: MatchConfig,
    config: &Rl4oasdConfig,
) -> PipelineResult {
    let matcher = MapMatcher::new(net, match_config);
    let mut matched = Dataset::default();
    let mut unmatched = Vec::new();
    for (i, r) in raw.iter().enumerate() {
        match matcher.match_trajectory(r) {
            Some(mut t) if t.len() >= 2 => {
                t.id = traj::TrajectoryId(matched.trajectories.len() as u32);
                matched.trajectories.push(t);
                matched.ground_truth.push(None);
            }
            _ => unmatched.push(i),
        }
    }
    matched.rebuild_index();
    assert!(
        !matched.is_empty(),
        "no trajectory could be map-matched; check the network / GPS frames"
    );
    let (model, stats) = train_with_dev(net, &matched, None, config);
    PipelineResult {
        model,
        stats,
        matched,
        unmatched,
    }
}

/// Serialises a trained model to JSON (the only offline-available format;
/// models are a few MB at default dimensions).
pub fn save_model(model: &TrainedModel, path: &std::path::Path) -> std::io::Result<()> {
    let json = serde_json::to_string(model)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, json)
}

/// Restores a model saved with [`save_model`].
pub fn load_model(path: &std::path::Path) -> std::io::Result<TrainedModel> {
    let json = std::fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnet::{CityBuilder, CityConfig};
    use traj::{OnlineDetector, TrafficConfig, TrafficSimulator};

    #[test]
    fn gps_to_detector_roundtrip() {
        let net = CityBuilder::new(CityConfig::tiny(21)).build();
        let sim = TrafficSimulator::new(
            &net,
            TrafficConfig {
                num_sd_pairs: 2,
                trajs_per_pair: (25, 30),
                generate_raw: true,
                gps_noise_std: 4.0,
                ..TrafficConfig::tiny(21)
            },
        );
        let generated = sim.generate();
        let result = train_from_gps(
            &net,
            &generated.raw,
            MatchConfig::default(),
            &Rl4oasdConfig::tiny(21),
        );
        assert!(result.matched.len() + result.unmatched.len() == generated.raw.len());
        assert!(
            result.matched.len() as f64 / generated.raw.len() as f64 > 0.9,
            "most GPS trajectories must match"
        );
        // the detector built on GPS-derived data must run
        let mut det = crate::detector::Rl4oasdDetector::new(&result.model, &net);
        let labels = det.label_trajectory(&result.matched.trajectories[0]);
        assert_eq!(labels.len(), result.matched.trajectories[0].len());
    }

    #[test]
    fn save_load_roundtrip() {
        let net = CityBuilder::new(CityConfig::tiny(22)).build();
        let sim = TrafficSimulator::new(
            &net,
            TrafficConfig {
                num_sd_pairs: 2,
                trajs_per_pair: (20, 25),
                ..TrafficConfig::tiny(22)
            },
        );
        let ds = Dataset::from_generated(&sim.generate());
        let model = crate::train::train(&net, &ds, &Rl4oasdConfig::tiny(22));
        let dir = std::env::temp_dir().join("rl4oasd_test_model.json");
        save_model(&model, &dir).unwrap();
        let restored = load_model(&dir).unwrap();
        let _ = std::fs::remove_file(&dir);
        let mut d1 = crate::detector::Rl4oasdDetector::new(&model, &net);
        let mut d2 = crate::detector::Rl4oasdDetector::new(&restored, &net);
        for t in ds.trajectories.iter().take(5) {
            assert_eq!(d1.label_trajectory(t), d2.label_trajectory(t));
        }
    }

    #[test]
    fn loads_model_files_saved_before_the_packed_cache_existed() {
        // Pre-PR-4 model JSON has no "packed" key (the packed-kernel cache
        // is derived data serialised as null via a `with`-adapter); such
        // files must keep loading and detect identically.
        let net = CityBuilder::new(CityConfig::tiny(24)).build();
        let sim = TrafficSimulator::new(
            &net,
            TrafficConfig {
                num_sd_pairs: 2,
                trajs_per_pair: (20, 25),
                ..TrafficConfig::tiny(24)
            },
        );
        let ds = Dataset::from_generated(&sim.generate());
        let model = crate::train::train(&net, &ds, &Rl4oasdConfig::tiny(24));
        let json = serde_json::to_string(&model).unwrap();
        assert!(json.contains("\"packed\":null"), "cache serialised as null");
        let legacy = json
            .replace("\"packed\":null,", "")
            .replace(",\"packed\":null", "");
        assert!(!legacy.contains("\"packed\""), "key stripped for the test");
        let restored: crate::train::TrainedModel = serde_json::from_str(&legacy).unwrap();
        let mut d1 = crate::detector::Rl4oasdDetector::new(&model, &net);
        let mut d2 = crate::detector::Rl4oasdDetector::new(&restored, &net);
        for t in ds.trajectories.iter().take(3) {
            assert_eq!(d1.label_trajectory(t), d2.label_trajectory(t));
        }
    }

    #[test]
    #[should_panic(expected = "no trajectory could be map-matched")]
    fn empty_or_unmatched_input_panics() {
        let net = CityBuilder::new(CityConfig::tiny(23)).build();
        // Points far outside the city: nothing matches.
        let raw = vec![RawTrajectory {
            id: traj::TrajectoryId(0),
            points: vec![
                traj::GpsPoint {
                    pos: rnet::Point::new(1e8, 1e8),
                    t: 0.0,
                },
                traj::GpsPoint {
                    pos: rnet::Point::new(1e8 + 30.0, 1e8),
                    t: 3.0,
                },
            ],
        }];
        train_from_gps(&net, &raw, MatchConfig::default(), &Rl4oasdConfig::tiny(23));
    }
}
