//! Toast-style road-segment representation pre-training (paper §IV-C TCF).
//!
//! The paper initialises RSRNet's embedding layer with vectors from
//! Toast \[36\], a road-network representation model whose training signal —
//! as consumed by RL4OASD — is (a) co-traversal semantics from trajectory
//! corpora and (b) traffic-context features (driving speed, road type).
//! This module reproduces that combination with:
//!
//! * **skip-gram with negative sampling** over map-matched trajectories
//!   (segments = tokens, trajectories = sentences), capturing "segments
//!   travelled together embed together";
//! * a fixed **traffic-context feature block** appended to each learned
//!   vector: normalised speed limit, length, road-class one-hot, in/out
//!   degree and log travel popularity.
//!
//! Output vectors have dimension `embed_dim` = skip-gram dim + 8 and
//! initialise [`nn::Embedding`] (they remain trainable afterwards, as in
//! the paper).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnet::RoadNetwork;
use traj::Dataset;

/// Number of appended traffic-context features.
pub const TRAFFIC_FEATURES: usize = 8;

/// Configuration for the skip-gram pre-training.
#[derive(Debug, Clone, PartialEq)]
pub struct ToastConfig {
    /// Total output dimension (must exceed [`TRAFFIC_FEATURES`]).
    pub embed_dim: usize,
    /// Skip-gram context window (positions on each side).
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Epochs over the trajectory corpus.
    pub epochs: usize,
    /// Initial SGD learning rate (linearly decayed).
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ToastConfig {
    fn default() -> Self {
        ToastConfig {
            embed_dim: 64,
            window: 2,
            negatives: 3,
            epochs: 3,
            lr: 0.025,
            seed: 0x70A5,
        }
    }
}

/// Trains Toast-style vectors; returns a row-major `vocab × embed_dim`
/// matrix, where `vocab = net.num_segments()`.
///
/// # Panics
/// Panics if `embed_dim <= TRAFFIC_FEATURES`.
pub fn train_embeddings(net: &RoadNetwork, data: &Dataset, cfg: &ToastConfig) -> Vec<f32> {
    assert!(
        cfg.embed_dim > TRAFFIC_FEATURES,
        "embed_dim must exceed the {TRAFFIC_FEATURES} traffic features"
    );
    let vocab = net.num_segments();
    let sg_dim = cfg.embed_dim - TRAFFIC_FEATURES;
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Input and output (context) vectors, uniform small init.
    let mut w_in: Vec<f32> = (0..vocab * sg_dim)
        .map(|_| rng.gen_range(-0.5f32..0.5) / sg_dim as f32)
        .collect();
    let mut w_out: Vec<f32> = vec![0.0; vocab * sg_dim];

    // Popularity (travel counts) for features and negative sampling.
    let mut counts = vec![0u32; vocab];
    for t in &data.trajectories {
        for &s in &t.segments {
            counts[s.idx()] += 1;
        }
    }

    let total_pairs: usize = data
        .trajectories
        .iter()
        .map(|t| t.len() * 2 * cfg.window)
        .sum::<usize>()
        .max(1)
        * cfg.epochs;
    let mut seen_pairs = 0usize;

    let mut grad_in = vec![0.0f32; sg_dim];
    for _ in 0..cfg.epochs {
        for t in &data.trajectories {
            let segs = &t.segments;
            for (i, &center) in segs.iter().enumerate() {
                let lo = i.saturating_sub(cfg.window);
                let hi = (i + cfg.window).min(segs.len() - 1);
                #[allow(clippy::needless_range_loop)]
                for j in lo..=hi {
                    if j == i {
                        continue;
                    }
                    seen_pairs += 1;
                    let lr = cfg.lr * (1.0 - seen_pairs as f32 / total_pairs as f32).max(0.05);
                    let ctx = segs[j];
                    grad_in.iter_mut().for_each(|g| *g = 0.0);
                    // positive pair
                    sgns_update(
                        &w_in,
                        &mut w_out,
                        sg_dim,
                        center.idx(),
                        ctx.idx(),
                        1.0,
                        lr,
                        &mut grad_in,
                    );
                    // negatives
                    for _ in 0..cfg.negatives {
                        let neg = rng.gen_range(0..vocab);
                        if neg == ctx.idx() {
                            continue;
                        }
                        sgns_update(
                            &w_in,
                            &mut w_out,
                            sg_dim,
                            center.idx(),
                            neg,
                            0.0,
                            lr,
                            &mut grad_in,
                        );
                    }
                    let row = &mut w_in[center.idx() * sg_dim..(center.idx() + 1) * sg_dim];
                    for (w, g) in row.iter_mut().zip(&grad_in) {
                        *w -= lr * g;
                    }
                }
            }
        }
    }

    // Assemble output: [skip-gram | traffic features].
    let max_count = counts.iter().copied().max().unwrap_or(1).max(1) as f32;
    let mut out = vec![0.0f32; vocab * cfg.embed_dim];
    for (v, seg) in net.segments().iter().enumerate() {
        let dst = &mut out[v * cfg.embed_dim..(v + 1) * cfg.embed_dim];
        dst[..sg_dim].copy_from_slice(&w_in[v * sg_dim..(v + 1) * sg_dim]);
        let f = &mut dst[sg_dim..];
        f[0] = (seg.speed_limit / 20.0) as f32;
        f[1] = (seg.length / 300.0) as f32;
        f[2 + seg.class.code()] = 1.0; // one-hot over 3 classes
        f[5] = net.in_degree(seg.id) as f32 / 4.0;
        f[6] = net.out_degree(seg.id) as f32 / 4.0;
        f[7] = ((1.0 + counts[v] as f32).ln()) / (1.0 + max_count).ln();
    }
    out
}

/// One SGNS step for pair `(center, ctx)` with label 1 (positive) or 0
/// (negative): updates the output vector immediately, accumulates the
/// input-vector gradient into `grad_in` (applied once per positive+negatives
/// block by the caller).
#[allow(clippy::too_many_arguments)]
fn sgns_update(
    w_in: &[f32],
    w_out: &mut [f32],
    dim: usize,
    center: usize,
    ctx: usize,
    label: f32,
    lr: f32,
    grad_in: &mut [f32],
) {
    let vi = &w_in[center * dim..(center + 1) * dim];
    let vo = &mut w_out[ctx * dim..(ctx + 1) * dim];
    let score: f32 = vi.iter().zip(vo.iter()).map(|(a, b)| a * b).sum();
    let pred = 1.0 / (1.0 + (-score).exp());
    let err = pred - label; // d loss / d score
    for k in 0..dim {
        grad_in[k] += err * vo[k];
        vo[k] -= lr * err * vi[k];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::ops::cosine;
    use rnet::{CityBuilder, CityConfig};
    use traj::{TrafficConfig, TrafficSimulator};

    fn corpus(seed: u64) -> (RoadNetwork, Dataset) {
        let net = CityBuilder::new(CityConfig::tiny(seed)).build();
        let cfg = TrafficConfig {
            num_sd_pairs: 4,
            trajs_per_pair: (40, 60),
            ..TrafficConfig::tiny(seed)
        };
        let data = TrafficSimulator::new(&net, cfg).generate();
        (net, Dataset::from_generated(&data))
    }

    #[test]
    fn output_shape_and_finite() {
        let (net, ds) = corpus(1);
        let cfg = ToastConfig {
            embed_dim: 24,
            epochs: 1,
            ..Default::default()
        };
        let vecs = train_embeddings(&net, &ds, &cfg);
        assert_eq!(vecs.len(), net.num_segments() * 24);
        assert!(vecs.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn cotravelled_segments_embed_closer() {
        let (net, ds) = corpus(2);
        let cfg = ToastConfig {
            embed_dim: 24,
            epochs: 4,
            ..Default::default()
        };
        let vecs = train_embeddings(&net, &ds, &cfg);
        let sg = 24 - TRAFFIC_FEATURES;
        let vec_of = |s: usize| &vecs[s * 24..s * 24 + sg];
        // Average similarity of adjacent pairs within trajectories vs
        // random pairs: co-travelled must be higher.
        let mut adj_sim = 0.0;
        let mut adj_n = 0;
        for t in ds.trajectories.iter().take(50) {
            for w in t.segments.windows(2) {
                adj_sim += cosine(vec_of(w[0].idx()), vec_of(w[1].idx()));
                adj_n += 1;
            }
        }
        adj_sim /= adj_n as f32;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut rnd_sim = 0.0;
        for _ in 0..500 {
            let a = rng.gen_range(0..net.num_segments());
            let b = rng.gen_range(0..net.num_segments());
            rnd_sim += cosine(vec_of(a), vec_of(b));
        }
        rnd_sim /= 500.0;
        assert!(
            adj_sim > rnd_sim + 0.1,
            "adjacent {adj_sim} vs random {rnd_sim}"
        );
    }

    #[test]
    fn traffic_features_populated() {
        let (net, ds) = corpus(4);
        let cfg = ToastConfig {
            embed_dim: 16,
            epochs: 1,
            ..Default::default()
        };
        let vecs = train_embeddings(&net, &ds, &cfg);
        let sg = 16 - TRAFFIC_FEATURES;
        for (v, seg) in net.segments().iter().enumerate().take(50) {
            let f = &vecs[v * 16 + sg..(v + 1) * 16];
            // speed feature positive, one-hot class set
            assert!(f[0] > 0.0);
            assert_eq!(f[2 + seg.class.code()], 1.0);
            let onehot_sum: f32 = f[2..5].iter().sum();
            assert_eq!(onehot_sum, 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "embed_dim")]
    fn embed_dim_must_exceed_features() {
        let (net, ds) = corpus(5);
        train_embeddings(
            &net,
            &ds,
            &ToastConfig {
                embed_dim: 8,
                ..Default::default()
            },
        );
    }

    #[test]
    fn deterministic() {
        let (net, ds) = corpus(6);
        let cfg = ToastConfig {
            embed_dim: 16,
            epochs: 1,
            ..Default::default()
        };
        let a = train_embeddings(&net, &ds, &cfg);
        let b = train_embeddings(&net, &ds, &cfg);
        assert_eq!(a, b);
    }
}
