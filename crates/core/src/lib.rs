//! RL4OASD: Online Anomalous Subtrajectory Detection on Road Networks with
//! Deep Reinforcement Learning (ICDE 2023) — from-scratch reproduction.
//!
//! The system has three components (paper Fig. 2):
//!
//! 1. **Data preprocessing** ([`preprocess`]): map-matched trajectories are
//!    grouped by SD pair and one-hour time slot; per-transition travel
//!    fractions yield *noisy labels* (threshold α) and per-route fractions
//!    yield *normal-route features* (threshold δ).
//! 2. **RSRNet** ([`rsrnet`]): an LSTM over traffic-context features
//!    (road-segment embeddings pre-trained by a Toast-style skip-gram,
//!    [`toast`]) concatenated with embedded normal-route features produces
//!    a representation `z_i` per road segment, trained with cross-entropy
//!    against noisy (later: refined) labels.
//! 3. **ASDNet** ([`asdnet`]): labelling road segments is a Markov decision
//!    process; a policy network over states `s_i = [z_i ; v(label_{i-1})]`
//!    is trained with REINFORCE, rewarding label continuity (local reward,
//!    cosine similarity of consecutive `z`) and refined-label quality
//!    (global reward, `1/(1+L)` of the RSRNet loss).
//!
//! The networks are trained iteratively without any manual labels
//! ([`train()`]), and the resulting [`detector::Rl4oasdDetector`] labels
//! ongoing trajectories online (Algorithm 1) with the Road Network Enhanced
//! Labeling and Delayed Labeling enhancements. Online learning handles
//! concept drift ([`train::OnlineLearner`]); [`ablation`] builds the
//! paper's Table IV variants.
//!
//! The serving stack on top — [`engine::StreamEngine`] →
//! [`sharded::ShardedEngine`] → [`ingest::IngestEngine`], with zero-downtime
//! model hot-swap via [`engine::StreamEngine::swap_model`] /
//! [`ingest::SwapModel`] — is documented layer by layer, with its
//! bit-identity invariants and the tests enforcing each, in
//! `docs/ARCHITECTURE.md` at the repository root.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod ablation;
pub mod asdnet;
pub mod config;
pub mod detector;
pub mod engine;
pub mod ingest;
pub mod packed;
pub mod pipeline;
pub mod preprocess;
pub mod rsrnet;
pub mod sharded;
pub mod toast;
pub mod train;

pub use config::Rl4oasdConfig;
pub use detector::Rl4oasdDetector;
pub use engine::{EngineStats, EpochStats, HibernationConfig, StreamEngine};
pub use ingest::{IngestEngine, IngestReport, SwapModel};
pub use packed::PackedModel;
pub use pipeline::{load_model, save_model, train_from_gps, PipelineResult};
pub use preprocess::{GroupStats, Preprocessor};
pub use sharded::ShardedEngine;
pub use train::{train, train_with_dev, train_with_stats, OnlineLearner, TrainedModel};
