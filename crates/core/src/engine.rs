//! Fleet-scale serving: multiplex thousands of concurrent trajectory
//! sessions over one shared, immutable trained model.
//!
//! The paper's motivating scenario is an operator watching *many* ongoing
//! trips at once. [`StreamEngine`] is that serving layer for RL4OASD:
//!
//! * **shared state** — `Arc<TrainedModel>` + `Arc<RoadNetwork>`, never
//!   mutated while serving (cheap to share across engines or threads).
//!   Model ownership is **per-session**, organised in *epochs*: every
//!   session is pinned at `open` to the engine's current model epoch, and
//!   [`StreamEngine::swap_model`] installs a new epoch for *future* opens
//!   without touching the sessions already running — their label streams
//!   stay self-consistent on the weights they started with, and an old
//!   epoch's `Arc<TrainedModel>` is released the moment its last session
//!   closes (live-session refcounts per epoch; see `tests/hotswap.rs`);
//! * **per-session state** — a compact crate-private `SessionState`: the
//!   LSTM stream
//!   vectors, previous segment/label and the provisional label buffer,
//!   plus the session's model-epoch id; opening a session allocates two
//!   `hidden_dim` vectors and nothing else;
//! * **batched ticks** — [`StreamEngine::observe_batch`] advances every
//!   session that received a point in the same tick through *one* LSTM
//!   matrix pass (`RsrNet::stream_step_batch`) and one policy-head pass,
//!   instead of N scalar passes. The batched kernels use the exact
//!   accumulation order of the scalar path, so labels are **bit-identical**
//!   to driving each trajectory alone through
//!   [`Rl4oasdDetector`](crate::Rl4oasdDetector) — interleaving never
//!   changes results (property-tested in `tests/engine.rs`).
//!
//! The engine implements [`traj::SessionEngine`]; wrap it in
//! [`traj::SingleSession`] to recover the per-trajectory
//! [`traj::OnlineDetector`] view.

use crate::detector::{DecisionCounters, ModelView, Pending, SessionState, StepScratch};
use crate::rsrnet::RsrBatch;
use crate::train::TrainedModel;
use obs::{names, Counter, Gauge, Obs, OpsEvent, Span, Stage, StageHandle};
use rnet::{RoadNetwork, SegmentId};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use traj::{Hibernate, SdPair, SessionEngine, SessionId, SessionSlab, SupervisedEngine};

/// Serving statistics (cumulative counters since construction, plus
/// point-in-time memory-tier gauges sampled at [`StreamEngine::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Sessions opened.
    pub sessions_opened: u64,
    /// Sessions closed.
    pub sessions_closed: u64,
    /// Total `observe` events processed (scalar and batched).
    pub observe_events: u64,
    /// Events advanced through the batched nn pass.
    pub batched_events: u64,
    /// Batched rounds executed (each is one LSTM matrix pass).
    pub batched_rounds: u64,
    /// Events advanced through the scalar path (single-session ticks).
    pub scalar_events: u64,
    /// Model hot-swaps applied ([`StreamEngine::swap_model`]). Sharded and
    /// ingest engines broadcast one swap per shard, so their aggregated
    /// count is `shards × swaps`.
    pub model_swaps: u64,
    /// Sessions frozen into the cold tier (cumulative; a session
    /// hibernating twice counts twice).
    pub sessions_hibernated: u64,
    /// Sessions rehydrated from the cold tier (cumulative).
    pub sessions_rehydrated: u64,
    /// Gauge: open sessions currently resident (hot tier).
    pub resident_sessions: u64,
    /// Gauge: open sessions currently hibernated (cold tier).
    pub frozen_sessions: u64,
    /// Gauge: estimated bytes of the hot tier — per-session entry + heap
    /// (stream vectors, label buffers) plus the slot-map overhead.
    pub resident_bytes: u64,
    /// Gauge: payload bytes of all frozen sessions (the per-session
    /// cold-tier cost; divide by [`EngineStats::frozen_sessions`]).
    pub frozen_bytes: u64,
    /// Gauge: total allocated cold-tier footprint (arena chunks + entry
    /// table), ≥ [`EngineStats::frozen_bytes`].
    pub frozen_footprint_bytes: u64,
}

impl std::ops::AddAssign for EngineStats {
    fn add_assign(&mut self, rhs: Self) {
        // Exhaustive destructuring: adding a field to EngineStats without
        // aggregating it here must fail to compile, not silently report 0
        // in sharded totals. Gauges sum to fleet-wide totals.
        let EngineStats {
            sessions_opened,
            sessions_closed,
            observe_events,
            batched_events,
            batched_rounds,
            scalar_events,
            model_swaps,
            sessions_hibernated,
            sessions_rehydrated,
            resident_sessions,
            frozen_sessions,
            resident_bytes,
            frozen_bytes,
            frozen_footprint_bytes,
        } = rhs;
        self.sessions_opened += sessions_opened;
        self.sessions_closed += sessions_closed;
        self.observe_events += observe_events;
        self.batched_events += batched_events;
        self.batched_rounds += batched_rounds;
        self.scalar_events += scalar_events;
        self.model_swaps += model_swaps;
        self.sessions_hibernated += sessions_hibernated;
        self.sessions_rehydrated += sessions_rehydrated;
        self.resident_sessions += resident_sessions;
        self.frozen_sessions += frozen_sessions;
        self.resident_bytes += resident_bytes;
        self.frozen_bytes += frozen_bytes;
        self.frozen_footprint_bytes += frozen_footprint_bytes;
    }
}

/// Per-model-epoch serving counters, indexed by **swap sequence number**:
/// entry 0 is the model the engine was built with, entry `k` the model
/// installed by the `k`-th [`StreamEngine::swap_model`]. Entries persist
/// after their epoch retires, so post-hoc slicing (e.g. the memory bench)
/// sees every epoch that ever served.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// Labels decided under this epoch (one per observed segment).
    pub decisions: u64,
    /// Anomalous (label 1) decisions under this epoch.
    pub alerts: u64,
}

impl std::ops::AddAssign for EpochStats {
    fn add_assign(&mut self, rhs: Self) {
        let EpochStats { decisions, alerts } = rhs;
        self.decisions += decisions;
        self.alerts += alerts;
    }
}

/// Idle-session hibernation policy of a [`StreamEngine`]. TTLs are in
/// engine **ticks** (one `observe_batch` call, or one standalone scalar
/// `observe`) — never wall clock, so the hot path stays clock-free and
/// runs are reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HibernationConfig {
    /// Freeze a session once at least this many ticks passed since its
    /// last event. `0` freezes every hot session at every sweep (the
    /// adversarial schedule of the equivalence property test).
    pub idle_ticks: u64,
    /// Run the idle sweep every this many ticks (clamped to ≥ 1).
    /// Sweeps also run at every ingest flush boundary via
    /// [`traj::SessionEngine::maintain`].
    pub sweep_every: u64,
}

impl Default for HibernationConfig {
    fn default() -> Self {
        HibernationConfig {
            idle_ticks: 64,
            sweep_every: 16,
        }
    }
}

impl HibernationConfig {
    /// The adversarial schedule: every hot session is frozen at every
    /// tick boundary (and thawed again on its next event). Maximises
    /// freeze/thaw churn; labels must still be byte-identical to a
    /// never-hibernated engine.
    pub fn freeze_every_tick() -> Self {
        HibernationConfig {
            idle_ticks: 0,
            sweep_every: 1,
        }
    }
}

impl std::iter::Sum for EngineStats {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(EngineStats::default(), |mut acc, s| {
            acc += s;
            acc
        })
    }
}

/// Reusable per-tick buffers so a warm engine allocates almost nothing.
#[derive(Default)]
struct TickScratch {
    rsr: RsrBatch,
    /// Scalar-path step buffers (single-session `observe` ticks).
    step: StepScratch,
    inputs: Vec<(SegmentId, u8)>,
    /// Flat `batch × z_dim` representations of the current round.
    zs: Vec<f32>,
    head_in: Vec<f32>,
    head_out: Vec<f32>,
    policy_lanes: Vec<usize>,
    round: Vec<u32>,
    deferred: Vec<u32>,
    remaining: Vec<u32>,
    seen: HashSet<SessionId>,
    /// Sessions moved out of the slab for the current round. The per-round
    /// `Vec<&mut RsrStream>` of phase 2 cannot live here (it borrows into
    /// these lanes), so that one small pointer array remains the only
    /// per-round allocation.
    lanes: Vec<(u32, SegmentId, SessionState, Pending)>,
    /// Session ids collected by the idle sweep (reused across sweeps).
    sweep: Vec<SessionId>,
}

/// One model generation an engine is (or was) serving: the shared weights
/// plus how many open sessions still run on them. Retired (dropped) as
/// soon as it is no longer current *and* its last session closed — the
/// engine never pins more `Arc<TrainedModel>`s than it has live
/// generations.
struct ModelEpoch {
    model: Arc<TrainedModel>,
    live_sessions: u32,
    /// Swap sequence number: index of this epoch's row in
    /// `StreamEngine::epoch_log`. Epoch *slots* are reused across swaps;
    /// `seq` is monotone and never reused.
    seq: u32,
}

/// Pre-resolved telemetry handles for one engine (= one shard). Built
/// once by [`StreamEngine::set_obs`], so serving never takes the registry
/// mutex — gauge mirroring and span recording go straight to relaxed
/// atomics. Engines without telemetry store `None` and pay one branch.
struct EngineObs {
    obs: Obs,
    shard: u32,
    shard_label: String,
    sweep: StageHandle,
    swap: StageHandle,
    hot_sessions: Gauge,
    frozen_sessions: Gauge,
    arena_bytes: Gauge,
    decisions: Counter,
    alerts: Counter,
    swaps: Counter,
    /// Arena compaction count at the last mirror; a higher value now
    /// means the cold tier compacted since (one `ArenaCompaction` event
    /// per observed step).
    last_compactions: u64,
}

impl EngineObs {
    fn resolve(obs: &Obs, shard: usize) -> Self {
        let shard_label = shard.to_string();
        let labels: &[(&str, &str)] = &[("shard", &shard_label)];
        EngineObs {
            obs: obs.clone(),
            shard: shard as u32,
            sweep: obs.stage(Stage::HibernateSweep, shard as u32),
            swap: obs.stage(Stage::SwapApply, shard as u32),
            hot_sessions: obs.gauge(
                names::ENGINE_SESSIONS,
                &[("shard", &shard_label), ("tier", "hot")],
            ),
            frozen_sessions: obs.gauge(
                names::ENGINE_SESSIONS,
                &[("shard", &shard_label), ("tier", "frozen")],
            ),
            arena_bytes: obs.gauge(names::ENGINE_ARENA_BYTES, labels),
            decisions: obs.counter(names::ENGINE_DECISIONS, labels),
            alerts: obs.counter(names::ENGINE_ALERTS, labels),
            swaps: obs.counter(names::ENGINE_SWAPS, labels),
            last_compactions: 0,
            shard_label,
        }
    }

    /// Resolves the per-epoch live-session gauge for swap sequence `seq`.
    /// Takes the registry mutex, so callers keep this off the per-flush
    /// path (epochs appear at swaps and disappear at retirement — rare).
    fn epoch_gauge(&self, seq: u32) -> Gauge {
        let seq = seq.to_string();
        self.obs.gauge(
            names::EPOCH_SESSIONS,
            &[("shard", &self.shard_label), ("epoch", &seq)],
        )
    }
}

/// One open session: the algorithmic state plus the id of the model epoch
/// it was opened under (and will run on until it closes).
struct SessionEntry {
    epoch: u32,
    /// Engine tick of this session's last event (or open/rehydration);
    /// the idle sweep freezes sessions whose `last_tick` is old enough.
    last_tick: u64,
    state: SessionState,
}

/// A multiplexing detection engine: one shared model, thousands of cheap
/// concurrent sessions, batched nn steps per tick, and zero-downtime model
/// hot-swap ([`StreamEngine::swap_model`]) with per-session model epochs.
pub struct StreamEngine {
    /// Model epochs by id; retired entries are `None` (slots are reused by
    /// later swaps, so the vec stays as short as the number of epochs that
    /// ever ran concurrently — typically 1 or 2).
    epochs: Vec<Option<ModelEpoch>>,
    /// Epoch id new sessions are opened under.
    current: u32,
    /// Scoped model registry: scope (tenant) id → epoch id. Sessions
    /// opened via [`SessionEngine::open_scoped`] with a mapped scope pin
    /// that scope's epoch instead of `current`; unmapped scopes (and
    /// scope 0 by convention) fall back to `current`. A mapped epoch is
    /// pinned — never retired — even with zero live sessions, since the
    /// scope needs it for future opens.
    scopes: HashMap<u32, u32>,
    net: Arc<RoadNetwork>,
    sessions: SessionSlab<SessionEntry>,
    counters: DecisionCounters,
    stats: EngineStats,
    scratch: TickScratch,
    /// Idle-session hibernation policy; `None` keeps every session hot.
    hibernation: Option<HibernationConfig>,
    /// Engine tick counter: one per `observe_batch` call and one per
    /// standalone scalar `observe`. The clock of the idle-TTL sweep.
    tick: u64,
    /// Per-epoch serving counters by swap sequence number (grows by one
    /// per swap, entries are never removed).
    epoch_log: Vec<EpochStats>,
    /// Pre-resolved telemetry handles; `None` (the default) keeps the
    /// serving path telemetry-free. See [`StreamEngine::set_obs`].
    obs: Option<EngineObs>,
}

impl StreamEngine {
    /// Builds an engine over a shared trained model and road network.
    pub fn new(model: Arc<TrainedModel>, net: Arc<RoadNetwork>) -> Self {
        StreamEngine {
            epochs: vec![Some(ModelEpoch {
                model,
                live_sessions: 0,
                seq: 0,
            })],
            current: 0,
            scopes: HashMap::new(),
            net,
            sessions: SessionSlab::new(),
            counters: DecisionCounters::default(),
            stats: EngineStats::default(),
            scratch: TickScratch::default(),
            hibernation: None,
            tick: 0,
            epoch_log: vec![EpochStats::default()],
            obs: None,
        }
    }

    /// Builder form of [`StreamEngine::set_obs`].
    pub fn with_obs(mut self, obs: &Obs, shard: usize) -> Self {
        self.set_obs(obs, shard);
        self
    }

    /// Wires telemetry: resolves this engine's counter/gauge/stage
    /// handles from `obs` under the shard label `shard`. Passing a
    /// disabled handle clears the wiring, restoring the zero-cost
    /// default. Labels are never affected either way (property-tested in
    /// `tests/obs.rs`).
    pub fn set_obs(&mut self, obs: &Obs, shard: usize) {
        self.obs = obs.enabled().then(|| EngineObs::resolve(obs, shard));
    }

    /// Builder form of [`StreamEngine::set_hibernation`].
    pub fn with_hibernation(mut self, cfg: HibernationConfig) -> Self {
        self.set_hibernation(Some(cfg));
        self
    }

    /// Enables (or, with `None`, disables) idle-session hibernation.
    /// Disabling stops future sweeps; already-frozen sessions stay cold
    /// and thaw lazily on their next event or close.
    pub fn set_hibernation(&mut self, cfg: Option<HibernationConfig>) {
        self.hibernation = cfg;
    }

    /// The active hibernation policy, if any.
    pub fn hibernation(&self) -> Option<HibernationConfig> {
        self.hibernation
    }

    /// The model new sessions are currently opened under (sessions opened
    /// before the last [`StreamEngine::swap_model`] may still be running
    /// on an older one).
    pub fn model(&self) -> &Arc<TrainedModel> {
        &self.epoch(self.current).model
    }

    /// Installs `model` as the serving model for every session opened from
    /// now on. Zero-downtime by construction: sessions already open keep
    /// the `Arc` of the model they started with (their label streams stay
    /// self-consistent — no event is dropped, reordered or relabelled),
    /// and that old model is freed when its last session closes. The swap
    /// itself touches no session state, so it is safe at any point between
    /// ticks; under the async front door it is applied at a flush boundary
    /// (see `SwapModel::swap_model`).
    ///
    /// Swapping while the *current* epoch has no open sessions retires it
    /// immediately.
    pub fn swap_model(&mut self, model: Arc<TrainedModel>) {
        let span = match &self.obs {
            Some(o) => o.swap.start(),
            None => Span::none(),
        };
        let outgoing = self.current;
        let (id, seq) = self.install_epoch(model);
        self.current = id;
        let retired_seq = self.retire_if_idle(outgoing);
        self.stats.model_swaps += 1;
        if let Some(o) = &self.obs {
            o.swaps.set(self.stats.model_swaps);
            o.obs.event(OpsEvent::ModelSwapApplied {
                shard: o.shard,
                seq: u64::from(seq),
                retired: u64::from(retired_seq.is_some()),
            });
            o.swap.finish(span);
        }
    }

    /// Installs `model` as the serving model for **scope** (tenant)
    /// `scope`: sessions opened via [`SessionEngine::open_scoped`] with
    /// this scope id pin the new epoch; every other scope — and plain
    /// [`SessionEngine::open`], which serves scope 0 — is untouched. Like
    /// [`StreamEngine::swap_model`] this is zero-downtime: the scope's
    /// already-open sessions keep the model they started with, and the
    /// scope's previous epoch retires once its last session closes.
    pub fn set_scope_model(&mut self, scope: u32, model: Arc<TrainedModel>) {
        let (id, seq) = self.install_epoch(model);
        let prev = self.scopes.insert(scope, id);
        // The previous scope epoch is unpinned now; with no open
        // sessions it retires immediately, otherwise `release_epoch`
        // retires it when the last one closes.
        let retired = match prev {
            Some(prev) => self.retire_if_idle(prev).is_some(),
            None => false,
        };
        self.stats.model_swaps += 1;
        if let Some(o) = &self.obs {
            o.swaps.set(self.stats.model_swaps);
            o.obs.event(OpsEvent::ModelSwapApplied {
                shard: o.shard,
                seq: u64::from(seq),
                retired: u64::from(retired),
            });
        }
    }

    /// The swap sequence number of the epoch that a
    /// [`SessionEngine::open_scoped`] for `scope` would pin right now
    /// (the scope's mapped epoch, falling back to the engine-wide
    /// current one). Serving tiers report this to clients so a tenant
    /// can tell which model generation labelled its stream.
    pub fn scope_epoch_seq(&self, scope: u32) -> u32 {
        let id = self.scopes.get(&scope).copied().unwrap_or(self.current);
        self.epoch(id).seq
    }

    /// Allocates a fresh epoch (slot + swap sequence number) for `model`
    /// without re-pointing anything at it — the shared tail of
    /// [`StreamEngine::swap_model`] and [`StreamEngine::set_scope_model`].
    fn install_epoch(&mut self, model: Arc<TrainedModel>) -> (u32, u32) {
        let seq = u32::try_from(self.epoch_log.len()).expect("more than 2^32 model swaps");
        self.epoch_log.push(EpochStats::default());
        let epoch = ModelEpoch {
            model,
            live_sessions: 0,
            seq,
        };
        let id = match self.epochs.iter().position(Option::is_none) {
            Some(free) => {
                self.epochs[free] = Some(epoch);
                free
            }
            None => {
                self.epochs.push(Some(epoch));
                self.epochs.len() - 1
            }
        };
        let id = u32::try_from(id).expect("more than 2^32 live model epochs");
        (id, seq)
    }

    /// Opens a session pinned to epoch `id` — the shared tail of the
    /// trait `open` (current epoch) and `open_scoped` (scope-mapped
    /// epoch).
    fn open_on_epoch(&mut self, epoch: u32, sd: SdPair, start_time: f64) -> SessionId {
        let e = self.epochs[epoch as usize]
            .as_mut()
            .expect("opening epoch is always live");
        e.live_sessions += 1;
        let view = ModelView::of(&e.model, &self.net);
        let state = SessionState::open(&view, sd, start_time);
        self.stats.sessions_opened += 1;
        let last_tick = self.tick;
        self.sessions.insert(SessionEntry {
            epoch,
            last_tick,
            state,
        })
    }

    /// Retires epoch `id` — freeing its `Arc<TrainedModel>` — iff it has
    /// no live sessions and nothing pins it: neither the engine-wide
    /// `current` pointer nor any scope mapping. Returns the retired
    /// epoch's swap sequence number, or `None` if it stays live.
    fn retire_if_idle(&mut self, id: u32) -> Option<u32> {
        let pinned = id == self.current || self.scopes.values().any(|&e| e == id);
        let e = self.epochs[id as usize]
            .as_ref()
            .expect("model epoch retired while referenced");
        if pinned || e.live_sessions != 0 {
            return None;
        }
        let seq = e.seq;
        self.epochs[id as usize] = None;
        if let Some(o) = &self.obs {
            // Retirement is rare, so resolving the gauge (registry
            // lock) here is fine; zeroing it keeps the export from
            // showing sessions pinned to a model that is gone.
            o.epoch_gauge(seq).set(0);
            o.obs.event(OpsEvent::EpochRetired {
                shard: o.shard,
                seq: u64::from(seq),
            });
        }
        Some(seq)
    }

    /// Number of model generations currently alive in this engine: the
    /// serving model plus every older model kept alive by still-open
    /// pre-swap sessions. `1` when no swap is mid-drain.
    pub fn live_model_epochs(&self) -> usize {
        self.epochs.iter().filter(|e| e.is_some()).count()
    }

    fn epoch(&self, id: u32) -> &ModelEpoch {
        self.epochs[id as usize]
            .as_ref()
            .expect("model epoch retired while referenced")
    }

    /// Drops one session's claim on its epoch, retiring the epoch (and
    /// releasing its `Arc<TrainedModel>`) when it was the last session of
    /// a no-longer-current model.
    fn release_epoch(&mut self, id: u32) {
        let e = self.epochs[id as usize]
            .as_mut()
            .expect("model epoch retired while referenced");
        e.live_sessions -= 1;
        if e.live_sessions == 0 {
            self.retire_if_idle(id);
        }
    }

    /// The shared road network.
    pub fn network(&self) -> &Arc<RoadNetwork> {
        &self.net
    }

    /// Cumulative serving statistics, with memory-tier gauges sampled now:
    /// resident/frozen session counts and estimated bytes per tier.
    pub fn stats(&self) -> EngineStats {
        let mut stats = self.stats;
        stats.resident_sessions = self.sessions.resident_len() as u64;
        stats.frozen_sessions = self.sessions.frozen_len() as u64;
        let hot_heap: usize = self
            .sessions
            .iter_hot()
            .map(|(_, e)| std::mem::size_of::<SessionEntry>() + e.state.resident_heap_bytes())
            .sum();
        stats.resident_bytes = (hot_heap + self.sessions.slot_overhead_bytes()) as u64;
        stats.frozen_bytes = self.sessions.frozen_bytes() as u64;
        stats.frozen_footprint_bytes = self.sessions.frozen_footprint_bytes() as u64;
        if let Some(o) = &self.obs {
            // Full mirror: the cheap per-flush set, plus the per-epoch
            // live-session gauges (resolved on demand — epochs come and
            // go, and stats() is never on the flush path).
            self.mirror_cheap_gauges(o);
            for e in self.epochs.iter().flatten() {
                o.epoch_gauge(e.seq).set(u64::from(e.live_sessions));
            }
        }
        stats
    }

    /// Mirrors the O(1) serving gauges and cumulative counters into the
    /// telemetry registry through pre-resolved handles — no locks, no
    /// session walk, safe at every flush boundary.
    fn mirror_cheap_gauges(&self, o: &EngineObs) {
        o.hot_sessions.set(self.sessions.resident_len() as u64);
        o.frozen_sessions.set(self.sessions.frozen_len() as u64);
        o.arena_bytes
            .set(self.sessions.frozen_footprint_bytes() as u64);
        let (decisions, alerts) = self
            .epoch_log
            .iter()
            .fold((0, 0), |(d, a), e| (d + e.decisions, a + e.alerts));
        o.decisions.set(decisions);
        o.alerts.set(alerts);
        o.swaps.set(self.stats.model_swaps);
    }

    /// Flush-boundary telemetry hook: mirrors the cheap gauges and emits
    /// an [`OpsEvent::ArenaCompaction`] when the cold-tier arena
    /// compacted since the last mirror.
    fn mirror_obs(&mut self) {
        let compactions = self.sessions.compactions();
        if let Some(o) = &mut self.obs {
            if compactions > o.last_compactions {
                o.last_compactions = compactions;
                o.obs.event(OpsEvent::ArenaCompaction {
                    shard: o.shard,
                    compactions,
                });
            }
        }
        if let Some(o) = &self.obs {
            self.mirror_cheap_gauges(o);
        }
    }

    /// Per-epoch decision/alert counters by swap sequence number: entry 0
    /// is the construction model, entry `k` the model installed by the
    /// `k`-th [`StreamEngine::swap_model`]. Retired epochs keep their row.
    pub fn epoch_stats(&self) -> &[EpochStats] {
        &self.epoch_log
    }

    /// Freezes one hot session into the cold tier: its state is
    /// delta-encoded against its epoch's initial stream state and parked
    /// in the slab's frozen arena. The epoch id rides as a 4-byte prefix
    /// *outside* the blob, so the epoch's `live_sessions` pin is
    /// untouched — a frozen session keeps its pre-swap model alive
    /// exactly like a hot one (hot-swap drop-order is preserved).
    fn hibernate_session(&mut self, id: SessionId) {
        let epochs = &self.epochs;
        let net = &self.net;
        self.sessions.freeze_with(id, |entry, out| {
            out.extend_from_slice(&entry.epoch.to_le_bytes());
            let view = ModelView::of(
                &epochs[entry.epoch as usize]
                    .as_ref()
                    .expect("model epoch retired while referenced")
                    .model,
                net,
            );
            entry.state.freeze(&view, out);
        });
        self.stats.sessions_hibernated += 1;
    }

    /// Thaws one frozen session back into the hot tier (exact restore:
    /// the rebuilt state is byte-identical to the state that froze) and
    /// stamps it live at the current tick.
    fn rehydrate_session(&mut self, id: SessionId) {
        let epochs = &self.epochs;
        let net = &self.net;
        let tick = self.tick;
        self.sessions.thaw_with(id, |bytes| {
            let (head, rest) = bytes.split_at(4);
            let epoch = u32::from_le_bytes(head.try_into().expect("4-byte epoch prefix"));
            let view = ModelView::of(
                &epochs[epoch as usize]
                    .as_ref()
                    .expect("model epoch retired while referenced")
                    .model,
                net,
            );
            SessionEntry {
                epoch,
                last_tick: tick,
                state: SessionState::thaw(&view, rest),
            }
        });
        self.stats.sessions_rehydrated += 1;
    }

    /// Freezes every hot session idle for at least `idle_ticks`. No-op
    /// without a hibernation policy.
    fn sweep_idle(&mut self) {
        let Some(cfg) = self.hibernation else { return };
        let span = match &self.obs {
            Some(o) => o.sweep.start(),
            None => Span::none(),
        };
        let tick = self.tick;
        let mut sweep = std::mem::take(&mut self.scratch.sweep);
        sweep.clear();
        sweep.extend(
            self.sessions
                .iter_hot()
                .filter(|(_, e)| tick.saturating_sub(e.last_tick) >= cfg.idle_ticks)
                .map(|(id, _)| id),
        );
        for &id in &sweep {
            self.hibernate_session(id);
        }
        let swept = sweep.len() as u64;
        self.scratch.sweep = sweep;
        if let Some(o) = &self.obs {
            o.sweep.finish(span);
            if swept > 0 {
                o.obs.event(OpsEvent::SweepStats {
                    shard: o.shard,
                    tick,
                    swept,
                });
            }
        }
    }

    /// Advances the tick clock and runs the idle sweep on `sweep_every`
    /// boundaries. Called once per tick, *after* every event of the tick
    /// has been applied — never mid-batch, so a sweep can never freeze a
    /// session that still has deferred events in the current tick.
    fn end_tick(&mut self) {
        self.tick = self.tick.wrapping_add(1);
        if let Some(cfg) = self.hibernation {
            if self.tick.is_multiple_of(cfg.sweep_every.max(1)) {
                self.sweep_idle();
            }
        }
    }

    /// `(RNEL short-circuits, policy invocations)` since construction.
    pub fn decision_counts(&self) -> (usize, usize) {
        (self.counters.rnel_hits, self.counters.policy_calls)
    }

    /// One scalar event, without touching the tick clock or sweeping —
    /// the shared core of the trait `observe` and the single-event rounds
    /// of `observe_batch` (which must not sweep mid-batch).
    fn observe_scalar(&mut self, session: SessionId, segment: SegmentId) -> u8 {
        if self.sessions.is_frozen(session) {
            self.rehydrate_session(session);
        }
        let epoch = self.sessions.get(session).epoch;
        // Field-precise borrows: the view borrows `epochs` + `net` only,
        // leaving `sessions`/`counters`/`scratch` free for the step.
        let view = ModelView::of(
            &self.epochs[epoch as usize]
                .as_ref()
                .expect("model epoch retired while referenced")
                .model,
            &self.net,
        );
        let entry = self.sessions.get_mut(session);
        entry.last_tick = self.tick;
        let label = entry
            .state
            .observe(&view, segment, &mut self.counters, &mut self.scratch.step);
        self.stats.observe_events += 1;
        self.stats.scalar_events += 1;
        let seq = self.epoch(epoch).seq as usize;
        self.epoch_log[seq].decisions += 1;
        self.epoch_log[seq].alerts += u64::from(label != 0);
        label
    }

    /// Advances one round of events whose sessions are pairwise distinct
    /// and share the model epoch `epoch`, using the batched LSTM and
    /// policy-head kernels of that epoch's packed weights.
    fn observe_round(&mut self, events: &[(SessionId, SegmentId)], out: &mut [u8], epoch: u32) {
        let round = std::mem::take(&mut self.scratch.round);
        let batch = round.len();
        debug_assert!(batch > 1);
        let view = ModelView::of(
            &self.epochs[epoch as usize]
                .as_ref()
                .expect("model epoch retired while referenced")
                .model,
            &self.net,
        );

        // Phase 1: move the round's sessions out of the slab, resolve the
        // pre-nn plan (endpoint pinning, RNEL) and gather the nn inputs.
        let mut lanes = std::mem::take(&mut self.scratch.lanes);
        lanes.clear();
        self.scratch.inputs.clear();
        for &ei in &round {
            let (session, segment) = events[ei as usize];
            let entry = self.sessions.take(session);
            debug_assert_eq!(entry.epoch, epoch, "round mixes model epochs");
            let state = entry.state;
            let (nrf, is_endpoint) = state.pre_step(&view, segment);
            let pending = state.plan(&view, segment, is_endpoint, &mut self.counters);
            self.scratch.inputs.push((segment, nrf));
            lanes.push((ei, segment, state, pending));
        }

        // Phase 2: one batched LSTM pass (on the packed gate matrix)
        // advances every lane's stream.
        {
            let mut streams: Vec<&mut crate::rsrnet::RsrStream> = lanes
                .iter_mut()
                .map(|(_, _, state, _)| state.stream_mut())
                .collect();
            view.rsrnet.stream_step_batch_packed(
                &view.packed.lstm,
                &mut self.scratch.rsr,
                &self.scratch.inputs,
                &mut streams,
                &mut self.scratch.zs,
            );
        }

        // Phase 3: one batched head pass for the lanes whose label was not
        // fixed by endpoint pinning or RNEL.
        let z_dim = view.rsrnet.z_dim();
        self.scratch.policy_lanes.clear();
        self.scratch.policy_lanes.extend(
            lanes
                .iter()
                .enumerate()
                .filter(|(_, (_, _, _, pending))| *pending == Pending::Policy)
                .map(|(lane, _)| lane),
        );
        if !self.scratch.policy_lanes.is_empty() {
            self.scratch.head_in.clear();
            let head = if view.config.use_asdnet {
                for &lane in &self.scratch.policy_lanes {
                    let z = &self.scratch.zs[lane * z_dim..(lane + 1) * z_dim];
                    lanes[lane]
                        .2
                        .append_policy_state(&view, z, &mut self.scratch.head_in);
                }
                &view.packed.policy
            } else {
                for &lane in &self.scratch.policy_lanes {
                    self.scratch
                        .head_in
                        .extend_from_slice(&self.scratch.zs[lane * z_dim..(lane + 1) * z_dim]);
                }
                &view.packed.head
            };
            self.scratch.head_out.clear();
            self.scratch
                .head_out
                .resize(self.scratch.policy_lanes.len() * 2, 0.0);
            head.infer_batch(
                &self.scratch.head_in,
                self.scratch.policy_lanes.len(),
                &mut self.scratch.head_out,
            );
            for (k, &lane) in self.scratch.policy_lanes.iter().enumerate() {
                let logits = [
                    self.scratch.head_out[2 * k],
                    self.scratch.head_out[2 * k + 1],
                ];
                let label = if view.config.use_asdnet {
                    crate::asdnet::AsdNet::greedy_from_logits(logits)
                } else {
                    let p = crate::rsrnet::RsrNet::classify_from_logits(logits);
                    u8::from(p[1] > p[0])
                };
                lanes[lane].3 = Pending::Fixed(label);
            }
        }

        // Phase 4: commit labels and return the sessions to the slab.
        let mut alerts = 0u64;
        for (ei, segment, mut state, pending) in lanes.drain(..) {
            let (session, _) = events[ei as usize];
            let label = match pending {
                Pending::Fixed(label) => label,
                Pending::Policy => unreachable!("all policy lanes decided in phase 3"),
            };
            state.commit(segment, label);
            out[ei as usize] = label;
            alerts += u64::from(label != 0);
            self.sessions.restore(
                session,
                SessionEntry {
                    epoch,
                    last_tick: self.tick,
                    state,
                },
            );
        }

        self.stats.observe_events += batch as u64;
        self.stats.batched_events += batch as u64;
        self.stats.batched_rounds += 1;
        let seq = self.epoch(epoch).seq as usize;
        self.epoch_log[seq].decisions += batch as u64;
        self.epoch_log[seq].alerts += alerts;
        self.scratch.round = round;
        self.scratch.lanes = lanes;
    }
}

impl SessionEngine for StreamEngine {
    fn engine_name(&self) -> &'static str {
        "RL4OASD"
    }

    /// Poison pre-screen: a segment id at or beyond the road network's
    /// segment count would index out of range inside the embedding lookup
    /// (an `observe` panic, not a label). Rejecting it here lets the
    /// ingest supervisor quarantine the one offending session instead of
    /// crash-restarting the whole shard.
    fn admit(&self, segment: SegmentId) -> bool {
        segment.idx() < self.net.num_segments()
    }

    /// Opens a session pinned to the engine's **current** model epoch; a
    /// later [`StreamEngine::swap_model`] does not affect it.
    fn open(&mut self, sd: SdPair, start_time: f64) -> SessionId {
        let epoch = self.current;
        self.open_on_epoch(epoch, sd, start_time)
    }

    /// Opens a session pinned to `scope`'s mapped model epoch (see
    /// [`StreamEngine::set_scope_model`]); an unmapped scope — including
    /// scope 0, the default tenant — pins the engine-wide current epoch,
    /// making this identical to [`SessionEngine::open`].
    fn open_scoped(&mut self, scope: u32, sd: SdPair, start_time: f64) -> SessionId {
        let epoch = self.scopes.get(&scope).copied().unwrap_or(self.current);
        self.open_on_epoch(epoch, sd, start_time)
    }

    /// A standalone scalar event is one engine tick: frozen sessions thaw
    /// transparently on access, and the idle sweep may run afterwards.
    fn observe(&mut self, session: SessionId, segment: SegmentId) -> u8 {
        let label = self.observe_scalar(session, segment);
        self.end_tick();
        label
    }

    /// Batched tick: every session that received a point this tick advances
    /// through one LSTM matrix pass (and one head pass) instead of N scalar
    /// passes. Sessions appearing multiple times in `events` are applied in
    /// order across successive sub-rounds. After a hot-swap, sessions on
    /// different model epochs may share a tick; each round runs sessions of
    /// one epoch (one set of packed weights), deferring the rest — the
    /// batched kernels stay bit-identical to the scalar path per epoch, so
    /// mixing epochs in a tick never changes labels.
    fn observe_batch(&mut self, events: &[(SessionId, SegmentId)], out: &mut Vec<u8>) {
        out.clear();
        out.resize(events.len(), 0);
        // Thaw prepass: every frozen session with an event this tick comes
        // back hot before round selection reads its epoch. Gated on the
        // cold tier being non-empty so the hibernation-off path pays one
        // counter read per batch, not a per-event branch.
        if self.sessions.frozen_len() > 0 {
            for &(session, _) in events {
                if self.sessions.is_frozen(session) {
                    self.rehydrate_session(session);
                }
            }
        }
        let mut remaining = std::mem::take(&mut self.scratch.remaining);
        remaining.clear();
        remaining.extend(0..events.len() as u32);
        let mut seen = std::mem::take(&mut self.scratch.seen);
        while !remaining.is_empty() {
            // Select a round in which each session appears at most once and
            // every session shares the first event's model epoch; later
            // duplicates and other-epoch sessions are deferred to the next
            // round (per-session event order is preserved: once a session
            // is deferred, all its later events defer behind it).
            seen.clear();
            let mut round = std::mem::take(&mut self.scratch.round);
            let mut deferred = std::mem::take(&mut self.scratch.deferred);
            round.clear();
            deferred.clear();
            let mut round_epoch = self.current;
            for &ei in &remaining {
                let session = events[ei as usize].0;
                let epoch = self.sessions.get(session).epoch;
                if round.is_empty() {
                    round_epoch = epoch;
                }
                if epoch == round_epoch && seen.insert(session) {
                    round.push(ei);
                } else {
                    deferred.push(ei);
                }
            }
            if round.len() == 1 {
                let ei = round[0] as usize;
                let (session, segment) = events[ei];
                // observe_scalar, not observe: the whole batch is ONE tick,
                // and sweeping mid-batch could freeze a session that still
                // has deferred events in a later round.
                out[ei] = self.observe_scalar(session, segment);
                self.scratch.round = round;
            } else {
                self.scratch.round = round;
                self.observe_round(events, out, round_epoch);
            }
            std::mem::swap(&mut remaining, &mut deferred);
            self.scratch.deferred = deferred;
        }
        self.scratch.remaining = remaining;
        self.scratch.seen = seen;
        self.end_tick();
    }

    fn close(&mut self, session: SessionId) -> Vec<u8> {
        // A frozen session can be closed: thaw (exact restore) and finish.
        if self.sessions.is_frozen(session) {
            self.rehydrate_session(session);
        }
        let SessionEntry {
            epoch, mut state, ..
        } = self.sessions.remove(session);
        self.stats.sessions_closed += 1;
        let labels = {
            let view = ModelView::of(
                &self.epochs[epoch as usize]
                    .as_ref()
                    .expect("model epoch retired while referenced")
                    .model,
                &self.net,
            );
            state.finish(&view)
        };
        // Last pre-swap session of an old epoch gone => the old model's
        // `Arc` is released right here (property-tested in
        // `tests/hotswap.rs`).
        self.release_epoch(epoch);
        labels
    }

    fn active_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Flush-boundary hook: the async ingest workers call this after each
    /// flush (the same seam hot-swap control commands use), forcing one
    /// idle sweep under the configured policy. No-op when hibernation is
    /// disabled; never changes labels.
    fn maintain(&mut self) {
        self.sweep_idle();
        self.mirror_obs();
    }
}

/// Crash salvage for supervised ingest shards.
///
/// After a worker panic, the supervisor builds a **fresh** engine from
/// its factory and moves every survivable session across via these two
/// hooks. The wire format is the hibernation blob with one twist: the
/// 4-byte prefix is rewritten from the epoch *slot* id (reused across
/// swaps, meaningless in another engine) to the epoch's monotone swap
/// **sequence** number, which both engines agree on as long as they saw
/// the same swap history. `import_session` only accepts blobs whose
/// sequence matches the current epoch — sessions still pinned to an
/// older, drained epoch cannot be rebuilt against the wrong weights and
/// are quarantined by the supervisor instead of silently relabelled.
impl SupervisedEngine for StreamEngine {
    fn export_sessions(&mut self) -> Vec<(SessionId, Vec<u8>)> {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        // Freeze every hot session through the delta codec. The engine
        // just survived a panic, so any single session's state may be
        // torn — a freeze that panics forfeits only that session.
        let hot: Vec<SessionId> = self.sessions.iter_hot().map(|(id, _)| id).collect();
        for id in hot {
            let _ = catch_unwind(AssertUnwindSafe(|| self.hibernate_session(id)));
        }
        // Everything salvageable is now in the cold tier (including
        // sessions that were already hibernated before the crash).
        let frozen: Vec<SessionId> = self.sessions.frozen_ids().collect();
        let mut out = Vec::with_capacity(frozen.len());
        for id in frozen {
            let mut blob = self.sessions.take_frozen(id);
            if blob.len() < 4 {
                continue;
            }
            let slot = u32::from_le_bytes(blob[..4].try_into().expect("4-byte epoch prefix"));
            let Some(epoch) = self.epochs.get(slot as usize).and_then(Option::as_ref) else {
                continue;
            };
            blob[..4].copy_from_slice(&epoch.seq.to_le_bytes());
            out.push((id, blob));
        }
        out
    }

    fn import_session(&mut self, blob: &[u8]) -> Option<SessionId> {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        if blob.len() < 4 {
            return None;
        }
        let (head, rest) = blob.split_at(4);
        let seq = u32::from_le_bytes(head.try_into().ok()?);
        let current = self.current as usize;
        let state = {
            let e = self.epochs[current].as_ref()?;
            if e.seq != seq {
                return None;
            }
            let view = ModelView::of(&e.model, &self.net);
            catch_unwind(AssertUnwindSafe(|| SessionState::thaw(&view, rest))).ok()?
        };
        self.epochs[current]
            .as_mut()
            .expect("current model epoch is always live")
            .live_sessions += 1;
        self.stats.sessions_opened += 1;
        let last_tick = self.tick;
        Some(self.sessions.insert(SessionEntry {
            epoch: self.current,
            last_tick,
            state,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Rl4oasdConfig;
    use crate::detector::Rl4oasdDetector;
    use crate::train::train;
    use rnet::{CityBuilder, CityConfig};
    use traj::{Dataset, OnlineDetector, SingleSession, TrafficConfig, TrafficSimulator};

    fn setup(seed: u64) -> (Arc<RoadNetwork>, Dataset, Arc<TrainedModel>) {
        let net = CityBuilder::new(CityConfig::tiny(seed)).build();
        let cfg = TrafficConfig {
            num_sd_pairs: 4,
            trajs_per_pair: (40, 60),
            anomaly_ratio: 0.15,
            ..TrafficConfig::tiny(seed)
        };
        let data = TrafficSimulator::new(&net, cfg).generate();
        let ds = Dataset::from_generated(&data);
        let cfg = Rl4oasdConfig::tiny(seed);
        let model = train(&net, &ds, &cfg);
        (Arc::new(net), ds, Arc::new(model))
    }

    /// Sequential per-trajectory labels via the single-session detector.
    fn sequential_labels(
        model: &TrainedModel,
        net: &RoadNetwork,
        trajs: &[traj::MappedTrajectory],
    ) -> Vec<Vec<u8>> {
        let mut det = Rl4oasdDetector::new(model, net);
        trajs.iter().map(|t| det.label_trajectory(t)).collect()
    }

    #[test]
    fn interleaved_ticks_match_sequential_labels() {
        let (net, ds, model) = setup(21);
        let trajs: Vec<_> = ds.trajectories.iter().take(24).cloned().collect();
        let expected = sequential_labels(&model, &net, &trajs);

        let mut engine = StreamEngine::new(Arc::clone(&model), Arc::clone(&net));
        let handles: Vec<_> = trajs
            .iter()
            .map(|t| engine.open(t.sd_pair().unwrap(), t.start_time))
            .collect();
        assert_eq!(engine.active_sessions(), trajs.len());

        // Tick-synchronous interleaving: every still-active trip advances
        // one segment per tick through the batched path.
        let max_len = trajs.iter().map(|t| t.len()).max().unwrap();
        let mut out = Vec::new();
        for tick in 0..max_len {
            let events: Vec<_> = trajs
                .iter()
                .enumerate()
                .filter(|(_, t)| tick < t.len())
                .map(|(k, t)| (handles[k], t.segments[tick]))
                .collect();
            engine.observe_batch(&events, &mut out);
            assert_eq!(out.len(), events.len());
        }
        let got: Vec<Vec<u8>> = handles.iter().map(|&h| engine.close(h)).collect();
        assert_eq!(got, expected, "interleaving changed labels");
        assert_eq!(engine.active_sessions(), 0);

        let stats = engine.stats();
        assert!(stats.batched_rounds > 0, "batched path never used");
        assert!(stats.batched_events > stats.scalar_events);
        assert_eq!(
            stats.observe_events,
            trajs.iter().map(|t| t.len() as u64).sum::<u64>()
        );
    }

    #[test]
    fn scalar_observe_matches_sequential_labels() {
        let (net, ds, model) = setup(22);
        let trajs: Vec<_> = ds.trajectories.iter().take(8).cloned().collect();
        let expected = sequential_labels(&model, &net, &trajs);

        // Round-robin single observes across all sessions at once.
        let mut engine = StreamEngine::new(Arc::clone(&model), Arc::clone(&net));
        let handles: Vec<_> = trajs
            .iter()
            .map(|t| engine.open(t.sd_pair().unwrap(), t.start_time))
            .collect();
        let max_len = trajs.iter().map(|t| t.len()).max().unwrap();
        for tick in 0..max_len {
            for (k, t) in trajs.iter().enumerate() {
                if tick < t.len() {
                    engine.observe(handles[k], t.segments[tick]);
                }
            }
        }
        let got: Vec<Vec<u8>> = handles.iter().map(|&h| engine.close(h)).collect();
        assert_eq!(got, expected);
        assert_eq!(engine.stats().batched_rounds, 0);
    }

    #[test]
    fn repeated_sessions_within_one_tick_are_ordered() {
        let (net, ds, model) = setup(23);
        let t = ds.trajectories[0].clone();
        let expected = sequential_labels(&model, &net, std::slice::from_ref(&t));

        // Feed an entire trajectory as one observe_batch call (the same
        // session repeats); sub-rounds must preserve per-session order.
        let mut engine = StreamEngine::new(Arc::clone(&model), Arc::clone(&net));
        let h = engine.open(t.sd_pair().unwrap(), t.start_time);
        let events: Vec<_> = t.segments.iter().map(|&s| (h, s)).collect();
        let mut out = Vec::new();
        engine.observe_batch(&events, &mut out);
        assert_eq!(out.len(), t.len());
        assert_eq!(engine.close(h), expected[0]);
    }

    #[test]
    fn single_session_adapter_over_engine_matches_detector() {
        let (net, ds, model) = setup(24);
        let trajs: Vec<_> = ds.trajectories.iter().take(10).cloned().collect();
        let expected = sequential_labels(&model, &net, &trajs);
        let mut adapter =
            SingleSession::new(StreamEngine::new(Arc::clone(&model), Arc::clone(&net)));
        assert_eq!(adapter.name(), "RL4OASD");
        let got: Vec<Vec<u8>> = trajs.iter().map(|t| adapter.label_trajectory(t)).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn sessions_are_cheap_to_open_and_close() {
        let (net, _, model) = setup(25);
        let mut engine = StreamEngine::new(Arc::clone(&model), Arc::clone(&net));
        let sd = SdPair {
            source: SegmentId(0),
            dest: SegmentId(1),
        };
        let handles: Vec<_> = (0..5000).map(|i| engine.open(sd, i as f64)).collect();
        assert_eq!(engine.active_sessions(), 5000);
        for h in handles {
            assert!(engine.close(h).is_empty());
        }
        assert_eq!(engine.active_sessions(), 0);
        assert_eq!(engine.stats().sessions_closed, 5000);
    }

    #[test]
    fn swap_model_affects_only_sessions_opened_after() {
        let (net, ds, old) = setup(27);
        let new = {
            let cfg = Rl4oasdConfig::tiny(0xD1FF);
            Arc::new(train(
                &net,
                &Dataset::from_generated(
                    &TrafficSimulator::new(
                        &net,
                        TrafficConfig {
                            num_sd_pairs: 4,
                            trajs_per_pair: (40, 60),
                            anomaly_ratio: 0.15,
                            ..TrafficConfig::tiny(0xD1FF)
                        },
                    )
                    .generate(),
                ),
                &cfg,
            ))
        };
        let trajs: Vec<_> = ds.trajectories.iter().take(8).cloned().collect();
        let (before, after) = trajs.split_at(4);
        let expected_before = sequential_labels(&old, &net, before);
        let expected_after = sequential_labels(&new, &net, after);

        let mut engine = StreamEngine::new(Arc::clone(&old), Arc::clone(&net));
        let hb: Vec<_> = before
            .iter()
            .map(|t| engine.open(t.sd_pair().unwrap(), t.start_time))
            .collect();
        // Advance the pre-swap sessions partway, then swap mid-stream.
        let mut out = Vec::new();
        for tick in 0..2 {
            let events: Vec<_> = before
                .iter()
                .enumerate()
                .filter(|(_, t)| tick < t.len())
                .map(|(k, t)| (hb[k], t.segments[tick]))
                .collect();
            engine.observe_batch(&events, &mut out);
        }
        engine.swap_model(Arc::clone(&new));
        assert!(Arc::ptr_eq(engine.model(), &new));
        assert_eq!(
            engine.live_model_epochs(),
            2,
            "old epoch drains, new serves"
        );

        let ha: Vec<_> = after
            .iter()
            .map(|t| engine.open(t.sd_pair().unwrap(), t.start_time))
            .collect();
        // Mixed-epoch ticks: old-epoch and new-epoch sessions share
        // observe_batch calls; rounds split by epoch internally.
        let max_len = trajs.iter().map(|t| t.len()).max().unwrap();
        for tick in 0..max_len {
            let mut events = Vec::new();
            for (k, t) in before.iter().enumerate() {
                if tick >= 2 && tick < t.len() {
                    events.push((hb[k], t.segments[tick]));
                }
            }
            for (k, t) in after.iter().enumerate() {
                if tick < t.len() {
                    events.push((ha[k], t.segments[tick]));
                }
            }
            if !events.is_empty() {
                engine.observe_batch(&events, &mut out);
            }
        }
        let got_before: Vec<Vec<u8>> = hb.iter().map(|&h| engine.close(h)).collect();
        let got_after: Vec<Vec<u8>> = ha.iter().map(|&h| engine.close(h)).collect();
        assert_eq!(got_before, expected_before, "pre-swap sessions relabelled");
        assert_eq!(got_after, expected_after, "post-swap sessions on old model");
        assert_eq!(engine.stats().model_swaps, 1);
        assert_eq!(engine.live_model_epochs(), 1, "drained epoch was retired");
    }

    #[test]
    fn swap_with_no_open_sessions_retires_old_epoch_immediately() {
        let (net, _, model) = setup(28);
        let mut engine = StreamEngine::new(Arc::clone(&model), net);
        assert_eq!(engine.live_model_epochs(), 1);
        engine.swap_model(Arc::clone(&model));
        assert_eq!(engine.live_model_epochs(), 1, "idle epoch freed at swap");
        assert_eq!(engine.stats().model_swaps, 1);
    }

    #[test]
    #[should_panic(expected = "stale session")]
    fn closed_sessions_cannot_be_observed() {
        let (net, ds, model) = setup(26);
        let t = &ds.trajectories[0];
        let mut engine = StreamEngine::new(model, net);
        let h = engine.open(t.sd_pair().unwrap(), t.start_time);
        engine.close(h);
        let _h2 = engine.open(t.sd_pair().unwrap(), t.start_time);
        engine.observe(h, t.segments[0]);
    }

    #[test]
    fn freeze_every_tick_matches_sequential_labels() {
        let (net, ds, model) = setup(36);
        let trajs: Vec<_> = ds.trajectories.iter().take(8).cloned().collect();
        let expected = sequential_labels(&model, &net, &trajs);

        // Adversarial schedule: every session freezes at every tick and
        // thaws on its next event — labels must not change.
        let mut engine = StreamEngine::new(Arc::clone(&model), Arc::clone(&net))
            .with_hibernation(HibernationConfig::freeze_every_tick());
        let handles: Vec<_> = trajs
            .iter()
            .map(|t| engine.open(t.sd_pair().unwrap(), t.start_time))
            .collect();
        let max_len = trajs.iter().map(|t| t.len()).max().unwrap();
        for tick in 0..max_len {
            for (k, t) in trajs.iter().enumerate() {
                if tick < t.len() {
                    engine.observe(handles[k], t.segments[tick]);
                }
            }
        }
        let got: Vec<Vec<u8>> = handles.iter().map(|&h| engine.close(h)).collect();
        assert_eq!(got, expected, "hibernation changed scalar labels");
        let stats = engine.stats();
        assert!(stats.sessions_hibernated > 0, "schedule never froze");
        assert!(
            stats.sessions_rehydrated > 0,
            "frozen sessions never thawed"
        );

        // Same schedule through the batched path (mid-tick thaw prepass).
        let mut engine = StreamEngine::new(Arc::clone(&model), Arc::clone(&net))
            .with_hibernation(HibernationConfig::freeze_every_tick());
        let handles: Vec<_> = trajs
            .iter()
            .map(|t| engine.open(t.sd_pair().unwrap(), t.start_time))
            .collect();
        let mut out = Vec::new();
        for tick in 0..max_len {
            let events: Vec<_> = trajs
                .iter()
                .enumerate()
                .filter(|(_, t)| tick < t.len())
                .map(|(k, t)| (handles[k], t.segments[tick]))
                .collect();
            engine.observe_batch(&events, &mut out);
        }
        let got: Vec<Vec<u8>> = handles.iter().map(|&h| engine.close(h)).collect();
        assert_eq!(got, expected, "hibernation changed batched labels");
        assert!(engine.stats().sessions_rehydrated > 0);
    }

    #[test]
    fn hibernated_sessions_pin_their_model_epoch() {
        let (net, ds, model) = setup(37);
        let t = ds
            .trajectories
            .iter()
            .find(|t| t.len() >= 2)
            .unwrap()
            .clone();

        // Never-hibernated reference for the same 1-event session.
        let mut plain = StreamEngine::new(Arc::clone(&model), Arc::clone(&net));
        let hp = plain.open(t.sd_pair().unwrap(), t.start_time);
        plain.observe(hp, t.segments[0]);
        let expected = plain.close(hp);

        let mut engine = StreamEngine::new(Arc::clone(&model), Arc::clone(&net))
            .with_hibernation(HibernationConfig::freeze_every_tick());
        let h = engine.open(t.sd_pair().unwrap(), t.start_time);
        engine.observe(h, t.segments[0]); // end of tick: h freezes
        assert_eq!(engine.stats().frozen_sessions, 1);

        // The frozen session must keep its pre-swap model alive exactly
        // like a hot one (its epoch id rides outside the frozen blob).
        engine.swap_model(Arc::clone(&model));
        assert_eq!(
            engine.live_model_epochs(),
            2,
            "frozen session no longer pins its epoch"
        );

        // Closing a frozen session thaws (exact restore) and finishes.
        assert_eq!(engine.close(h), expected, "freeze/thaw changed labels");
        assert_eq!(engine.stats().sessions_rehydrated, 1);
        assert_eq!(engine.live_model_epochs(), 1, "drained epoch not retired");
    }

    #[test]
    fn memory_tier_gauges_account_for_every_open_session() {
        let (net, _, model) = setup(38);
        let mut engine =
            StreamEngine::new(model, net).with_hibernation(HibernationConfig::freeze_every_tick());
        let sd = SdPair {
            source: SegmentId(0),
            dest: SegmentId(1),
        };
        let handles: Vec<_> = (0..100).map(|i| engine.open(sd, i as f64)).collect();
        let s = engine.stats();
        assert_eq!(s.resident_sessions, 100);
        assert_eq!(s.frozen_sessions, 0);
        assert!(s.resident_bytes > 0);

        // The flush-boundary hook forces one sweep: everything freezes.
        engine.maintain();
        let s = engine.stats();
        assert_eq!(s.frozen_sessions, 100);
        assert_eq!(s.resident_sessions, 0);
        assert_eq!(s.sessions_hibernated, 100);
        assert!(s.frozen_bytes > 0);
        assert!(s.frozen_footprint_bytes >= s.frozen_bytes);
        assert!(
            s.frozen_bytes / 100 < 1024,
            "tiny-config frozen sessions should be well under 1 KiB each, got {}",
            s.frozen_bytes / 100
        );

        for h in handles {
            assert!(engine.close(h).is_empty());
        }
        let s = engine.stats();
        assert_eq!(s.frozen_sessions, 0);
        assert_eq!(s.resident_sessions, 0);
        assert_eq!(s.sessions_rehydrated, 100);
    }

    #[test]
    fn epoch_stats_attribute_decisions_to_serving_epoch() {
        let (net, ds, model) = setup(39);
        let trajs: Vec<_> = ds
            .trajectories
            .iter()
            .filter(|t| !t.is_empty())
            .take(4)
            .cloned()
            .collect();
        let (first, second) = trajs.split_at(2);
        let mut engine = StreamEngine::new(Arc::clone(&model), net);

        // Two sessions per phase so batched rounds attribute too.
        let drive = |engine: &mut StreamEngine, pair: &[traj::MappedTrajectory]| {
            let hs: Vec<_> = pair
                .iter()
                .map(|t| engine.open(t.sd_pair().unwrap(), t.start_time))
                .collect();
            let mut out = Vec::new();
            let max_len = pair.iter().map(|t| t.len()).max().unwrap();
            for tick in 0..max_len {
                let events: Vec<_> = pair
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| tick < t.len())
                    .map(|(k, t)| (hs[k], t.segments[tick]))
                    .collect();
                engine.observe_batch(&events, &mut out);
            }
            for h in hs {
                engine.close(h);
            }
        };
        drive(&mut engine, first);
        engine.swap_model(model);
        drive(&mut engine, second);

        let log = engine.epoch_stats().to_vec();
        assert_eq!(log.len(), 2, "one row per epoch, retired rows kept");
        let events =
            |pair: &[traj::MappedTrajectory]| -> u64 { pair.iter().map(|t| t.len() as u64).sum() };
        assert_eq!(log[0].decisions, events(first));
        assert_eq!(log[1].decisions, events(second));
        assert_eq!(
            log[0].decisions + log[1].decisions,
            engine.stats().observe_events
        );
        assert!(log.iter().all(|e| e.alerts <= e.decisions));
    }
}
