//! Fleet-scale serving: multiplex thousands of concurrent trajectory
//! sessions over one shared, immutable trained model.
//!
//! The paper's motivating scenario is an operator watching *many* ongoing
//! trips at once. [`StreamEngine`] is that serving layer for RL4OASD:
//!
//! * **shared state** — one `Arc<TrainedModel>` + `Arc<RoadNetwork>`,
//!   never mutated while serving (cheap to share across engines or
//!   threads);
//! * **per-session state** — a compact crate-private `SessionState`: the
//!   LSTM stream
//!   vectors, previous segment/label and the provisional label buffer;
//!   opening a session allocates two `hidden_dim` vectors and nothing
//!   else;
//! * **batched ticks** — [`StreamEngine::observe_batch`] advances every
//!   session that received a point in the same tick through *one* LSTM
//!   matrix pass (`RsrNet::stream_step_batch`) and one policy-head pass,
//!   instead of N scalar passes. The batched kernels use the exact
//!   accumulation order of the scalar path, so labels are **bit-identical**
//!   to driving each trajectory alone through
//!   [`Rl4oasdDetector`](crate::Rl4oasdDetector) — interleaving never
//!   changes results (property-tested in `tests/engine.rs`).
//!
//! The engine implements [`traj::SessionEngine`]; wrap it in
//! [`traj::SingleSession`] to recover the per-trajectory
//! [`traj::OnlineDetector`] view.

use crate::detector::{DecisionCounters, ModelView, Pending, SessionState, StepScratch};
use crate::rsrnet::RsrBatch;
use crate::train::TrainedModel;
use rnet::{RoadNetwork, SegmentId};
use std::collections::HashSet;
use std::sync::Arc;
use traj::{SdPair, SessionEngine, SessionId, SessionSlab};

/// Serving statistics (cumulative since construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Sessions opened.
    pub sessions_opened: u64,
    /// Sessions closed.
    pub sessions_closed: u64,
    /// Total `observe` events processed (scalar and batched).
    pub observe_events: u64,
    /// Events advanced through the batched nn pass.
    pub batched_events: u64,
    /// Batched rounds executed (each is one LSTM matrix pass).
    pub batched_rounds: u64,
    /// Events advanced through the scalar path (single-session ticks).
    pub scalar_events: u64,
}

impl std::ops::AddAssign for EngineStats {
    fn add_assign(&mut self, rhs: Self) {
        // Exhaustive destructuring: adding a field to EngineStats without
        // aggregating it here must fail to compile, not silently report 0
        // in sharded totals.
        let EngineStats {
            sessions_opened,
            sessions_closed,
            observe_events,
            batched_events,
            batched_rounds,
            scalar_events,
        } = rhs;
        self.sessions_opened += sessions_opened;
        self.sessions_closed += sessions_closed;
        self.observe_events += observe_events;
        self.batched_events += batched_events;
        self.batched_rounds += batched_rounds;
        self.scalar_events += scalar_events;
    }
}

impl std::iter::Sum for EngineStats {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(EngineStats::default(), |mut acc, s| {
            acc += s;
            acc
        })
    }
}

/// Reusable per-tick buffers so a warm engine allocates almost nothing.
#[derive(Default)]
struct TickScratch {
    rsr: RsrBatch,
    /// Scalar-path step buffers (single-session `observe` ticks).
    step: StepScratch,
    inputs: Vec<(SegmentId, u8)>,
    /// Flat `batch × z_dim` representations of the current round.
    zs: Vec<f32>,
    head_in: Vec<f32>,
    head_out: Vec<f32>,
    policy_lanes: Vec<usize>,
    round: Vec<u32>,
    deferred: Vec<u32>,
    remaining: Vec<u32>,
    seen: HashSet<SessionId>,
    /// Sessions moved out of the slab for the current round. The per-round
    /// `Vec<&mut RsrStream>` of phase 2 cannot live here (it borrows into
    /// these lanes), so that one small pointer array remains the only
    /// per-round allocation.
    lanes: Vec<(u32, SegmentId, SessionState, Pending)>,
}

/// A multiplexing detection engine: one shared model, thousands of cheap
/// concurrent sessions, batched nn steps per tick.
pub struct StreamEngine {
    model: Arc<TrainedModel>,
    net: Arc<RoadNetwork>,
    sessions: SessionSlab<SessionState>,
    counters: DecisionCounters,
    stats: EngineStats,
    scratch: TickScratch,
}

impl StreamEngine {
    /// Builds an engine over a shared trained model and road network.
    pub fn new(model: Arc<TrainedModel>, net: Arc<RoadNetwork>) -> Self {
        StreamEngine {
            model,
            net,
            sessions: SessionSlab::new(),
            counters: DecisionCounters::default(),
            stats: EngineStats::default(),
            scratch: TickScratch::default(),
        }
    }

    /// The shared model.
    pub fn model(&self) -> &Arc<TrainedModel> {
        &self.model
    }

    /// The shared road network.
    pub fn network(&self) -> &Arc<RoadNetwork> {
        &self.net
    }

    /// Cumulative serving statistics.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// `(RNEL short-circuits, policy invocations)` since construction.
    pub fn decision_counts(&self) -> (usize, usize) {
        (self.counters.rnel_hits, self.counters.policy_calls)
    }

    /// Advances one round of events whose sessions are pairwise distinct,
    /// using the batched LSTM and policy-head kernels.
    fn observe_round(&mut self, events: &[(SessionId, SegmentId)], out: &mut [u8]) {
        let round = std::mem::take(&mut self.scratch.round);
        let batch = round.len();
        debug_assert!(batch > 1);
        let view = ModelView::of(&self.model, &self.net);

        // Phase 1: move the round's sessions out of the slab, resolve the
        // pre-nn plan (endpoint pinning, RNEL) and gather the nn inputs.
        let mut lanes = std::mem::take(&mut self.scratch.lanes);
        lanes.clear();
        self.scratch.inputs.clear();
        for &ei in &round {
            let (session, segment) = events[ei as usize];
            let state = self.sessions.take(session);
            let (nrf, is_endpoint) = state.pre_step(&view, segment);
            let pending = state.plan(&view, segment, is_endpoint, &mut self.counters);
            self.scratch.inputs.push((segment, nrf));
            lanes.push((ei, segment, state, pending));
        }

        // Phase 2: one batched LSTM pass (on the packed gate matrix)
        // advances every lane's stream.
        {
            let mut streams: Vec<&mut crate::rsrnet::RsrStream> = lanes
                .iter_mut()
                .map(|(_, _, state, _)| state.stream_mut())
                .collect();
            view.rsrnet.stream_step_batch_packed(
                &view.packed.lstm,
                &mut self.scratch.rsr,
                &self.scratch.inputs,
                &mut streams,
                &mut self.scratch.zs,
            );
        }

        // Phase 3: one batched head pass for the lanes whose label was not
        // fixed by endpoint pinning or RNEL.
        let z_dim = view.rsrnet.z_dim();
        self.scratch.policy_lanes.clear();
        self.scratch.policy_lanes.extend(
            lanes
                .iter()
                .enumerate()
                .filter(|(_, (_, _, _, pending))| *pending == Pending::Policy)
                .map(|(lane, _)| lane),
        );
        if !self.scratch.policy_lanes.is_empty() {
            self.scratch.head_in.clear();
            let head = if view.config.use_asdnet {
                for &lane in &self.scratch.policy_lanes {
                    let z = &self.scratch.zs[lane * z_dim..(lane + 1) * z_dim];
                    lanes[lane]
                        .2
                        .append_policy_state(&view, z, &mut self.scratch.head_in);
                }
                &view.packed.policy
            } else {
                for &lane in &self.scratch.policy_lanes {
                    self.scratch
                        .head_in
                        .extend_from_slice(&self.scratch.zs[lane * z_dim..(lane + 1) * z_dim]);
                }
                &view.packed.head
            };
            self.scratch.head_out.clear();
            self.scratch
                .head_out
                .resize(self.scratch.policy_lanes.len() * 2, 0.0);
            head.infer_batch(
                &self.scratch.head_in,
                self.scratch.policy_lanes.len(),
                &mut self.scratch.head_out,
            );
            for (k, &lane) in self.scratch.policy_lanes.iter().enumerate() {
                let logits = [
                    self.scratch.head_out[2 * k],
                    self.scratch.head_out[2 * k + 1],
                ];
                let label = if view.config.use_asdnet {
                    crate::asdnet::AsdNet::greedy_from_logits(logits)
                } else {
                    let p = crate::rsrnet::RsrNet::classify_from_logits(logits);
                    u8::from(p[1] > p[0])
                };
                lanes[lane].3 = Pending::Fixed(label);
            }
        }

        // Phase 4: commit labels and return the sessions to the slab.
        for (ei, segment, mut state, pending) in lanes.drain(..) {
            let (session, _) = events[ei as usize];
            let label = match pending {
                Pending::Fixed(label) => label,
                Pending::Policy => unreachable!("all policy lanes decided in phase 3"),
            };
            state.commit(segment, label);
            out[ei as usize] = label;
            self.sessions.restore(session, state);
        }

        self.stats.observe_events += batch as u64;
        self.stats.batched_events += batch as u64;
        self.stats.batched_rounds += 1;
        self.scratch.round = round;
        self.scratch.lanes = lanes;
    }
}

impl SessionEngine for StreamEngine {
    fn engine_name(&self) -> &'static str {
        "RL4OASD"
    }

    fn open(&mut self, sd: SdPair, start_time: f64) -> SessionId {
        let view = ModelView::of(&self.model, &self.net);
        let state = SessionState::open(&view, sd, start_time);
        self.stats.sessions_opened += 1;
        self.sessions.insert(state)
    }

    fn observe(&mut self, session: SessionId, segment: SegmentId) -> u8 {
        let view = ModelView::of(&self.model, &self.net);
        let state = self.sessions.get_mut(session);
        let label = state.observe(&view, segment, &mut self.counters, &mut self.scratch.step);
        self.stats.observe_events += 1;
        self.stats.scalar_events += 1;
        label
    }

    /// Batched tick: every session that received a point this tick advances
    /// through one LSTM matrix pass (and one head pass) instead of N scalar
    /// passes. Sessions appearing multiple times in `events` are applied in
    /// order across successive sub-rounds.
    fn observe_batch(&mut self, events: &[(SessionId, SegmentId)], out: &mut Vec<u8>) {
        out.clear();
        out.resize(events.len(), 0);
        let mut remaining = std::mem::take(&mut self.scratch.remaining);
        remaining.clear();
        remaining.extend(0..events.len() as u32);
        let mut seen = std::mem::take(&mut self.scratch.seen);
        while !remaining.is_empty() {
            // Select a round in which each session appears at most once;
            // later duplicates are deferred to the next round.
            seen.clear();
            let mut round = std::mem::take(&mut self.scratch.round);
            let mut deferred = std::mem::take(&mut self.scratch.deferred);
            round.clear();
            deferred.clear();
            for &ei in &remaining {
                if seen.insert(events[ei as usize].0) {
                    round.push(ei);
                } else {
                    deferred.push(ei);
                }
            }
            if round.len() == 1 {
                let ei = round[0] as usize;
                let (session, segment) = events[ei];
                out[ei] = self.observe(session, segment);
                self.scratch.round = round;
            } else {
                self.scratch.round = round;
                self.observe_round(events, out);
            }
            std::mem::swap(&mut remaining, &mut deferred);
            self.scratch.deferred = deferred;
        }
        self.scratch.remaining = remaining;
        self.scratch.seen = seen;
    }

    fn close(&mut self, session: SessionId) -> Vec<u8> {
        let view = ModelView::of(&self.model, &self.net);
        let mut state = self.sessions.remove(session);
        self.stats.sessions_closed += 1;
        state.finish(&view)
    }

    fn active_sessions(&self) -> usize {
        self.sessions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Rl4oasdConfig;
    use crate::detector::Rl4oasdDetector;
    use crate::train::train;
    use rnet::{CityBuilder, CityConfig};
    use traj::{Dataset, OnlineDetector, SingleSession, TrafficConfig, TrafficSimulator};

    fn setup(seed: u64) -> (Arc<RoadNetwork>, Dataset, Arc<TrainedModel>) {
        let net = CityBuilder::new(CityConfig::tiny(seed)).build();
        let cfg = TrafficConfig {
            num_sd_pairs: 4,
            trajs_per_pair: (40, 60),
            anomaly_ratio: 0.15,
            ..TrafficConfig::tiny(seed)
        };
        let data = TrafficSimulator::new(&net, cfg).generate();
        let ds = Dataset::from_generated(&data);
        let cfg = Rl4oasdConfig::tiny(seed);
        let model = train(&net, &ds, &cfg);
        (Arc::new(net), ds, Arc::new(model))
    }

    /// Sequential per-trajectory labels via the single-session detector.
    fn sequential_labels(
        model: &TrainedModel,
        net: &RoadNetwork,
        trajs: &[traj::MappedTrajectory],
    ) -> Vec<Vec<u8>> {
        let mut det = Rl4oasdDetector::new(model, net);
        trajs.iter().map(|t| det.label_trajectory(t)).collect()
    }

    #[test]
    fn interleaved_ticks_match_sequential_labels() {
        let (net, ds, model) = setup(21);
        let trajs: Vec<_> = ds.trajectories.iter().take(24).cloned().collect();
        let expected = sequential_labels(&model, &net, &trajs);

        let mut engine = StreamEngine::new(Arc::clone(&model), Arc::clone(&net));
        let handles: Vec<_> = trajs
            .iter()
            .map(|t| engine.open(t.sd_pair().unwrap(), t.start_time))
            .collect();
        assert_eq!(engine.active_sessions(), trajs.len());

        // Tick-synchronous interleaving: every still-active trip advances
        // one segment per tick through the batched path.
        let max_len = trajs.iter().map(|t| t.len()).max().unwrap();
        let mut out = Vec::new();
        for tick in 0..max_len {
            let events: Vec<_> = trajs
                .iter()
                .enumerate()
                .filter(|(_, t)| tick < t.len())
                .map(|(k, t)| (handles[k], t.segments[tick]))
                .collect();
            engine.observe_batch(&events, &mut out);
            assert_eq!(out.len(), events.len());
        }
        let got: Vec<Vec<u8>> = handles.iter().map(|&h| engine.close(h)).collect();
        assert_eq!(got, expected, "interleaving changed labels");
        assert_eq!(engine.active_sessions(), 0);

        let stats = engine.stats();
        assert!(stats.batched_rounds > 0, "batched path never used");
        assert!(stats.batched_events > stats.scalar_events);
        assert_eq!(
            stats.observe_events,
            trajs.iter().map(|t| t.len() as u64).sum::<u64>()
        );
    }

    #[test]
    fn scalar_observe_matches_sequential_labels() {
        let (net, ds, model) = setup(22);
        let trajs: Vec<_> = ds.trajectories.iter().take(8).cloned().collect();
        let expected = sequential_labels(&model, &net, &trajs);

        // Round-robin single observes across all sessions at once.
        let mut engine = StreamEngine::new(Arc::clone(&model), Arc::clone(&net));
        let handles: Vec<_> = trajs
            .iter()
            .map(|t| engine.open(t.sd_pair().unwrap(), t.start_time))
            .collect();
        let max_len = trajs.iter().map(|t| t.len()).max().unwrap();
        for tick in 0..max_len {
            for (k, t) in trajs.iter().enumerate() {
                if tick < t.len() {
                    engine.observe(handles[k], t.segments[tick]);
                }
            }
        }
        let got: Vec<Vec<u8>> = handles.iter().map(|&h| engine.close(h)).collect();
        assert_eq!(got, expected);
        assert_eq!(engine.stats().batched_rounds, 0);
    }

    #[test]
    fn repeated_sessions_within_one_tick_are_ordered() {
        let (net, ds, model) = setup(23);
        let t = ds.trajectories[0].clone();
        let expected = sequential_labels(&model, &net, std::slice::from_ref(&t));

        // Feed an entire trajectory as one observe_batch call (the same
        // session repeats); sub-rounds must preserve per-session order.
        let mut engine = StreamEngine::new(Arc::clone(&model), Arc::clone(&net));
        let h = engine.open(t.sd_pair().unwrap(), t.start_time);
        let events: Vec<_> = t.segments.iter().map(|&s| (h, s)).collect();
        let mut out = Vec::new();
        engine.observe_batch(&events, &mut out);
        assert_eq!(out.len(), t.len());
        assert_eq!(engine.close(h), expected[0]);
    }

    #[test]
    fn single_session_adapter_over_engine_matches_detector() {
        let (net, ds, model) = setup(24);
        let trajs: Vec<_> = ds.trajectories.iter().take(10).cloned().collect();
        let expected = sequential_labels(&model, &net, &trajs);
        let mut adapter =
            SingleSession::new(StreamEngine::new(Arc::clone(&model), Arc::clone(&net)));
        assert_eq!(adapter.name(), "RL4OASD");
        let got: Vec<Vec<u8>> = trajs.iter().map(|t| adapter.label_trajectory(t)).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn sessions_are_cheap_to_open_and_close() {
        let (net, _, model) = setup(25);
        let mut engine = StreamEngine::new(Arc::clone(&model), Arc::clone(&net));
        let sd = SdPair {
            source: SegmentId(0),
            dest: SegmentId(1),
        };
        let handles: Vec<_> = (0..5000).map(|i| engine.open(sd, i as f64)).collect();
        assert_eq!(engine.active_sessions(), 5000);
        for h in handles {
            assert!(engine.close(h).is_empty());
        }
        assert_eq!(engine.active_sessions(), 0);
        assert_eq!(engine.stats().sessions_closed, 5000);
    }

    #[test]
    #[should_panic(expected = "stale session")]
    fn closed_sessions_cannot_be_observed() {
        let (net, ds, model) = setup(26);
        let t = &ds.trajectories[0];
        let mut engine = StreamEngine::new(model, net);
        let h = engine.open(t.sd_pair().unwrap(), t.start_time);
        engine.close(h);
        let _h2 = engine.open(t.sd_pair().unwrap(), t.start_time);
        engine.observe(h, t.segments[0]);
    }
}
