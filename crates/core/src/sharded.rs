//! Multi-core session serving: shard the fleet across N [`StreamEngine`]s
//! behind one shared trained model.
//!
//! [`StreamEngine`] is single-threaded by design — one slab, one scratch —
//! so its throughput plateaus at one core no matter how many are available.
//! Online detection is embarrassingly parallel across trips: once the
//! trained model is shared read-only, per-session state is fully
//! independent. [`ShardedEngine`] exploits exactly that: sessions are
//! hashed onto one of N `StreamEngine` shards, every shard owns its own
//! `SessionSlab` + tick scratch, and all shards share **one**
//! `Arc<TrainedModel>` + `Arc<RoadNetwork>` — zero weight duplication.
//!
//! The tick-parallel drive path ([`traj::SessionEngine::observe_batch`])
//! partitions each tick's events by shard and advances the shards on
//! scoped worker threads (`std::thread::scope`; no extra dependencies).
//! Within a shard the existing batched LSTM/head kernels still apply, so
//! per-point cost keeps the PR 1 batching win *and* scales across cores.
//!
//! Because a session's events always reach the same shard in order, the
//! [`StreamEngine`] interleaving-invariance contract lifts directly:
//! labels, decisions and per-session outputs are **byte-identical for
//! every shard count** (property-tested in `tests/sharded.rs`).

use crate::engine::{EngineStats, EpochStats, HibernationConfig, StreamEngine};
use crate::train::TrainedModel;
use obs::Obs;
use rnet::{RoadNetwork, SegmentId};
use std::sync::Arc;
use traj::{SdPair, SessionEngine, SessionId, Sharded};

/// A shard-parallel [`StreamEngine`]: N independent shards, one shared
/// immutable model, sessions hashed to shards, ticks driven across worker
/// threads. Implements the same [`SessionEngine`] surface as a single
/// engine, with aggregated [`ShardedEngine::stats`] /
/// [`ShardedEngine::decision_counts`].
pub struct ShardedEngine {
    inner: Sharded<StreamEngine>,
}

impl ShardedEngine {
    /// Builds `shards` engines over one shared trained model and road
    /// network (the `Arc`s are cloned per shard; the weights are not).
    /// Uses one worker thread per shard; see [`ShardedEngine::with_threads`].
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    ///
    /// # Example
    ///
    /// ```
    /// use rl4oasd::{Rl4oasdConfig, ShardedEngine};
    /// use rnet::{CityBuilder, CityConfig};
    /// use std::sync::Arc;
    /// use traj::{Dataset, SessionEngine, TrafficConfig, TrafficSimulator};
    ///
    /// let net = CityBuilder::new(CityConfig::tiny(7)).build();
    /// let data = TrafficSimulator::new(&net, TrafficConfig::tiny(7)).generate();
    /// let ds = Dataset::from_generated(&data);
    /// let model = rl4oasd::train(&net, &ds, &Rl4oasdConfig::tiny(7));
    ///
    /// let mut engine = ShardedEngine::new(Arc::new(model), Arc::new(net), 4);
    /// let trip = ds.trajectories.iter().find(|t| !t.is_empty()).unwrap();
    /// let session = engine.open(trip.sd_pair().unwrap(), trip.start_time);
    /// for &segment in &trip.segments {
    ///     engine.observe(session, segment);
    /// }
    /// let labels = engine.close(session);
    /// assert_eq!(labels.len(), trip.len());
    /// ```
    pub fn new(model: Arc<TrainedModel>, net: Arc<RoadNetwork>, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardedEngine {
            inner: Sharded::build(shards, |_| {
                StreamEngine::new(Arc::clone(&model), Arc::clone(&net))
            }),
        }
    }

    /// Caps the worker threads used per tick (clamped to `1..=shards`;
    /// `1` keeps the drive path entirely on the calling thread).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.inner = self.inner.with_threads(threads);
        self
    }

    /// Builder form of [`ShardedEngine::set_hibernation`].
    pub fn with_hibernation(mut self, cfg: HibernationConfig) -> Self {
        self.set_hibernation(Some(cfg));
        self
    }

    /// Builder form of [`ShardedEngine::set_obs`].
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.set_obs(obs);
        self
    }

    /// Wires telemetry through every shard: shard `i` records under the
    /// label `shard="i"` — same contract as [`StreamEngine::set_obs`].
    /// All shards feed one shared registry, span ring and event log, so
    /// one [`Obs::snapshot`] covers the whole fleet.
    pub fn set_obs(&mut self, obs: &Obs) {
        for (i, shard) in self.inner.shards_mut().iter_mut().enumerate() {
            shard.set_obs(obs, i);
        }
    }

    /// Enables (or disables) idle-session hibernation on every shard —
    /// same contract as [`StreamEngine::set_hibernation`]; each shard
    /// sweeps its own slab at its own tick boundaries.
    pub fn set_hibernation(&mut self, cfg: Option<HibernationConfig>) {
        for shard in self.inner.shards_mut() {
            shard.set_hibernation(cfg);
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.inner.num_shards()
    }

    /// Worker-thread cap for the tick-parallel drive path.
    pub fn threads(&self) -> usize {
        self.inner.threads()
    }

    /// The model new sessions are currently opened under (held by every
    /// shard; pre-swap sessions may still run older epochs).
    pub fn model(&self) -> &Arc<TrainedModel> {
        self.inner.shards()[0].model()
    }

    /// Hot-swaps the serving model on every shard, synchronously. Holding
    /// `&mut self` means no tick is in flight, so this is always applied
    /// at a tick boundary: sessions opened afterwards run `model`,
    /// sessions already open drain to completion on the model they
    /// started with (per-shard epoch refcounts free each old model when
    /// its last session closes — same contract as
    /// [`StreamEngine::swap_model`], property-tested in
    /// `tests/hotswap.rs`). The asynchronous counterpart is
    /// `SwapModel::swap_model` on the ingest handle.
    pub fn swap_model(&mut self, model: Arc<TrainedModel>) {
        for shard in self.inner.shards_mut() {
            shard.swap_model(Arc::clone(&model));
        }
    }

    /// Installs `model` for scope (tenant) `scope` on every shard — the
    /// sharded form of [`StreamEngine::set_scope_model`]: future
    /// [`SessionEngine::open_scoped`] opens with this scope pin the new
    /// epoch on whichever shard they hash to; other scopes and plain
    /// opens are untouched.
    pub fn set_scope_model(&mut self, scope: u32, model: Arc<TrainedModel>) {
        for shard in self.inner.shards_mut() {
            shard.set_scope_model(scope, Arc::clone(&model));
        }
    }

    /// Model generations alive per shard (index = shard): `1` everywhere
    /// when no swap is mid-drain; an old epoch stays alive on a shard only
    /// while that shard still serves one of its pre-swap sessions.
    pub fn shard_live_model_epochs(&self) -> Vec<usize> {
        self.inner
            .shards()
            .iter()
            .map(|s| s.live_model_epochs())
            .collect()
    }

    /// The shared road network (held by every shard).
    pub fn network(&self) -> &Arc<RoadNetwork> {
        self.inner.shards()[0].network()
    }

    /// Which shard serves the given open session.
    pub fn shard_of(&self, session: SessionId) -> usize {
        self.inner.shard_of(session)
    }

    /// Cumulative serving statistics, aggregated across all shards.
    pub fn stats(&self) -> EngineStats {
        self.shard_stats().into_iter().sum()
    }

    /// Per-shard serving statistics (index = shard).
    pub fn shard_stats(&self) -> Vec<EngineStats> {
        self.inner.shards().iter().map(|s| s.stats()).collect()
    }

    /// `(RNEL short-circuits, policy invocations)` summed across shards.
    pub fn decision_counts(&self) -> (usize, usize) {
        self.shard_decision_counts()
            .into_iter()
            .fold((0, 0), |(r, p), (sr, sp)| (r + sr, p + sp))
    }

    /// Per-shard `(RNEL short-circuits, policy invocations)` (index = shard).
    pub fn shard_decision_counts(&self) -> Vec<(usize, usize)> {
        self.inner
            .shards()
            .iter()
            .map(|s| s.decision_counts())
            .collect()
    }

    /// Per-epoch decision/alert counters summed across shards, indexed by
    /// swap sequence number. Swaps broadcast to every shard, so sequence
    /// numbers line up shard-to-shard by construction.
    pub fn epoch_stats(&self) -> Vec<EpochStats> {
        let mut total: Vec<EpochStats> = Vec::new();
        for shard in self.inner.shards() {
            for (seq, &stats) in shard.epoch_stats().iter().enumerate() {
                if seq == total.len() {
                    total.push(EpochStats::default());
                }
                total[seq] += stats;
            }
        }
        total
    }
}

impl SessionEngine for ShardedEngine {
    fn engine_name(&self) -> &'static str {
        self.inner.engine_name()
    }

    fn open(&mut self, sd: SdPair, start_time: f64) -> SessionId {
        self.inner.open(sd, start_time)
    }

    fn open_scoped(&mut self, scope: u32, sd: SdPair, start_time: f64) -> SessionId {
        self.inner.open_scoped(scope, sd, start_time)
    }

    fn observe(&mut self, session: SessionId, segment: SegmentId) -> u8 {
        self.inner.observe(session, segment)
    }

    fn observe_batch(&mut self, events: &[(SessionId, SegmentId)], out: &mut Vec<u8>) {
        self.inner.observe_batch(events, out)
    }

    fn close(&mut self, session: SessionId) -> Vec<u8> {
        self.inner.close(session)
    }

    fn active_sessions(&self) -> usize {
        self.inner.active_sessions()
    }

    fn maintain(&mut self) {
        self.inner.maintain()
    }
}

// The sharded drive path moves `StreamEngine`s across scoped threads; keep
// that guarantee explicit so a future non-Send field fails here, not at a
// distant call site.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<StreamEngine>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Rl4oasdConfig;
    use crate::train::train;
    use rnet::{CityBuilder, CityConfig};
    use traj::{Dataset, TrafficConfig, TrafficSimulator};

    fn setup(seed: u64) -> (Arc<RoadNetwork>, Dataset, Arc<TrainedModel>) {
        let net = CityBuilder::new(CityConfig::tiny(seed)).build();
        let cfg = TrafficConfig {
            num_sd_pairs: 4,
            trajs_per_pair: (30, 50),
            anomaly_ratio: 0.15,
            ..TrafficConfig::tiny(seed)
        };
        let data = TrafficSimulator::new(&net, cfg).generate();
        let ds = Dataset::from_generated(&data);
        let cfg = Rl4oasdConfig::tiny(seed);
        let model = train(&net, &ds, &cfg);
        (Arc::new(net), ds, Arc::new(model))
    }

    #[test]
    fn sharded_matches_single_engine_tick_for_tick() {
        let (net, ds, model) = setup(31);
        let trajs: Vec<_> = ds.trajectories.iter().take(20).cloned().collect();

        let mut single = StreamEngine::new(Arc::clone(&model), Arc::clone(&net));
        let mut sharded = ShardedEngine::new(Arc::clone(&model), Arc::clone(&net), 4);
        assert_eq!(sharded.engine_name(), "RL4OASD");
        assert_eq!(sharded.num_shards(), 4);

        let hs: Vec<_> = trajs
            .iter()
            .map(|t| single.open(t.sd_pair().unwrap(), t.start_time))
            .collect();
        let hp: Vec<_> = trajs
            .iter()
            .map(|t| sharded.open(t.sd_pair().unwrap(), t.start_time))
            .collect();
        assert_eq!(sharded.active_sessions(), trajs.len());

        let max_len = trajs.iter().map(|t| t.len()).max().unwrap();
        let (mut out_s, mut out_p) = (Vec::new(), Vec::new());
        for tick in 0..max_len {
            let ev = |handles: &[SessionId]| -> Vec<_> {
                trajs
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| tick < t.len())
                    .map(|(k, t)| (handles[k], t.segments[tick]))
                    .collect()
            };
            single.observe_batch(&ev(&hs), &mut out_s);
            sharded.observe_batch(&ev(&hp), &mut out_p);
            assert_eq!(out_p, out_s, "tick {tick} labels diverged");
        }
        for (hs, hp) in hs.iter().zip(&hp) {
            assert_eq!(sharded.close(*hp), single.close(*hs));
        }
        assert_eq!(sharded.active_sessions(), 0);

        // Workload-invariant aggregates match the single engine; the
        // batched/scalar split legitimately differs (smaller per-shard
        // rounds), but every event is still accounted for exactly once.
        let (agg, one) = (sharded.stats(), single.stats());
        assert_eq!(agg.observe_events, one.observe_events);
        assert_eq!(agg.sessions_opened, one.sessions_opened);
        assert_eq!(agg.sessions_closed, one.sessions_closed);
        assert_eq!(
            agg.batched_events + agg.scalar_events,
            one.batched_events + one.scalar_events
        );
        assert_eq!(sharded.decision_counts(), single.decision_counts());
    }

    #[test]
    fn sessions_spread_across_shards() {
        let (net, _, model) = setup(32);
        let mut engine = ShardedEngine::new(model, net, 4);
        let sd = SdPair {
            source: SegmentId(0),
            dest: SegmentId(1),
        };
        let handles: Vec<_> = (0..64).map(|i| engine.open(sd, i as f64)).collect();
        let mut per_shard = vec![0usize; engine.num_shards()];
        for &h in &handles {
            per_shard[engine.shard_of(h)] += 1;
        }
        assert!(
            per_shard.iter().all(|&n| n > 0),
            "64 sessions left a shard empty: {per_shard:?}"
        );
        let opened: u64 = engine.shard_stats().iter().map(|s| s.sessions_opened).sum();
        assert_eq!(opened, 64);
        for h in handles {
            engine.close(h);
        }
        assert_eq!(engine.stats().sessions_closed, 64);
    }

    #[test]
    #[should_panic(expected = "need at least one shard")]
    fn zero_shards_rejected() {
        let (net, _, model) = setup(33);
        let _ = ShardedEngine::new(model, net, 0);
    }
}
