//! Packed (inference-ready) form of a trained RL4OASD model.
//!
//! Serving never mutates weights, so the three dense matrices on the
//! per-point hot path — RSRNet's `4H × (I+H)` LSTM gate matrix, its
//! classification head and ASDNet's policy head — are re-packed once into
//! the row-padded layout the vectorized `nn::ops::kernels` prefer (see
//! `nn::pack`). [`crate::TrainedModel`] caches a [`PackedModel`] behind a
//! `OnceLock`, so every engine — [`crate::StreamEngine`],
//! [`crate::ShardedEngine`], [`crate::IngestEngine`] and the
//! single-session [`crate::Rl4oasdDetector`] — shares one packed copy
//! with zero per-tick repacking.
//!
//! Packing changes the memory layout, never the values or the kernel
//! reduction order: packed inference is bit-identical to running the raw
//! weights through the same kernels, which is what keeps the repo's
//! batched-vs-scalar, shard-invariance and ingest-vs-sync byte-identity
//! guarantees intact.

use crate::asdnet::AsdNet;
use crate::rsrnet::RsrNet;
use nn::{PackedLinear, PackedLstm};

/// The packed hot-path weights of one trained model. Embeddings stay in
/// their dense tables (lookups are row reads, not GEMMs).
#[derive(Debug, Clone)]
pub struct PackedModel {
    /// RSRNet's LSTM gate matrix, packed.
    pub lstm: PackedLstm,
    /// RSRNet's classification head (the "w/o ASDNet" ablation path).
    pub head: PackedLinear,
    /// ASDNet's policy head.
    pub policy: PackedLinear,
}

impl PackedModel {
    /// Packs the hot-path weights of a trained network pair.
    pub fn of(rsrnet: &RsrNet, asdnet: &AsdNet) -> Self {
        PackedModel {
            lstm: PackedLstm::of(&rsrnet.lstm),
            head: PackedLinear::of(&rsrnet.head),
            policy: PackedLinear::of(&asdnet.policy),
        }
    }
}
