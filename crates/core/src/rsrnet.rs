//! RSRNet: Road Segment Representation Network (paper §IV-C).
//!
//! Architecture (paper Fig. 2): a trainable road-segment embedding layer
//! (initialised from Toast vectors) feeds an LSTM; the hidden state `h_i`
//! is concatenated with the embedded normal-route feature `x^n_i` to form
//! the representation `z_i = [h_i ; x^n_i]`; a softmax head predicts the
//! segment's label. Training minimises the mean cross-entropy (Eq. 1)
//! against noisy labels (warm-start) or ASDNet-refined labels (joint
//! training). The NRF embedding deliberately bypasses the LSTM ("we do not
//! let x^n go through the LSTM since it preserves the normal route feature
//! at each road segment").

use crate::config::Rl4oasdConfig;
use nn::ops;
use nn::{Embedding, Linear, LstmCell, LstmCtx, LstmScratch, LstmState, PackedLstm};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rnet::SegmentId;
use serde::{Deserialize, Serialize};

/// The representation network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RsrNet {
    /// Traffic-context (road segment) embedding, `vocab × embed_dim`.
    pub embed: Embedding,
    /// Normal-route-feature embedding, `2 × nrf_dim`.
    pub nrf_embed: Embedding,
    /// Sequence encoder.
    pub lstm: LstmCell,
    /// Classification head over `z = [h ; nrf]`, output dim 2.
    pub head: Linear,
}

/// Cached forward pass of a whole trajectory (training path).
pub struct RsrForward {
    /// Representations `z_i = [h_i ; x^n_i]`.
    pub zs: Vec<Vec<f32>>,
    /// Softmax label probabilities per position.
    pub probs: Vec<[f32; 2]>,
    lstm_ctxs: Vec<LstmCtx>,
    head_ctxs: Vec<nn::LinearCtx>,
    segs: Vec<SegmentId>,
    nrf: Vec<u8>,
}

/// Streaming state for online inference (one LSTM step per observed
/// segment; no gradient bookkeeping).
#[derive(Debug, Clone)]
pub struct RsrStream {
    state: LstmState,
}

impl RsrStream {
    /// The LSTM state vectors (session hibernation encodes these).
    pub(crate) fn state(&self) -> &LstmState {
        &self.state
    }

    /// Rebuilds a stream from explicit state vectors (session thaw). The
    /// caller guarantees the vectors came from a stream of the same
    /// `hidden_dim`.
    pub(crate) fn from_state(state: LstmState) -> Self {
        RsrStream { state }
    }
}

/// Reusable scratch buffers for [`RsrNet::stream_step_batch`], so a serving
/// engine allocates nothing per tick once warm.
#[derive(Debug, Default)]
pub struct RsrBatch {
    xh: Vec<f32>,
    c: Vec<f32>,
    h: Vec<f32>,
    z: Vec<f32>,
}

impl RsrNet {
    /// Builds the network. `toast_init` (if given) must be a
    /// `vocab × embed_dim` matrix.
    pub fn new(config: &Rl4oasdConfig, vocab: usize, toast_init: Option<Vec<f32>>) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5A5A);
        let embed = match toast_init {
            Some(v) => Embedding::from_pretrained(vocab, config.embed_dim, v),
            None => Embedding::new(vocab, config.embed_dim, &mut rng),
        };
        RsrNet {
            embed,
            nrf_embed: Embedding::new(2, config.nrf_dim, &mut rng),
            lstm: LstmCell::new(config.embed_dim, config.hidden_dim, &mut rng),
            head: Linear::new(config.hidden_dim + config.nrf_dim, 2, &mut rng),
        }
    }

    /// Dimension of `z` (LSTM hidden + NRF embedding).
    pub fn z_dim(&self) -> usize {
        self.lstm.hidden_dim() + self.nrf_embed.dim()
    }

    /// Full-sequence forward pass keeping gradient contexts.
    ///
    /// # Panics
    /// Panics if `segs.len() != nrf.len()` or the input is empty.
    pub fn forward(&self, segs: &[SegmentId], nrf: &[u8]) -> RsrForward {
        assert_eq!(segs.len(), nrf.len(), "segment/NRF length mismatch");
        assert!(!segs.is_empty(), "empty trajectory");
        let n = segs.len();
        let mut zs = Vec::with_capacity(n);
        let mut probs = Vec::with_capacity(n);
        let mut lstm_ctxs = Vec::with_capacity(n);
        let mut head_ctxs = Vec::with_capacity(n);
        let mut state = LstmState::zeros(self.lstm.hidden_dim());
        for i in 0..n {
            let x = self.embed.lookup(segs[i].idx());
            let (next, ctx) = self.lstm.forward(x, &state);
            state = next;
            let z = ops::concat(&state.h, self.nrf_embed.lookup(nrf[i] as usize));
            let (logits, hctx) = self.head.forward(&z);
            let mut p = [logits[0], logits[1]];
            softmax2(&mut p);
            zs.push(z);
            probs.push(p);
            lstm_ctxs.push(ctx);
            head_ctxs.push(hctx);
        }
        RsrForward {
            zs,
            probs,
            lstm_ctxs,
            head_ctxs,
            segs: segs.to_vec(),
            nrf: nrf.to_vec(),
        }
    }

    /// Mean cross-entropy loss (Eq. 1) of a forward pass against labels.
    pub fn loss_of(&self, fwd: &RsrForward, labels: &[u8]) -> f32 {
        debug_assert_eq!(fwd.probs.len(), labels.len());
        let n = labels.len() as f32;
        fwd.probs
            .iter()
            .zip(labels)
            .map(|(p, &y)| -p[y as usize].max(1e-12).ln())
            .sum::<f32>()
            / n
    }

    /// Convenience: loss without keeping the forward pass.
    pub fn loss(&self, segs: &[SegmentId], nrf: &[u8], labels: &[u8]) -> f32 {
        let fwd = self.forward(segs, nrf);
        self.loss_of(&fwd, labels)
    }

    /// One supervised training step (forward, BPTT, Adam). Returns the
    /// pre-step loss.
    pub fn train_step(&mut self, segs: &[SegmentId], nrf: &[u8], labels: &[u8], lr: f32) -> f32 {
        let fwd = self.forward(segs, nrf);
        let loss = self.loss_of(&fwd, labels);
        self.zero_grad();
        self.backward(&fwd, labels);
        self.clip_and_step(lr);
        loss
    }

    /// Accumulates gradients of the mean-CE loss for a cached forward pass.
    pub fn backward(&mut self, fwd: &RsrForward, labels: &[u8]) {
        let n = fwd.probs.len();
        let hidden = self.lstm.hidden_dim();
        let scale = 1.0 / n as f32;
        // Head + NRF gradients per position; collect dh for BPTT.
        let mut dh_from_head: Vec<Vec<f32>> = Vec::with_capacity(n);
        for (i, &label) in labels.iter().enumerate().take(n) {
            let p = &fwd.probs[i];
            let y = label as usize;
            let mut dlogits = [p[0] * scale, p[1] * scale];
            dlogits[y] -= scale;
            let dz = self.head.backward(&fwd.head_ctxs[i], &dlogits);
            self.nrf_embed.backward(fwd.nrf[i] as usize, &dz[hidden..]);
            dh_from_head.push(dz[..hidden].to_vec());
        }
        // BPTT through the LSTM and into the segment embeddings.
        let mut dh = vec![0.0f32; hidden];
        let mut dc = vec![0.0f32; hidden];
        for i in (0..n).rev() {
            for (a, b) in dh.iter_mut().zip(&dh_from_head[i]) {
                *a += b;
            }
            let (dx, dh_prev, dc_prev) = self.lstm.backward(&fwd.lstm_ctxs[i], &dh, &dc);
            self.embed.backward(fwd.segs[i].idx(), &dx);
            dh = dh_prev;
            dc = dc_prev;
        }
    }

    /// Clips the global gradient norm (5.0) and applies one Adam step.
    pub fn clip_and_step(&mut self, lr: f32) {
        let mut params = self.params_mut();
        nn::param::clip_global_norm(&mut params, 5.0);
        for p in params {
            p.adam_step(lr);
        }
    }

    /// Clears all gradients.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// All learnable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut nn::Param> {
        let mut v = Vec::new();
        v.extend(self.embed.params_mut());
        v.extend(self.nrf_embed.params_mut());
        v.extend(self.lstm.params_mut());
        v.extend(self.head.params_mut());
        v
    }

    /// Opens a streaming pass (online detection).
    pub fn stream(&self) -> RsrStream {
        RsrStream {
            state: LstmState::zeros(self.lstm.hidden_dim()),
        }
    }

    /// One streaming step: consumes a segment and its NRF, returns `z_i`.
    pub fn stream_step(&self, stream: &mut RsrStream, seg: SegmentId, nrf: u8) -> Vec<f32> {
        let x = self.embed.lookup(seg.idx());
        let (next, _ctx) = self.lstm.forward(x, &stream.state);
        stream.state = next;
        ops::concat(&stream.state.h, self.nrf_embed.lookup(nrf as usize))
    }

    /// [`RsrNet::stream_step`] on packed weights, allocation-free: the
    /// LSTM advances through `lstm` (the packed form of `self.lstm`) with
    /// reusable scratch, and `z_i` is written into `z`. Bit-identical to
    /// `stream_step` — packing changes layout, not values or reduction
    /// order — so packed serving sessions and raw-weight paths can be
    /// compared byte-for-byte.
    pub fn stream_step_packed(
        &self,
        lstm: &PackedLstm,
        stream: &mut RsrStream,
        seg: SegmentId,
        nrf: u8,
        scratch: &mut LstmScratch,
        z: &mut Vec<f32>,
    ) {
        lstm.infer_step(self.embed.lookup(seg.idx()), &mut stream.state, scratch);
        z.clear();
        z.extend_from_slice(&stream.state.h);
        z.extend_from_slice(self.nrf_embed.lookup(nrf as usize));
    }

    /// Batched streaming step: advances `inputs.len()` independent streams
    /// in one LSTM matrix pass, writing each lane's `z_i` into the flat
    /// `batch × z_dim` row-major `zs` buffer (cleared first; lane `i`'s
    /// representation is `zs[i*z_dim..(i+1)*z_dim]`). The flat layout keeps
    /// the serving hot path allocation-free once buffers are warm.
    ///
    /// Per-lane results are **bit-identical** to [`RsrNet::stream_step`] —
    /// the batched LSTM kernel uses the same accumulation order — so a
    /// serving engine can mix scalar and batched ticks freely without
    /// changing labels.
    ///
    /// # Panics
    /// Panics if `inputs` and `streams` have different lengths.
    pub fn stream_step_batch(
        &self,
        scratch: &mut RsrBatch,
        inputs: &[(SegmentId, u8)],
        streams: &mut [&mut RsrStream],
        zs: &mut Vec<f32>,
    ) {
        self.stream_step_batch_impl(scratch, inputs, streams, zs, |batch, xh, c, h, z| {
            self.lstm.infer_step_batch(batch, xh, c, h, z)
        })
    }

    /// [`RsrNet::stream_step_batch`] on packed weights: identical gather /
    /// scatter, with the LSTM matrix pass running through `lstm` (the
    /// packed form of `self.lstm`). Bit-identical per lane to both the raw
    /// batched path and [`RsrNet::stream_step_packed`].
    pub fn stream_step_batch_packed(
        &self,
        lstm: &PackedLstm,
        scratch: &mut RsrBatch,
        inputs: &[(SegmentId, u8)],
        streams: &mut [&mut RsrStream],
        zs: &mut Vec<f32>,
    ) {
        self.stream_step_batch_impl(scratch, inputs, streams, zs, |batch, xh, c, h, z| {
            lstm.infer_step_batch(batch, xh, c, h, z)
        })
    }

    /// Shared body of the batched streaming step, parameterised by the
    /// LSTM kernel (raw or packed) so both variants share one
    /// gather/scatter path.
    fn stream_step_batch_impl(
        &self,
        scratch: &mut RsrBatch,
        inputs: &[(SegmentId, u8)],
        streams: &mut [&mut RsrStream],
        zs: &mut Vec<f32>,
        step: impl FnOnce(usize, &[f32], &mut [f32], &mut [f32], &mut Vec<f32>),
    ) {
        assert_eq!(inputs.len(), streams.len(), "lane count mismatch");
        let batch = inputs.len();
        let hidden = self.lstm.hidden_dim();
        scratch.xh.clear();
        scratch.c.clear();
        for (&(seg, _), stream) in inputs.iter().zip(streams.iter()) {
            scratch.xh.extend_from_slice(self.embed.lookup(seg.idx()));
            scratch.xh.extend_from_slice(&stream.state.h);
            scratch.c.extend_from_slice(&stream.state.c);
        }
        scratch.h.clear();
        scratch.h.resize(batch * hidden, 0.0);
        step(
            batch,
            &scratch.xh,
            &mut scratch.c,
            &mut scratch.h,
            &mut scratch.z,
        );
        zs.clear();
        for (lane, (&(_, nrf), stream)) in inputs.iter().zip(streams.iter_mut()).enumerate() {
            let h = &scratch.h[lane * hidden..(lane + 1) * hidden];
            stream.state.h.copy_from_slice(h);
            stream
                .state
                .c
                .copy_from_slice(&scratch.c[lane * hidden..(lane + 1) * hidden]);
            zs.extend_from_slice(h);
            zs.extend_from_slice(self.nrf_embed.lookup(nrf as usize));
        }
    }

    /// Label probabilities for a representation `z` (used by the
    /// "w/o ASDNet" ablation, which classifies directly from RSRNet).
    pub fn classify(&self, z: &[f32]) -> [f32; 2] {
        let mut logits = vec![0.0; 2];
        self.head.infer(z, &mut logits);
        Self::classify_from_logits([logits[0], logits[1]])
    }

    /// Label probabilities from the head's raw logits. Shared by the scalar
    /// [`RsrNet::classify`] path and the engine's batched head pass so both
    /// make bit-identical decisions.
    pub fn classify_from_logits(logits: [f32; 2]) -> [f32; 2] {
        let mut p = logits;
        softmax2(&mut p);
        p
    }
}

#[inline]
fn softmax2(p: &mut [f32; 2]) {
    let m = p[0].max(p[1]);
    let e0 = (p[0] - m).exp();
    let e1 = (p[1] - m).exp();
    let s = e0 + e1;
    p[0] = e0 / s;
    p[1] = e1 / s;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_net(seed: u64) -> RsrNet {
        let cfg = Rl4oasdConfig {
            embed_dim: 10,
            hidden_dim: 8,
            nrf_dim: 4,
            ..Rl4oasdConfig::tiny(seed)
        };
        RsrNet::new(&cfg, 20, None)
    }

    fn toy_batch() -> (Vec<SegmentId>, Vec<u8>, Vec<u8>) {
        let segs: Vec<SegmentId> = [0u32, 3, 7, 7, 2, 9]
            .iter()
            .map(|&i| SegmentId(i))
            .collect();
        let nrf = vec![0, 0, 1, 1, 1, 0];
        let labels = vec![0, 0, 1, 1, 1, 0];
        (segs, nrf, labels)
    }

    #[test]
    fn forward_shapes() {
        let net = tiny_net(1);
        let (segs, nrf, _) = toy_batch();
        let fwd = net.forward(&segs, &nrf);
        assert_eq!(fwd.zs.len(), 6);
        assert_eq!(fwd.zs[0].len(), net.z_dim());
        for p in &fwd.probs {
            assert!((p[0] + p[1] - 1.0).abs() < 1e-5);
            assert!(p[0] > 0.0 && p[1] > 0.0);
        }
    }

    #[test]
    fn training_reduces_loss() {
        let mut net = tiny_net(2);
        let (segs, nrf, labels) = toy_batch();
        let first = net.loss(&segs, &nrf, &labels);
        let mut last = first;
        for _ in 0..60 {
            last = net.train_step(&segs, &nrf, &labels, 0.01);
        }
        let final_loss = net.loss(&segs, &nrf, &labels);
        assert!(
            final_loss < first * 0.5,
            "loss did not decrease: {first} -> {final_loss} (last step {last})"
        );
    }

    #[test]
    fn gradcheck_full_model() {
        // Finite-difference check through embedding, LSTM, NRF and head.
        let mut net = tiny_net(3);
        let (segs, nrf, labels) = toy_batch();
        net.zero_grad();
        let fwd = net.forward(&segs, &nrf);
        net.backward(&fwd, &labels);
        let segs2 = segs.clone();
        let nrf2 = nrf.clone();
        let labels2 = labels.clone();
        nn::gradcheck::check_model_gradients(
            &mut net,
            &move |m: &RsrNet| m.loss(&segs2, &nrf2, &labels2),
            &|m: &mut RsrNet| m.params_mut(),
            2e-2,
            5e-2,
        );
    }

    #[test]
    fn stream_matches_batch_forward() {
        let net = tiny_net(4);
        let (segs, nrf, _) = toy_batch();
        let fwd = net.forward(&segs, &nrf);
        let mut stream = net.stream();
        for i in 0..segs.len() {
            let z = net.stream_step(&mut stream, segs[i], nrf[i]);
            for (a, b) in z.iter().zip(&fwd.zs[i]) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn stream_step_batch_matches_scalar_bitwise() {
        let net = tiny_net(8);
        let (segs, nrf, _) = toy_batch();
        // Three lanes at different positions of the same toy trajectory.
        let mut scalar: Vec<RsrStream> = (0..3).map(|_| net.stream()).collect();
        let mut batched: Vec<RsrStream> = (0..3).map(|_| net.stream()).collect();
        for (lane, s) in scalar.iter_mut().enumerate() {
            for i in 0..lane {
                net.stream_step(s, segs[i], nrf[i]);
            }
        }
        for (lane, s) in batched.iter_mut().enumerate() {
            for i in 0..lane {
                net.stream_step(s, segs[i], nrf[i]);
            }
        }
        // Advance all three lanes twice: once scalar, once batched.
        let mut scratch = RsrBatch::default();
        for step in 0..2 {
            let inputs: Vec<(SegmentId, u8)> = (0..3)
                .map(|lane| (segs[lane + step], nrf[lane + step]))
                .collect();
            let scalar_zs: Vec<Vec<f32>> = scalar
                .iter_mut()
                .enumerate()
                .map(|(lane, s)| net.stream_step(s, inputs[lane].0, inputs[lane].1))
                .collect();
            let mut streams: Vec<&mut RsrStream> = batched.iter_mut().collect();
            let mut zs = Vec::new();
            net.stream_step_batch(&mut scratch, &inputs, &mut streams, &mut zs);
            let z_dim = net.z_dim();
            for (lane, scalar_z) in scalar_zs.iter().enumerate() {
                assert_eq!(
                    &zs[lane * z_dim..(lane + 1) * z_dim],
                    &scalar_z[..],
                    "step {step} lane {lane}"
                );
            }
        }
    }

    #[test]
    fn classify_matches_forward_probs() {
        let net = tiny_net(5);
        let (segs, nrf, _) = toy_batch();
        let fwd = net.forward(&segs, &nrf);
        for i in 0..segs.len() {
            let p = net.classify(&fwd.zs[i]);
            assert!((p[0] - fwd.probs[i][0]).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_panic() {
        let net = tiny_net(6);
        net.forward(&[SegmentId(0)], &[0, 1]);
    }

    #[test]
    fn toast_init_is_used() {
        let cfg = Rl4oasdConfig {
            embed_dim: 10,
            hidden_dim: 8,
            nrf_dim: 4,
            ..Rl4oasdConfig::tiny(7)
        };
        let init: Vec<f32> = (0..20 * 10).map(|i| i as f32 / 100.0).collect();
        let net = RsrNet::new(&cfg, 20, Some(init.clone()));
        assert_eq!(net.embed.lookup(3), &init[30..40]);
    }
}
