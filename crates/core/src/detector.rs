//! The RL4OASD online detection algorithm (paper Algorithm 1) with the
//! Road Network Enhanced Labeling (RNEL) and Delayed Labeling (DL)
//! enhancements (§IV-E).
//!
//! Per observed road segment the detector:
//!
//! 1. pins the source and destination segments to normal (lines 2–3);
//! 2. obtains `z_i` from RSRNet's streaming pass (line 5);
//! 3. applies the RNEL degree rules where the label is deterministic from
//!    the road-network structure — skipping the policy entirely (which is
//!    also where the efficiency win comes from);
//! 4. otherwise samples/argmaxes the policy on `s_i = [z_i ; v(prev)]`
//!    (lines 6–8).
//!
//! `finish` applies Delayed Labeling: 0-gaps shorter than `D` between
//! anomalous runs are converted to 1, avoiding fragmented subtrajectories.

use crate::asdnet::AsdNet;
use crate::config::Rl4oasdConfig;
use crate::packed::PackedModel;
use crate::preprocess::Preprocessor;
use crate::rsrnet::{RsrNet, RsrStream};
use crate::train::TrainedModel;
use rnet::{RoadNetwork, SegmentId};
use traj::{slot_of_time, Hibernate, OnlineDetector, SdPair};

/// Borrowed, read-only view of everything a detection step consults: the
/// trained model's parts (raw and packed) plus the road network. Shared by
/// the single-session [`Rl4oasdDetector`] and the fleet-scale
/// [`crate::StreamEngine`], so both run the exact same per-step logic.
#[derive(Clone, Copy)]
pub(crate) struct ModelView<'a> {
    pub config: &'a Rl4oasdConfig,
    pub pre: &'a Preprocessor,
    pub rsrnet: &'a RsrNet,
    pub asdnet: &'a AsdNet,
    pub net: &'a RoadNetwork,
    /// Packed hot-path weights; every nn step in detection runs on these.
    pub packed: &'a PackedModel,
}

impl<'a> ModelView<'a> {
    pub fn of(model: &'a TrainedModel, net: &'a RoadNetwork) -> Self {
        ModelView {
            config: &model.config,
            pre: &model.preprocessor,
            rsrnet: &model.rsrnet,
            asdnet: &model.asdnet,
            net,
            packed: model.packed(),
        }
    }
}

/// Reusable per-step buffers of the scalar detection path: the LSTM
/// scratch, the representation `z_i` and the policy-state vector. One per
/// detector (or per engine, for its scalar ticks) — the hot path allocates
/// nothing once these are warm.
#[derive(Debug, Default)]
pub(crate) struct StepScratch {
    pub lstm: nn::LstmScratch,
    pub z: Vec<f32>,
    pub state: Vec<f32>,
}

/// Decision diagnostics: how often RNEL short-circuited the policy.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct DecisionCounters {
    pub rnel_hits: usize,
    pub policy_calls: usize,
}

/// What a step needs after the representation `z` is available.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Pending {
    /// The label is already determined (endpoint pinning or an RNEL rule);
    /// the nn step still runs to advance the stream state.
    Fixed(u8),
    /// The policy (or the "w/o ASDNet" classifier) must be consulted on
    /// `z`.
    Policy,
}

/// Compact per-session state of Algorithm 1: the RSRNet stream, the pinned
/// SD pair/time slot, the previous segment and label (for RNEL and the
/// policy state), and the provisional labels (for Delayed Labeling).
///
/// All model access goes through a [`ModelView`] argument, so thousands of
/// sessions share one immutable model and each session is only a few
/// hundred bytes (two `hidden_dim` vectors plus the label buffer).
#[derive(Debug, Clone)]
pub(crate) struct SessionState {
    stream: RsrStream,
    sd: SdPair,
    slot: usize,
    prev_seg: Option<SegmentId>,
    prev_label: u8,
    labels: Vec<u8>,
}

impl SessionState {
    /// Opens a session for a trip of the given SD pair and start time.
    pub fn open(view: &ModelView, sd: SdPair, start_time: f64) -> Self {
        SessionState {
            stream: view.rsrnet.stream(),
            sd,
            slot: slot_of_time(start_time),
            prev_seg: None,
            prev_label: 0,
            labels: Vec::new(),
        }
    }

    /// The incoming segment's NRF and whether it is a pinned endpoint
    /// (evaluated *before* the nn step — Algorithm 1 lines 2–3).
    pub fn pre_step(&self, view: &ModelView, segment: SegmentId) -> (u8, bool) {
        let is_endpoint = self.labels.is_empty() || segment == self.sd.dest;
        let nrf = view
            .pre
            .nrf_at(self.sd, self.slot, self.prev_seg, segment, is_endpoint);
        (nrf, is_endpoint)
    }

    /// Resolves everything decidable without `z`: endpoint pinning and the
    /// RNEL degree rules (§IV-E). Returns [`Pending::Policy`] when the nn
    /// heads must be consulted.
    pub fn plan(
        &self,
        view: &ModelView,
        segment: SegmentId,
        is_endpoint: bool,
        counters: &mut DecisionCounters,
    ) -> Pending {
        if is_endpoint {
            return Pending::Fixed(0); // Algorithm 1 lines 2–3
        }
        if let (true, Some(prev)) = (view.config.use_rnel, self.prev_seg) {
            if let Some(label) = rnel(view.net, prev, segment, self.prev_label) {
                counters.rnel_hits += 1;
                return Pending::Fixed(label);
            }
        }
        counters.policy_calls += 1;
        Pending::Policy
    }

    /// The nn decision for a [`Pending::Policy`] step, given this step's
    /// representation `z`. Runs on the packed head weights; `state_buf` is
    /// the reusable policy-state buffer (`[z ; v(prev_label)]`).
    pub fn decide_policy(&self, view: &ModelView, z: &[f32], state_buf: &mut Vec<f32>) -> u8 {
        let mut logits = [0.0f32; 2];
        if view.config.use_asdnet {
            state_buf.clear();
            self.append_policy_state(view, z, state_buf);
            view.packed.policy.infer(state_buf, &mut logits);
            AsdNet::greedy_from_logits(logits)
        } else {
            // Ablation "w/o ASDNet": an ordinary classifier on RSRNet
            // outputs.
            view.packed.head.infer(z, &mut logits);
            let p = RsrNet::classify_from_logits(logits);
            u8::from(p[1] > p[0])
        }
    }

    /// Appends the policy-head input `s_i = [z_i ; v(prev_label)]` to
    /// `out` (batched path; same bytes as [`AsdNet::state`], without the
    /// per-lane allocation).
    pub fn append_policy_state(&self, view: &ModelView, z: &[f32], out: &mut Vec<f32>) {
        out.extend_from_slice(z);
        out.extend_from_slice(view.asdnet.label_embed.lookup(self.prev_label as usize));
    }

    /// Records the decided label of `segment`.
    pub fn commit(&mut self, segment: SegmentId, label: u8) {
        self.labels.push(label);
        self.prev_label = label;
        self.prev_seg = Some(segment);
    }

    /// One full scalar step: NRF, RSRNet stream step, decision, commit.
    /// This *is* the per-trajectory path; the engine's batched tick differs
    /// only in running the nn passes for many sessions at once
    /// (bit-identically — see `RsrNet::stream_step_batch_packed`). All nn
    /// work runs on the packed weights with the caller's reusable
    /// [`StepScratch`], so a warm session allocates nothing per point.
    pub fn observe(
        &mut self,
        view: &ModelView,
        segment: SegmentId,
        counters: &mut DecisionCounters,
        scratch: &mut StepScratch,
    ) -> u8 {
        let (nrf, is_endpoint) = self.pre_step(view, segment);
        view.rsrnet.stream_step_packed(
            &view.packed.lstm,
            &mut self.stream,
            segment,
            nrf,
            &mut scratch.lstm,
            &mut scratch.z,
        );
        let label = match self.plan(view, segment, is_endpoint, counters) {
            Pending::Fixed(label) => label,
            Pending::Policy => self.decide_policy(view, &scratch.z, &mut scratch.state),
        };
        self.commit(segment, label);
        label
    }

    /// Mutable access to the RSRNet stream (engine batched pass).
    pub fn stream_mut(&mut self) -> &mut RsrStream {
        &mut self.stream
    }

    /// Estimated heap bytes held by this session while resident (stream
    /// vectors + label buffer), for the engine's per-tier memory gauges.
    pub fn resident_heap_bytes(&self) -> usize {
        let state = self.stream.state();
        (state.h.capacity() + state.c.capacity()) * std::mem::size_of::<f32>()
            + self.labels.capacity()
    }

    /// Finalises the session: destination pinning plus Delayed Labeling.
    pub fn finish(&mut self, view: &ModelView) -> Vec<u8> {
        let mut labels = std::mem::take(&mut self.labels);
        // Destination pinned normal even if the trajectory ended early.
        if let Some(last) = labels.last_mut() {
            *last = 0;
        }
        if view.config.use_delayed_labeling {
            delayed_labeling(&mut labels, view.config.delay_d);
        }
        self.prev_seg = None;
        self.prev_label = 0;
        labels
    }
}

/// Session hibernation (the memory tier): freeze/thaw of one session's
/// full algorithmic state against the model view of its opening epoch.
///
/// The frozen form is compact and **lossless** — the exact-restore
/// contract of [`Hibernate`] is what makes hibernation invisible to
/// labels (property-tested in `tests/hibernate.rs`):
///
/// * LSTM `h`/`c` vectors are XOR-delta-encoded bit-for-bit against the
///   model's initial stream state ([`RsrNet::stream`] — all zeros today,
///   so the delta is the identity on the bit pattern, but the encoding
///   stays exact for any initial state);
/// * the provisional label buffer is run-length packed (binary labels,
///   alternating runs) — the dominant saving for long trips, where the
///   hot buffer is one byte per observed segment;
/// * scalars (slot, SD pair, previous segment/label) go through varints,
///   and the `hidden_dim` is encoded so the blob is self-describing.
impl Hibernate<ModelView<'_>> for SessionState {
    fn freeze(&self, ctx: &ModelView, out: &mut Vec<u8>) {
        use traj::hibernate::{put_f32_delta, put_runs, put_varint};
        put_varint(out, self.slot as u64);
        put_varint(out, u64::from(self.sd.source.0));
        put_varint(out, u64::from(self.sd.dest.0));
        put_varint(out, self.prev_seg.map_or(0, |s| u64::from(s.0) + 1));
        out.push(self.prev_label);
        put_runs(out, &self.labels);
        let init = ctx.rsrnet.stream();
        let (init, state) = (init.state(), self.stream.state());
        put_varint(out, state.h.len() as u64);
        put_f32_delta(out, &state.h, &init.h);
        put_f32_delta(out, &state.c, &init.c);
    }

    fn thaw(ctx: &ModelView, bytes: &[u8]) -> Self {
        use traj::hibernate::{get_f32_delta, get_runs, get_varint};
        let mut cursor = bytes;
        let slot = get_varint(&mut cursor) as usize;
        let sd = SdPair {
            source: SegmentId(get_varint(&mut cursor) as u32),
            dest: SegmentId(get_varint(&mut cursor) as u32),
        };
        let prev_seg = match get_varint(&mut cursor) {
            0 => None,
            s => Some(SegmentId((s - 1) as u32)),
        };
        let (prev_label, rest) = cursor.split_first().expect("truncated frozen session");
        let prev_label = *prev_label;
        cursor = rest;
        let mut labels = Vec::new();
        get_runs(&mut cursor, &mut labels);
        let init_stream = ctx.rsrnet.stream();
        let init = init_stream.state();
        let hidden = get_varint(&mut cursor) as usize;
        assert_eq!(
            hidden,
            init.h.len(),
            "frozen session hidden_dim does not match its model epoch"
        );
        let mut h = Vec::new();
        let mut c = Vec::new();
        get_f32_delta(&mut cursor, &init.h, &mut h);
        get_f32_delta(&mut cursor, &init.c, &mut c);
        assert!(cursor.is_empty(), "trailing bytes in frozen session");
        SessionState {
            stream: RsrStream::from_state(nn::LstmState { h, c }),
            sd,
            slot,
            prev_seg,
            prev_label,
            labels,
        }
    }
}

/// The RNEL rules (§IV-E). Returns a deterministic label when one of the
/// three degree cases applies.
pub(crate) fn rnel(
    net: &RoadNetwork,
    prev: SegmentId,
    cur: SegmentId,
    prev_label: u8,
) -> Option<u8> {
    let out_prev = net.out_degree(prev);
    let in_cur = net.in_degree(cur);
    if out_prev == 1 && in_cur == 1 {
        Some(prev_label) // case (1): no alternatives on either side
    } else if out_prev == 1 && in_cur > 1 && prev_label == 0 {
        Some(0) // case (2)
    } else if out_prev > 1 && in_cur == 1 && prev_label == 1 {
        Some(1) // case (3)
    } else {
        None
    }
}

/// Delayed Labeling (§IV-E): fills 0-gaps strictly shorter than `d` that
/// separate two anomalous runs.
pub(crate) fn delayed_labeling(labels: &mut [u8], d: usize) {
    if d == 0 {
        return;
    }
    let n = labels.len();
    let mut i = 0;
    while i < n {
        if labels[i] == 1 {
            // find the end of this 1-run
            let mut j = i;
            while j + 1 < n && labels[j + 1] == 1 {
                j += 1;
            }
            // gap of zeros after the run
            let gap_start = j + 1;
            let mut k = gap_start;
            while k < n && labels[k] == 0 {
                k += 1;
            }
            if k < n && k - gap_start < d {
                // a later 1 within the window: fill the gap
                for l in labels.iter_mut().take(k).skip(gap_start) {
                    *l = 1;
                }
                i = j + 1; // re-scan from the merged run
            } else {
                i = k;
            }
        } else {
            i += 1;
        }
    }
}

/// Where a detector's packed weights come from: borrowed from a
/// [`TrainedModel`]'s shared cache, or owned (packed at construction from
/// loose parts during training's dev-set evaluation).
enum PackedSource<'a> {
    Shared(&'a PackedModel),
    Owned(Box<PackedModel>),
}

impl PackedSource<'_> {
    #[inline]
    fn get(&self) -> &PackedModel {
        match self {
            PackedSource::Shared(p) => p,
            PackedSource::Owned(p) => p,
        }
    }
}

/// The borrowed raw parts of a detector, separated from the (possibly
/// owned) packed weights so a [`ModelView`] can be assembled per call
/// without borrowing the whole detector.
#[derive(Clone, Copy)]
struct Parts<'a> {
    config: &'a Rl4oasdConfig,
    pre: &'a Preprocessor,
    rsrnet: &'a RsrNet,
    asdnet: &'a AsdNet,
    net: &'a RoadNetwork,
}

impl<'a> Parts<'a> {
    fn with<'b>(self, packed: &'b PackedModel) -> ModelView<'b>
    where
        'a: 'b,
    {
        ModelView {
            config: self.config,
            pre: self.pre,
            rsrnet: self.rsrnet,
            asdnet: self.asdnet,
            net: self.net,
            packed,
        }
    }
}

/// Online detector over a trained model (or its parts, during training).
///
/// This is the single-session adapter over the shared step logic in
/// `SessionState` (crate-private); the fleet-scale counterpart multiplexing
/// thousands of sessions over one model is [`crate::StreamEngine`]. All nn
/// steps run on packed weights ([`TrainedModel::packed`]) with reusable
/// per-detector scratch, so the per-point path is allocation-free.
pub struct Rl4oasdDetector<'a> {
    parts: Parts<'a>,
    packed: PackedSource<'a>,
    state: SessionState,
    counters: DecisionCounters,
    scratch: StepScratch,
}

impl<'a> Rl4oasdDetector<'a> {
    /// Creates a detector bound to a trained model and road network,
    /// sharing the model's cached packed weights.
    pub fn new(model: &'a TrainedModel, net: &'a RoadNetwork) -> Self {
        Self::build(
            &model.config,
            &model.preprocessor,
            &model.rsrnet,
            &model.asdnet,
            net,
            PackedSource::Shared(model.packed()),
        )
    }

    /// Creates a detector from individual components (used for dev-set
    /// evaluation while training is still in progress); the hot-path
    /// weights are packed once here.
    pub fn from_parts(
        config: &'a Rl4oasdConfig,
        pre: &'a Preprocessor,
        rsrnet: &'a RsrNet,
        asdnet: &'a AsdNet,
        net: &'a RoadNetwork,
    ) -> Self {
        Self::build(
            config,
            pre,
            rsrnet,
            asdnet,
            net,
            PackedSource::Owned(Box::new(PackedModel::of(rsrnet, asdnet))),
        )
    }

    fn build(
        config: &'a Rl4oasdConfig,
        pre: &'a Preprocessor,
        rsrnet: &'a RsrNet,
        asdnet: &'a AsdNet,
        net: &'a RoadNetwork,
        packed: PackedSource<'a>,
    ) -> Self {
        let parts = Parts {
            config,
            pre,
            rsrnet,
            asdnet,
            net,
        };
        let state = SessionState::open(&parts.with(packed.get()), SdPair::default(), 0.0);
        Rl4oasdDetector {
            parts,
            packed,
            state,
            counters: DecisionCounters::default(),
            scratch: StepScratch::default(),
        }
    }

    /// `(RNEL short-circuits, policy invocations)` since construction.
    pub fn decision_counts(&self) -> (usize, usize) {
        (self.counters.rnel_hits, self.counters.policy_calls)
    }

    /// The RNEL rules (§IV-E). Returns a deterministic label when one of
    /// the three cases applies.
    #[cfg(test)]
    fn rnel(&self, prev: SegmentId, cur: SegmentId, prev_label: u8) -> Option<u8> {
        rnel(self.parts.net, prev, cur, prev_label)
    }

    /// Delayed Labeling (§IV-E): fills 0-gaps strictly shorter than `D`
    /// between anomalous runs.
    #[cfg(test)]
    fn delayed_labeling(labels: &mut [u8], d: usize) {
        delayed_labeling(labels, d)
    }
}

impl OnlineDetector for Rl4oasdDetector<'_> {
    fn name(&self) -> &'static str {
        "RL4OASD"
    }

    fn begin(&mut self, sd: SdPair, start_time: f64) {
        let view = self.parts.with(self.packed.get());
        self.state = SessionState::open(&view, sd, start_time);
    }

    fn observe(&mut self, segment: SegmentId) -> u8 {
        let view = self.parts.with(self.packed.get());
        self.state
            .observe(&view, segment, &mut self.counters, &mut self.scratch)
    }

    fn finish(&mut self) -> Vec<u8> {
        let view = self.parts.with(self.packed.get());
        self.state.finish(&view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Rl4oasdConfig;
    use crate::train::train;
    use rnet::{CityBuilder, CityConfig};
    use traj::{Dataset, TrafficConfig, TrafficSimulator};

    fn setup(seed: u64) -> (RoadNetwork, Dataset, TrainedModel) {
        let net = CityBuilder::new(CityConfig::tiny(seed)).build();
        let cfg = TrafficConfig {
            num_sd_pairs: 4,
            trajs_per_pair: (70, 90),
            anomaly_ratio: 0.15,
            ..TrafficConfig::tiny(seed)
        };
        let data = TrafficSimulator::new(&net, cfg).generate();
        let ds = Dataset::from_generated(&data);
        let cfg = Rl4oasdConfig {
            pretrain_trajs: 150,
            joint_trajs: 150,
            ..Rl4oasdConfig::tiny(seed)
        };
        let model = train(&net, &ds, &cfg);
        (net, ds, model)
    }

    #[test]
    fn labels_have_right_shape_and_pinned_endpoints() {
        let (net, ds, model) = setup(1);
        let mut det = Rl4oasdDetector::new(&model, &net);
        for t in ds.trajectories.iter().take(30) {
            let labels = det.label_trajectory(t);
            assert_eq!(labels.len(), t.len());
            assert_eq!(labels[0], 0, "source must be normal");
            assert_eq!(*labels.last().unwrap(), 0, "destination must be normal");
        }
    }

    #[test]
    fn detector_is_reusable_and_deterministic() {
        let (net, ds, model) = setup(2);
        let mut det = Rl4oasdDetector::new(&model, &net);
        let t = &ds.trajectories[0];
        let a = det.label_trajectory(t);
        let b = det.label_trajectory(t);
        assert_eq!(a, b);
    }

    #[test]
    fn detection_beats_always_normal() {
        // The trained detector must achieve nontrivial recall of the
        // injected detours.
        let (net, ds, model) = setup(3);
        let mut det = Rl4oasdDetector::new(&model, &net);
        let outputs: Vec<Vec<u8>> = ds
            .trajectories
            .iter()
            .map(|t| det.label_trajectory(t))
            .collect();
        let truths: Vec<Vec<u8>> = ds
            .trajectories
            .iter()
            .map(|t| ds.truth(t.id).unwrap().to_vec())
            .collect();
        let m = eval::evaluate(&outputs, &truths);
        assert!(m.f1 > 0.3, "F1 = {} too low for a trained model", m.f1);
    }

    #[test]
    fn delayed_labeling_fills_short_gaps() {
        let mut labels = vec![0, 1, 1, 0, 0, 1, 0];
        Rl4oasdDetector::delayed_labeling(&mut labels, 3);
        assert_eq!(labels, vec![0, 1, 1, 1, 1, 1, 0]);

        // Paper semantics: after a 1-run ending at e_{i-1}, the next D
        // segments are scanned for a later 1 (j ≤ i-1+D), so a gap of g
        // zeros is filled iff g < D.
        let mut labels = vec![1, 0, 0, 0, 1];
        Rl4oasdDetector::delayed_labeling(&mut labels, 4);
        assert_eq!(labels, vec![1, 1, 1, 1, 1]);
        let mut labels = vec![1, 0, 0, 0, 1];
        Rl4oasdDetector::delayed_labeling(&mut labels, 3);
        assert_eq!(labels, vec![1, 0, 0, 0, 1]);

        // trailing zeros never filled
        let mut labels = vec![0, 1, 0, 0];
        Rl4oasdDetector::delayed_labeling(&mut labels, 8);
        assert_eq!(labels, vec![0, 1, 0, 0]);

        // D = 0 disables
        let mut labels = vec![1, 0, 1];
        Rl4oasdDetector::delayed_labeling(&mut labels, 0);
        assert_eq!(labels, vec![1, 0, 1]);
    }

    #[test]
    fn rnel_short_circuits_some_decisions() {
        let (net, ds, model) = setup(5);
        let mut det = Rl4oasdDetector::new(&model, &net);
        for t in ds.trajectories.iter().take(50) {
            det.label_trajectory(t);
        }
        let (rnel, policy) = det.decision_counts();
        assert!(policy > 0, "policy must be consulted");
        // The grid has degree-1 chains (removed streets), so RNEL should
        // fire at least occasionally; if the city happens to have none this
        // assertion would need a different seed.
        assert!(rnel + policy > 0);
    }

    #[test]
    fn rnel_rules_match_paper() {
        let (net, _, model) = setup(6);
        let det = Rl4oasdDetector::new(&model, &net);
        // find segments with known degrees to exercise each rule
        for s in net.segment_ids() {
            for &next in net.successors(s) {
                let out_prev = net.out_degree(s);
                let in_cur = net.in_degree(next);
                if out_prev == 1 && in_cur == 1 {
                    assert_eq!(det.rnel(s, next, 0), Some(0));
                    assert_eq!(det.rnel(s, next, 1), Some(1));
                } else if out_prev == 1 && in_cur > 1 {
                    assert_eq!(det.rnel(s, next, 0), Some(0));
                    assert_eq!(det.rnel(s, next, 1), None);
                } else if out_prev > 1 && in_cur == 1 {
                    assert_eq!(det.rnel(s, next, 1), Some(1));
                    assert_eq!(det.rnel(s, next, 0), None);
                } else {
                    assert_eq!(det.rnel(s, next, 0), None);
                    assert_eq!(det.rnel(s, next, 1), None);
                }
            }
        }
    }
}
