//! Async serving entry point for RL4OASD: the
//! [`traj::IngestFrontDoor`] instantiated over [`StreamEngine`] shards.
//!
//! [`crate::ShardedEngine`] scales session serving across cores but is
//! still driven tick-synchronously — one caller owns the engine and hands
//! it whole ticks. [`IngestEngine`] is its asynchronous counterpart for
//! the paper's actual arrival pattern (independent per-point GPS events
//! from a fleet): the same shard layout — N [`StreamEngine`]s behind one
//! `Arc<TrainedModel>` + `Arc<RoadNetwork>`, zero weight duplication —
//! but each shard is owned by a **persistent worker thread** fed through
//! a bounded ingress queue, micro-batching arrivals into `observe_batch`
//! ticks under a [`traj::FlushPolicy`] latency SLO.
//!
//! Producers keep only a cheap cloneable [`IngestHandle`]; labels return
//! through per-session [`traj::Subscription`] outboxes. Per-session label
//! sequences are byte-identical to the synchronous engines for any flush
//! policy and shard count (property-tested in `tests/ingest.rs`).

use crate::engine::{EngineStats, StreamEngine};
use crate::train::TrainedModel;
use rnet::RoadNetwork;
use std::sync::Arc;
use traj::{IngestConfig, IngestFrontDoor, IngestHandle, IngestStats};

/// Aggregate outcome of a graceful [`IngestEngine::shutdown`].
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// Front-door counters: accepted/rejected submits, flushes and the
    /// submit→label latency histogram.
    pub ingest: IngestStats,
    /// Serving statistics summed across all shard engines.
    pub engine: EngineStats,
    /// Per-shard serving statistics (index = shard).
    pub shard_stats: Vec<EngineStats>,
    /// `(RNEL short-circuits, policy invocations)` summed across shards.
    pub decision_counts: (usize, usize),
}

/// The asynchronous RL4OASD serving engine: a [`traj::IngestFrontDoor`]
/// over N [`StreamEngine`] shards sharing one immutable trained model.
///
/// Unlike [`crate::ShardedEngine`], which a single driver thread ticks
/// through `observe_batch`, this engine is fed from any number of
/// producer threads via [`IngestEngine::handle`] and does its model work
/// on persistent per-shard workers. See [`crate::ingest`] module docs.
pub struct IngestEngine {
    door: IngestFrontDoor<StreamEngine>,
}

impl IngestEngine {
    /// Builds `shards` stream engines over one shared trained model and
    /// road network (the `Arc`s are cloned per shard; the weights are
    /// not), each behind its own ingress queue and worker thread.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn new(
        model: Arc<TrainedModel>,
        net: Arc<RoadNetwork>,
        shards: usize,
        config: IngestConfig,
    ) -> Self {
        assert!(shards > 0, "need at least one shard");
        IngestEngine {
            door: IngestFrontDoor::build(
                shards,
                |_| StreamEngine::new(Arc::clone(&model), Arc::clone(&net)),
                config,
            ),
        }
    }

    /// A cheap, cloneable producer handle (open/submit/close).
    pub fn handle(&self) -> IngestHandle {
        self.door.handle()
    }

    /// Number of shards (= ingress queues = persistent worker threads).
    pub fn num_shards(&self) -> usize {
        self.door.num_shards()
    }

    /// Gracefully shuts down: drains every accepted event, joins the
    /// workers and aggregates serving + ingestion statistics.
    pub fn shutdown(self) -> IngestReport {
        let report = self.door.shutdown();
        let shard_stats: Vec<EngineStats> = report.engines.iter().map(|e| e.stats()).collect();
        let engine: EngineStats = shard_stats.iter().copied().sum();
        let decision_counts = report
            .engines
            .iter()
            .map(|e| e.decision_counts())
            .fold((0, 0), |(r, p), (sr, sp)| (r + sr, p + sp));
        IngestReport {
            ingest: report.stats,
            engine,
            shard_stats,
            decision_counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Rl4oasdConfig;
    use crate::train::train;
    use rnet::{CityBuilder, CityConfig};
    use traj::{Dataset, FlushPolicy, SessionEngine, TrafficConfig, TrafficSimulator};

    fn setup(seed: u64) -> (Arc<RoadNetwork>, Dataset, Arc<TrainedModel>) {
        let net = CityBuilder::new(CityConfig::tiny(seed)).build();
        let cfg = TrafficConfig {
            num_sd_pairs: 3,
            trajs_per_pair: (25, 40),
            anomaly_ratio: 0.15,
            ..TrafficConfig::tiny(seed)
        };
        let data = TrafficSimulator::new(&net, cfg).generate();
        let ds = Dataset::from_generated(&data);
        let model = train(&net, &ds, &Rl4oasdConfig::tiny(seed));
        (Arc::new(net), ds, Arc::new(model))
    }

    #[test]
    fn ingest_engine_matches_synchronous_labels() {
        let (net, ds, model) = setup(47);
        let trajs: Vec<_> = ds
            .trajectories
            .iter()
            .filter(|t| !t.is_empty())
            .take(8)
            .cloned()
            .collect();

        // Synchronous reference: one StreamEngine, one session at a time.
        let mut single = StreamEngine::new(Arc::clone(&model), Arc::clone(&net));
        let expected: Vec<Vec<u8>> = trajs
            .iter()
            .map(|t| {
                let h = single.open(t.sd_pair().unwrap(), t.start_time);
                for &seg in &t.segments {
                    single.observe(h, seg);
                }
                single.close(h)
            })
            .collect();

        let engine = IngestEngine::new(
            Arc::clone(&model),
            Arc::clone(&net),
            2,
            IngestConfig {
                flush: FlushPolicy::new(4, std::time::Duration::from_micros(200)),
                ..Default::default()
            },
        );
        let handle = engine.handle();
        let opened: Vec<_> = trajs
            .iter()
            .map(|t| handle.open(t.sd_pair().unwrap(), t.start_time).unwrap())
            .collect();
        // Round-robin interleaved submission across all sessions.
        let max_len = trajs.iter().map(|t| t.len()).max().unwrap();
        for tick in 0..max_len {
            for (k, t) in trajs.iter().enumerate() {
                if tick < t.len() {
                    while handle.submit(opened[k].0, t.segments[tick])
                        == Err(traj::SubmitError::QueueFull)
                    {
                        std::thread::yield_now();
                    }
                }
            }
        }
        let got: Vec<Vec<u8>> = opened
            .iter()
            .map(|(id, _)| handle.close(*id).unwrap().wait())
            .collect();
        assert_eq!(got, expected);

        let report = engine.shutdown();
        let total: usize = trajs.iter().map(|t| t.len()).sum();
        assert_eq!(report.ingest.submitted, total as u64);
        assert_eq!(report.ingest.flushed_events, total as u64);
        assert_eq!(report.engine.observe_events, total as u64);
        assert_eq!(report.engine.sessions_opened, trajs.len() as u64);
        assert_eq!(report.engine.sessions_closed, trajs.len() as u64);
        assert_eq!(report.shard_stats.len(), 2);
        assert_eq!(report.ingest.latency.count(), total as u64);
        assert!(report.decision_counts.0 + report.decision_counts.1 > 0);
    }

    #[test]
    #[should_panic(expected = "need at least one shard")]
    fn zero_shards_rejected() {
        let (net, _, model) = setup(48);
        let _ = IngestEngine::new(model, net, 0, IngestConfig::default());
    }
}
