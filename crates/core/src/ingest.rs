//! Async serving entry point for RL4OASD: the
//! [`traj::IngestFrontDoor`] instantiated over [`StreamEngine`] shards.
//!
//! [`crate::ShardedEngine`] scales session serving across cores but is
//! still driven tick-synchronously — one caller owns the engine and hands
//! it whole ticks. [`IngestEngine`] is its asynchronous counterpart for
//! the paper's actual arrival pattern (independent per-point GPS events
//! from a fleet): the same shard layout — N [`StreamEngine`]s behind one
//! `Arc<TrainedModel>` + `Arc<RoadNetwork>`, zero weight duplication —
//! but each shard is owned by a **persistent worker thread** fed through
//! a bounded ingress queue, micro-batching arrivals into `observe_batch`
//! ticks under a [`traj::FlushPolicy`] latency SLO.
//!
//! Producers keep only a cheap cloneable [`IngestHandle`]; labels return
//! through per-session [`traj::Subscription`] outboxes. Per-session label
//! sequences are byte-identical to the synchronous engines for any flush
//! policy and shard count (property-tested in `tests/ingest.rs`).
//!
//! The engine also serves through **model hot-swaps**: [`SwapModel`] lets
//! any handle broadcast a retrained model into the running engine, applied
//! per shard at a flush boundary with per-session model epochs — see the
//! trait docs and `docs/ARCHITECTURE.md`.

use crate::engine::{EngineStats, EpochStats, HibernationConfig, StreamEngine};
use crate::train::TrainedModel;
use obs::{Obs, Snapshot};
use rnet::RoadNetwork;
use std::sync::Arc;
use traj::{IngestConfig, IngestFrontDoor, IngestHandle, IngestStats, SubmitError};

/// Aggregate outcome of a graceful [`IngestEngine::shutdown`].
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// Front-door counters: accepted/rejected submits, flushes and the
    /// submit→label latency histogram.
    pub ingest: IngestStats,
    /// Serving statistics summed across all shard engines.
    pub engine: EngineStats,
    /// Per-shard serving statistics (index = shard).
    pub shard_stats: Vec<EngineStats>,
    /// `(RNEL short-circuits, policy invocations)` summed across shards.
    pub decision_counts: (usize, usize),
    /// Per-epoch decision/alert counters summed across shards, indexed by
    /// swap sequence number (0 = construction model).
    pub epoch_stats: Vec<EpochStats>,
    /// Final telemetry snapshot, taken after the last worker joined (so
    /// every flush, sweep and swap is in). Empty when the engine ran with
    /// telemetry disabled ([`IngestConfig::obs`]).
    pub obs: Snapshot,
}

/// The asynchronous RL4OASD serving engine: a [`traj::IngestFrontDoor`]
/// over N [`StreamEngine`] shards sharing one immutable trained model.
///
/// Unlike [`crate::ShardedEngine`], which a single driver thread ticks
/// through `observe_batch`, this engine is fed from any number of
/// producer threads via [`IngestEngine::handle`] and does its model work
/// on persistent per-shard workers. See [`crate::ingest`] module docs.
pub struct IngestEngine {
    door: IngestFrontDoor<StreamEngine>,
    /// The telemetry handle the engine was built with
    /// ([`IngestConfig::obs`]); disabled by default.
    obs: Obs,
}

impl IngestEngine {
    /// Builds `shards` stream engines over one shared trained model and
    /// road network (the `Arc`s are cloned per shard; the weights are
    /// not), each behind its own ingress queue and worker thread.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn new(
        model: Arc<TrainedModel>,
        net: Arc<RoadNetwork>,
        shards: usize,
        config: IngestConfig,
    ) -> Self {
        Self::build(model, net, shards, config, None)
    }

    /// [`IngestEngine::new`] with idle-session hibernation enabled on
    /// every shard engine. Each shard worker also forces a sweep at every
    /// flush boundary (the [`traj::SessionEngine::maintain`] hook — the
    /// same seam hot-swap control commands are applied at), so idle
    /// sessions are evicted even when the worker's tick clock advances
    /// slowly. Labels are unchanged by construction; see
    /// `tests/hibernate.rs`.
    pub fn with_hibernation(
        model: Arc<TrainedModel>,
        net: Arc<RoadNetwork>,
        shards: usize,
        config: IngestConfig,
        hibernation: HibernationConfig,
    ) -> Self {
        Self::build(model, net, shards, config, Some(hibernation))
    }

    /// [`IngestEngine::new`] with **supervised** shard workers: each
    /// worker runs its batch loop under a panic boundary. A panicking
    /// shard (torn state, poisoned event, injected fault) is restarted in
    /// place — the supervisor quarantines only the sessions implicated in
    /// the aborted batch with an explicit [`traj::SessionFault`], rebuilds
    /// the shard's [`StreamEngine`] from this constructor's factory, and
    /// salvages every other session across via the hibernation codec
    /// (byte-identical labels for unaffected sessions; property-tested in
    /// `tests/faults.rs`). Pass `hibernation` to also enable the idle
    /// sweep, exactly as [`IngestEngine::with_hibernation`] does.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn supervised(
        model: Arc<TrainedModel>,
        net: Arc<RoadNetwork>,
        shards: usize,
        config: IngestConfig,
        hibernation: Option<HibernationConfig>,
    ) -> Self {
        assert!(shards > 0, "need at least one shard");
        let obs = config.obs.clone();
        let factory_obs = obs.clone();
        IngestEngine {
            door: IngestFrontDoor::build_supervised(
                shards,
                move |i| {
                    let mut engine = StreamEngine::new(Arc::clone(&model), Arc::clone(&net));
                    engine.set_hibernation(hibernation);
                    engine.set_obs(&factory_obs, i);
                    engine
                },
                config,
            ),
            obs,
        }
    }

    fn build(
        model: Arc<TrainedModel>,
        net: Arc<RoadNetwork>,
        shards: usize,
        config: IngestConfig,
        hibernation: Option<HibernationConfig>,
    ) -> Self {
        assert!(shards > 0, "need at least one shard");
        let obs = config.obs.clone();
        IngestEngine {
            door: IngestFrontDoor::build(
                shards,
                |i| {
                    let mut engine = StreamEngine::new(Arc::clone(&model), Arc::clone(&net));
                    engine.set_hibernation(hibernation);
                    engine.set_obs(&obs, i);
                    engine
                },
                config,
            ),
            obs,
        }
    }

    /// The engine's telemetry handle — snapshot it any time for a live
    /// ops view ([`Obs::snapshot`] is safe concurrently with serving).
    /// Disabled unless the engine was built with an enabled
    /// [`IngestConfig::obs`].
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// A cheap, cloneable producer handle (open/submit/close, plus the
    /// [`SwapModel::swap_model`] hot-swap broadcast).
    pub fn handle(&self) -> IngestHandle<StreamEngine> {
        self.door.handle()
    }

    /// Number of shards (= ingress queues = persistent worker threads).
    pub fn num_shards(&self) -> usize {
        self.door.num_shards()
    }

    /// Gracefully shuts down: drains every accepted event, joins the
    /// workers and aggregates serving + ingestion statistics.
    pub fn shutdown(self) -> IngestReport {
        let IngestEngine { door, obs } = self;
        let report = door.shutdown();
        let shard_stats: Vec<EngineStats> = report.engines.iter().map(|e| e.stats()).collect();
        let engine: EngineStats = shard_stats.iter().copied().sum();
        let decision_counts = report
            .engines
            .iter()
            .map(|e| e.decision_counts())
            .fold((0, 0), |(r, p), (sr, sp)| (r + sr, p + sp));
        let mut epoch_stats: Vec<EpochStats> = Vec::new();
        for shard in &report.engines {
            for (seq, &stats) in shard.epoch_stats().iter().enumerate() {
                if seq == epoch_stats.len() {
                    epoch_stats.push(EpochStats::default());
                }
                epoch_stats[seq] += stats;
            }
        }
        IngestReport {
            ingest: report.stats,
            engine,
            shard_stats,
            decision_counts,
            epoch_stats,
            obs: obs.snapshot(),
        }
    }
}

/// Zero-downtime model hot-swap on a **running** [`IngestEngine`]: the
/// extension of the typed [`IngestHandle<StreamEngine>`] that broadcasts a
/// retrained [`TrainedModel`] to every shard worker.
///
/// The swap rides the existing per-shard FIFO ingress queues as a control
/// command, applied by each worker at its next **flush boundary** (pending
/// micro-batch flushed first), so it never splits a batch and never drops,
/// reorders or relabels an in-flight event. Per the [`StreamEngine`] epoch
/// contract, sessions opened *after* the swap (their `open` is behind the
/// command in the same queue) run the new weights; sessions already open
/// drain to completion on the `Arc` of the model they started with, which
/// is freed when their last session closes. Property-tested end-to-end in
/// `tests/hotswap.rs`.
pub trait SwapModel {
    /// Broadcasts `model` to every shard; see the trait docs for the
    /// exact semantics. Blocks only for queue space (a partial swap would
    /// be worse); returns [`SubmitError::ShutDown`] once the engine shut
    /// down.
    ///
    /// # Example
    ///
    /// ```
    /// use rl4oasd::{IngestEngine, Rl4oasdConfig, SwapModel};
    /// use rnet::{CityBuilder, CityConfig};
    /// use std::sync::Arc;
    /// use traj::{Dataset, IngestConfig, TrafficConfig, TrafficSimulator};
    ///
    /// let net = CityBuilder::new(CityConfig::tiny(9)).build();
    /// let data = TrafficSimulator::new(&net, TrafficConfig::tiny(9)).generate();
    /// let ds = Dataset::from_generated(&data);
    /// let v1 = Arc::new(rl4oasd::train(&net, &ds, &Rl4oasdConfig::tiny(9)));
    /// let v2 = Arc::new(rl4oasd::train(&net, &ds, &Rl4oasdConfig::tiny(10)));
    ///
    /// let engine = IngestEngine::new(v1, Arc::new(net), 2, IngestConfig::default());
    /// let handle = engine.handle();
    /// let trip = ds.trajectories.iter().find(|t| !t.is_empty()).unwrap();
    /// let (old_session, _labels) = handle.open(trip.sd_pair().unwrap(), trip.start_time).unwrap();
    ///
    /// handle.swap_model(v2).unwrap(); // live: the stream keeps flowing
    ///
    /// // `old_session` keeps serving on v1; sessions opened now run v2.
    /// let (new_session, _labels) = handle.open(trip.sd_pair().unwrap(), trip.start_time).unwrap();
    /// for &segment in &trip.segments {
    ///     handle.submit_blocking(old_session, segment).unwrap();
    ///     handle.submit_blocking(new_session, segment).unwrap();
    /// }
    /// assert_eq!(handle.close(old_session).unwrap().wait().unwrap().len(), trip.len());
    /// assert_eq!(handle.close(new_session).unwrap().wait().unwrap().len(), trip.len());
    /// let report = engine.shutdown();
    /// assert_eq!(report.engine.model_swaps, 2); // one per shard
    /// ```
    fn swap_model(&self, model: Arc<TrainedModel>) -> Result<(), SubmitError>;

    /// Broadcasts `model` as the serving model for **scope** (tenant)
    /// `scope` only — the multi-tenant form of
    /// [`SwapModel::swap_model`], backed by
    /// [`StreamEngine::set_scope_model`] on every shard. Sessions opened
    /// afterwards via `IngestHandle::open_scoped` with this scope run the
    /// new model; the scope's already-open sessions drain on their
    /// original weights, and **other scopes (and plain opens) are never
    /// relabelled** — tenant isolation is property-tested in
    /// `tests/serve.rs`. Same delivery guarantees as `swap_model`.
    fn swap_scope_model(&self, scope: u32, model: Arc<TrainedModel>) -> Result<(), SubmitError>;
}

impl SwapModel for IngestHandle<StreamEngine> {
    fn swap_model(&self, model: Arc<TrainedModel>) -> Result<(), SubmitError> {
        // Pack the hot-path weights here, once, on the publisher's thread —
        // not lazily on a shard worker between flushes.
        model.packed();
        self.control(move |engine: &mut StreamEngine| engine.swap_model(Arc::clone(&model)))
    }

    fn swap_scope_model(&self, scope: u32, model: Arc<TrainedModel>) -> Result<(), SubmitError> {
        model.packed();
        self.control(move |engine: &mut StreamEngine| {
            engine.set_scope_model(scope, Arc::clone(&model))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Rl4oasdConfig;
    use crate::train::train;
    use rnet::{CityBuilder, CityConfig};
    use traj::{Dataset, FlushPolicy, SessionEngine, TrafficConfig, TrafficSimulator};

    fn setup(seed: u64) -> (Arc<RoadNetwork>, Dataset, Arc<TrainedModel>) {
        let net = CityBuilder::new(CityConfig::tiny(seed)).build();
        let cfg = TrafficConfig {
            num_sd_pairs: 3,
            trajs_per_pair: (25, 40),
            anomaly_ratio: 0.15,
            ..TrafficConfig::tiny(seed)
        };
        let data = TrafficSimulator::new(&net, cfg).generate();
        let ds = Dataset::from_generated(&data);
        let model = train(&net, &ds, &Rl4oasdConfig::tiny(seed));
        (Arc::new(net), ds, Arc::new(model))
    }

    #[test]
    fn ingest_engine_matches_synchronous_labels() {
        let (net, ds, model) = setup(47);
        let trajs: Vec<_> = ds
            .trajectories
            .iter()
            .filter(|t| !t.is_empty())
            .take(8)
            .cloned()
            .collect();

        // Synchronous reference: one StreamEngine, one session at a time.
        let mut single = StreamEngine::new(Arc::clone(&model), Arc::clone(&net));
        let expected: Vec<Vec<u8>> = trajs
            .iter()
            .map(|t| {
                let h = single.open(t.sd_pair().unwrap(), t.start_time);
                for &seg in &t.segments {
                    single.observe(h, seg);
                }
                single.close(h)
            })
            .collect();

        let engine = IngestEngine::new(
            Arc::clone(&model),
            Arc::clone(&net),
            2,
            IngestConfig {
                flush: FlushPolicy::new(4, std::time::Duration::from_micros(200)),
                ..Default::default()
            },
        );
        let handle = engine.handle();
        let opened: Vec<_> = trajs
            .iter()
            .map(|t| handle.open(t.sd_pair().unwrap(), t.start_time).unwrap())
            .collect();
        // Round-robin interleaved submission across all sessions.
        let max_len = trajs.iter().map(|t| t.len()).max().unwrap();
        for tick in 0..max_len {
            for (k, t) in trajs.iter().enumerate() {
                if tick < t.len() {
                    while handle.submit(opened[k].0, t.segments[tick])
                        == Err(traj::SubmitError::QueueFull)
                    {
                        std::thread::yield_now();
                    }
                }
            }
        }
        let got: Vec<Vec<u8>> = opened
            .iter()
            .map(|(id, _)| handle.close(*id).unwrap().wait().unwrap())
            .collect();
        assert_eq!(got, expected);

        let report = engine.shutdown();
        let total: usize = trajs.iter().map(|t| t.len()).sum();
        assert_eq!(report.ingest.submitted, total as u64);
        assert_eq!(report.ingest.flushed_events, total as u64);
        assert_eq!(report.engine.observe_events, total as u64);
        assert_eq!(report.engine.sessions_opened, trajs.len() as u64);
        assert_eq!(report.engine.sessions_closed, trajs.len() as u64);
        assert_eq!(report.shard_stats.len(), 2);
        assert_eq!(report.ingest.latency.count(), total as u64);
        assert!(report.decision_counts.0 + report.decision_counts.1 > 0);
    }

    #[test]
    #[should_panic(expected = "need at least one shard")]
    fn zero_shards_rejected() {
        let (net, _, model) = setup(48);
        let _ = IngestEngine::new(model, net, 0, IngestConfig::default());
    }
}
