//! Segment-level (pointwise) metrics complementing the span-level F1/TF1.
//!
//! The paper evaluates at span level (Eq. 6–7); segment-level
//! precision/recall/accuracy are the standard complementary view used by
//! the related detection literature and are useful for debugging detectors
//! (a span-level miss can be a 1-segment boundary error or a full miss —
//! pointwise counts distinguish them).

use serde::{Deserialize, Serialize};

/// Pointwise confusion counts and derived rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Confusion {
    /// Anomalous predicted anomalous.
    pub tp: usize,
    /// Normal predicted anomalous.
    pub fp: usize,
    /// Anomalous predicted normal.
    pub fn_: usize,
    /// Normal predicted normal.
    pub tn: usize,
}

impl Confusion {
    /// Accumulates one aligned (output, truth) pair.
    pub fn update(&mut self, output: &[u8], truth: &[u8]) {
        assert_eq!(output.len(), truth.len(), "label length mismatch");
        for (&o, &t) in output.iter().zip(truth) {
            match (o, t) {
                (1, 1) => self.tp += 1,
                (1, 0) => self.fp += 1,
                (0, 1) => self.fn_ += 1,
                _ => self.tn += 1,
            }
        }
    }

    /// Builds confusion counts over a corpus.
    pub fn of_corpus(outputs: &[Vec<u8>], truths: &[Vec<u8>]) -> Self {
        assert_eq!(outputs.len(), truths.len(), "corpus size mismatch");
        let mut c = Confusion::default();
        for (o, t) in outputs.iter().zip(truths) {
            c.update(o, t);
        }
        c
    }

    /// Total labelled points.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// Pointwise precision (0 when nothing was predicted anomalous).
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Pointwise recall (0 when nothing is anomalous).
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// Pointwise F1.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Pointwise accuracy (1.0 for an empty corpus).
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            1.0
        } else {
            (self.tp + self.tn) as f64 / self.total() as f64
        }
    }

    /// False-positive rate (fraction of normal points flagged).
    pub fn false_positive_rate(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn)
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let t = vec![vec![0, 1, 1, 0]];
        let c = Confusion::of_corpus(&t, &t);
        assert_eq!(
            c,
            Confusion {
                tp: 2,
                fp: 0,
                fn_: 0,
                tn: 2
            }
        );
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
        assert_eq!(c.accuracy(), 1.0);
        assert_eq!(c.false_positive_rate(), 0.0);
    }

    #[test]
    fn counts_each_cell() {
        let out = vec![vec![1, 1, 0, 0]];
        let truth = vec![vec![1, 0, 1, 0]];
        let c = Confusion::of_corpus(&out, &truth);
        assert_eq!(c.tp, 1);
        assert_eq!(c.fp, 1);
        assert_eq!(c.fn_, 1);
        assert_eq!(c.tn, 1);
        assert!((c.precision() - 0.5).abs() < 1e-12);
        assert!((c.recall() - 0.5).abs() < 1e-12);
        assert!((c.accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        // all-normal truth and output: no anomaly arithmetic blows up
        let t = vec![vec![0, 0]];
        let c = Confusion::of_corpus(&t, &t);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.accuracy(), 1.0);
        let empty = Confusion::default();
        assert_eq!(empty.accuracy(), 1.0);
    }

    #[test]
    fn accumulates_across_trajectories() {
        let mut c = Confusion::default();
        c.update(&[1, 0], &[1, 0]);
        c.update(&[0, 1], &[1, 1]);
        assert_eq!(c.tp, 2);
        assert_eq!(c.fn_, 1);
        assert_eq!(c.tn, 1);
        assert_eq!(c.total(), 4);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        Confusion::default().update(&[0], &[0, 1]);
    }
}
