//! Trajectory-length groups (paper §V-B / Table III).
//!
//! The paper partitions test trajectories into four groups by length:
//! `G1 < 15`, `15 ≤ G2 < 30`, `30 ≤ G3 < 45`, `G4 ≥ 45` road segments.

use serde::{Deserialize, Serialize};

/// Group boundaries `[15, 30, 45]` in road segments.
pub const GROUP_BOUNDS: [usize; 3] = [15, 30, 45];

/// A trajectory-length group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LengthGroup {
    /// Fewer than 15 segments.
    G1,
    /// 15–29 segments.
    G2,
    /// 30–44 segments.
    G3,
    /// 45 or more segments.
    G4,
}

impl LengthGroup {
    /// All groups in order.
    pub const ALL: [LengthGroup; 4] = [
        LengthGroup::G1,
        LengthGroup::G2,
        LengthGroup::G3,
        LengthGroup::G4,
    ];

    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            LengthGroup::G1 => "G1",
            LengthGroup::G2 => "G2",
            LengthGroup::G3 => "G3",
            LengthGroup::G4 => "G4",
        }
    }
}

impl std::fmt::Display for LengthGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Group of a trajectory with `len` segments.
pub fn group_of_len(len: usize) -> LengthGroup {
    if len < GROUP_BOUNDS[0] {
        LengthGroup::G1
    } else if len < GROUP_BOUNDS[1] {
        LengthGroup::G2
    } else if len < GROUP_BOUNDS[2] {
        LengthGroup::G3
    } else {
        LengthGroup::G4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries() {
        assert_eq!(group_of_len(0), LengthGroup::G1);
        assert_eq!(group_of_len(14), LengthGroup::G1);
        assert_eq!(group_of_len(15), LengthGroup::G2);
        assert_eq!(group_of_len(29), LengthGroup::G2);
        assert_eq!(group_of_len(30), LengthGroup::G3);
        assert_eq!(group_of_len(44), LengthGroup::G3);
        assert_eq!(group_of_len(45), LengthGroup::G4);
        assert_eq!(group_of_len(1000), LengthGroup::G4);
    }

    #[test]
    fn names() {
        assert_eq!(LengthGroup::G1.name(), "G1");
        assert_eq!(format!("{}", LengthGroup::G4), "G4");
        assert_eq!(LengthGroup::ALL.len(), 4);
    }
}
