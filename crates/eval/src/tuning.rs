//! Dev-set threshold tuning for score-based baselines.
//!
//! The paper (§V-A): baselines that emit per-point anomaly scores are
//! adapted to the subtrajectory task by thresholding; "we tune their
//! thresholds of the anomaly scores in a development set (i.e., a set of
//! 100 trajectories with manual labels) ... the threshold that is
//! associated with the best performance (evaluated by F1-score) is
//! selected".

use crate::metrics::evaluate;

/// Finds the score threshold maximising F1 on a dev set.
///
/// `scores[i][k]` is the anomaly score of segment `k` of trajectory `i`;
/// `truths` are the aligned ground-truth labels. Candidate thresholds are
/// the `num_candidates` quantiles of the pooled score distribution (plus
/// extremes). Returns `(threshold, f1_at_threshold)`.
///
/// # Panics
/// Panics on empty input or mismatched shapes.
pub fn tune_threshold(
    scores: &[Vec<f64>],
    truths: &[Vec<u8>],
    num_candidates: usize,
) -> (f64, f64) {
    assert!(!scores.is_empty(), "empty dev set");
    assert_eq!(scores.len(), truths.len(), "dev set size mismatch");
    let mut pooled: Vec<f64> = scores
        .iter()
        .flatten()
        .copied()
        .filter(|s| s.is_finite())
        .collect();
    assert!(!pooled.is_empty(), "no finite scores to tune on");
    pooled.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = num_candidates.max(2);
    let mut candidates: Vec<f64> = (0..=n)
        .map(|k| {
            let idx = ((k as f64 / n as f64) * (pooled.len() - 1) as f64).round() as usize;
            pooled[idx]
        })
        .collect();
    candidates.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    let mut best = (candidates[0], -1.0);
    for &thr in &candidates {
        let outputs: Vec<Vec<u8>> = scores
            .iter()
            .map(|tr| tr.iter().map(|&s| u8::from(s > thr)).collect())
            .collect();
        let m = evaluate(&outputs, truths);
        if m.f1 > best.1 {
            best = (thr, m.f1);
        }
    }
    best
}

/// Applies a threshold to score sequences, producing 0/1 labels.
pub fn apply_threshold(scores: &[Vec<f64>], threshold: f64) -> Vec<Vec<u8>> {
    scores
        .iter()
        .map(|tr| tr.iter().map(|&s| u8::from(s > threshold)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_separating_threshold() {
        // scores cleanly separated: anomalous segments score ~0.9,
        // normal ~0.1; any threshold in between yields F1 = 1.
        let truths = vec![vec![0, 1, 1, 0], vec![0, 0, 1, 0]];
        let scores = vec![vec![0.1, 0.9, 0.85, 0.12], vec![0.05, 0.11, 0.95, 0.1]];
        let (thr, f1) = tune_threshold(&scores, &truths, 20);
        assert!((f1 - 1.0).abs() < 1e-12, "f1 = {f1}");
        assert!((0.12..0.85).contains(&thr), "thr = {thr}");
        let labels = apply_threshold(&scores, thr);
        assert_eq!(labels, truths);
    }

    #[test]
    fn noisy_scores_give_partial_f1() {
        // overlapping distributions: best F1 strictly between 0 and 1
        let truths = vec![vec![0, 1, 0, 1, 0, 0, 1, 0]];
        let scores = vec![vec![0.4, 0.6, 0.55, 0.55, 0.2, 0.3, 0.9, 0.1]];
        let (_, f1) = tune_threshold(&scores, &truths, 50);
        assert!(f1 > 0.3 && f1 <= 1.0);
    }

    #[test]
    fn constant_scores_handle_gracefully() {
        let truths = vec![vec![0, 1, 0]];
        let scores = vec![vec![0.5, 0.5, 0.5]];
        let (_, f1) = tune_threshold(&scores, &truths, 10);
        // all-same scores: either everything or nothing is flagged; F1 is
        // whatever the degenerate labelling achieves, but must not panic.
        assert!((0.0..=1.0).contains(&f1));
    }

    #[test]
    #[should_panic(expected = "empty dev set")]
    fn empty_input_panics() {
        tune_threshold(&[], &[], 10);
    }
}
