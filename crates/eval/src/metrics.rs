//! NER-style F1 / TF1 metrics over anomalous subtrajectories (Eq. 6–7).

use serde::{Deserialize, Serialize};
use traj::labels::{extract_subtrajectories, LabelSpan};

/// The paper's TF1 Jaccard threshold φ.
pub const JACCARD_TF1_THRESHOLD: f64 = 0.5;

/// Aggregate detection quality over a corpus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct DetectionMetrics {
    /// Precision `J / |C_o|`.
    pub precision: f64,
    /// Recall `J / |C_g|`.
    pub recall: f64,
    /// `2PR / (P + R)`.
    pub f1: f64,
    /// Thresholded variant (per-pair Jaccard binarised at φ = 0.5).
    pub tf1: f64,
    /// Total ground-truth subtrajectories `|C_g|`.
    pub num_truth_spans: usize,
    /// Total output subtrajectories `|C_o|`.
    pub num_output_spans: usize,
}

/// Jaccard similarity of two spans interpreted as position sets.
fn span_jaccard(a: &LabelSpan, b: &LabelSpan) -> f64 {
    let inter_start = a.start.max(b.start);
    let inter_end = a.end.min(b.end);
    if inter_start > inter_end {
        return 0.0;
    }
    let inter = (inter_end - inter_start + 1) as f64;
    let union = (a.len() + b.len()) as f64 - inter;
    inter / union
}

/// Evaluates one trajectory: returns `(sum_jaccard, sum_tjaccard,
/// matched_truth_count)` contributions under greedy 1:1 matching.
fn match_trajectory(truth: &[LabelSpan], output: &[LabelSpan], phi: f64) -> (f64, f64) {
    let mut used = vec![false; output.len()];
    let mut j_sum = 0.0;
    let mut tj_sum = 0.0;
    for g in truth {
        let mut best = 0.0;
        let mut best_k = None;
        for (k, o) in output.iter().enumerate() {
            if used[k] {
                continue;
            }
            let j = span_jaccard(g, o);
            if j > best {
                best = j;
                best_k = Some(k);
            }
        }
        if let Some(k) = best_k {
            used[k] = true;
            j_sum += best;
            tj_sum += f64::from(best >= phi);
        }
    }
    (j_sum, tj_sum)
}

/// Evaluates aligned corpora of output and ground-truth label sequences.
///
/// # Panics
/// Panics if the corpora have different lengths or any aligned pair has
/// mismatched sequence lengths.
pub fn evaluate(outputs: &[Vec<u8>], truths: &[Vec<u8>]) -> DetectionMetrics {
    assert_eq!(outputs.len(), truths.len(), "corpus size mismatch");
    evaluate_pairs(
        outputs
            .iter()
            .zip(truths.iter())
            .map(|(o, t)| (o.as_slice(), t.as_slice())),
    )
}

/// Iterator-based variant of [`evaluate`].
pub fn evaluate_pairs<'a, I>(pairs: I) -> DetectionMetrics
where
    I: IntoIterator<Item = (&'a [u8], &'a [u8])>,
{
    let mut j_total = 0.0;
    let mut tj_total = 0.0;
    let mut n_truth = 0usize;
    let mut n_output = 0usize;
    for (out, truth) in pairs {
        assert_eq!(out.len(), truth.len(), "label length mismatch");
        let t_spans = extract_subtrajectories(truth);
        let o_spans = extract_subtrajectories(out);
        n_truth += t_spans.len();
        n_output += o_spans.len();
        let (j, tj) = match_trajectory(&t_spans, &o_spans, JACCARD_TF1_THRESHOLD);
        j_total += j;
        tj_total += tj;
    }
    let metrics = |j: f64| -> (f64, f64, f64) {
        let p = if n_output > 0 {
            j / n_output as f64
        } else {
            0.0
        };
        let r = if n_truth > 0 { j / n_truth as f64 } else { 0.0 };
        let f1 = if p + r > 0.0 {
            2.0 * p * r / (p + r)
        } else {
            0.0
        };
        (p, r, f1)
    };
    let (precision, recall, f1) = metrics(j_total);
    let (_, _, tf1) = metrics(tj_total);
    // Degenerate corpus (no anomalies anywhere, nothing predicted): define
    // perfect agreement rather than 0/0.
    let (f1, tf1, precision, recall) = if n_truth == 0 && n_output == 0 {
        (1.0, 1.0, 1.0, 1.0)
    } else {
        (f1, tf1, precision, recall)
    };
    DetectionMetrics {
        precision,
        recall,
        f1,
        tf1,
        num_truth_spans: n_truth,
        num_output_spans: n_output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_scores_one() {
        let truth = vec![vec![0, 1, 1, 0, 0, 1, 0]];
        let m = evaluate(&truth, &truth);
        assert!((m.f1 - 1.0).abs() < 1e-12);
        assert!((m.tf1 - 1.0).abs() < 1e-12);
        assert_eq!(m.num_truth_spans, 2);
        assert_eq!(m.num_output_spans, 2);
    }

    #[test]
    fn all_normal_everywhere_is_perfect() {
        let truth = vec![vec![0, 0, 0]];
        let out = vec![vec![0, 0, 0]];
        let m = evaluate(&out, &truth);
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.tf1, 1.0);
    }

    #[test]
    fn false_positive_on_normal_trajectory_hurts_precision() {
        let truth = vec![vec![0, 1, 1, 0], vec![0, 0, 0, 0]];
        let out = vec![vec![0, 1, 1, 0], vec![0, 1, 0, 0]];
        let m = evaluate(&out, &truth);
        // J = 1 (first matches exactly), |C_o| = 2, |C_g| = 1
        assert!((m.precision - 0.5).abs() < 1e-12);
        assert!((m.recall - 1.0).abs() < 1e-12);
        assert!((m.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn missed_anomaly_hurts_recall() {
        let truth = vec![vec![0, 1, 1, 0], vec![0, 1, 1, 0]];
        let out = vec![vec![0, 1, 1, 0], vec![0, 0, 0, 0]];
        let m = evaluate(&out, &truth);
        assert!((m.precision - 1.0).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap_scores_jaccard() {
        // truth span 1..=4 (len 4), output span 3..=6 (len 4),
        // intersection {3,4} = 2, union = 6 -> J = 1/3
        let truth = vec![vec![0, 1, 1, 1, 1, 0, 0, 0]];
        let out = vec![vec![0, 0, 0, 1, 1, 1, 1, 0]];
        let m = evaluate(&out, &truth);
        assert!((m.precision - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.recall - 1.0 / 3.0).abs() < 1e-12);
        // J = 1/3 < 0.5, so TF1 counts it as a miss
        assert_eq!(m.tf1, 0.0);
    }

    #[test]
    fn tf1_counts_sufficient_overlaps() {
        // J = 3/4 >= 0.5
        let truth = vec![vec![1, 1, 1, 1, 0]];
        let out = vec![vec![1, 1, 1, 0, 0]];
        let m = evaluate(&out, &truth);
        assert!((m.tf1 - 1.0).abs() < 1e-12);
        assert!(m.f1 < 1.0);
    }

    #[test]
    fn greedy_matching_is_one_to_one() {
        // one output span cannot satisfy two truth spans
        let truth = vec![vec![1, 1, 0, 1, 1]];
        let out = vec![vec![1, 1, 1, 1, 1]];
        let m = evaluate(&out, &truth);
        assert_eq!(m.num_truth_spans, 2);
        assert_eq!(m.num_output_spans, 1);
        // only one truth span gets matched (J = 2/5), the other scores 0
        assert!((m.recall - (2.0 / 5.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn fragmented_output_is_penalised() {
        // paper's Delayed Labeling motivation: fragments inflate |C_o|
        let truth = vec![vec![0, 1, 1, 1, 1, 1, 0]];
        let exact = vec![vec![0, 1, 1, 1, 1, 1, 0]];
        let fragmented = vec![vec![0, 1, 0, 1, 0, 1, 0]];
        let m_exact = evaluate(&exact, &truth);
        let m_frag = evaluate(&fragmented, &truth);
        assert!(m_exact.f1 > m_frag.f1);
    }

    #[test]
    #[should_panic(expected = "label length mismatch")]
    fn mismatched_lengths_panic() {
        evaluate(&[vec![0, 1]], &[vec![0, 1, 0]]);
    }

    #[test]
    fn metrics_bounded() {
        // randomised boundedness check
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let n = rng.gen_range(1..30);
            let truth: Vec<u8> = (0..n).map(|_| rng.gen_range(0..2) as u8).collect();
            let out: Vec<u8> = (0..n).map(|_| rng.gen_range(0..2) as u8).collect();
            let m = evaluate(&[out], &[truth]);
            for v in [m.precision, m.recall, m.f1, m.tf1] {
                assert!((0.0..=1.0 + 1e-12).contains(&v), "metric {v} out of range");
            }
            assert!(m.tf1 <= m.f1 + 1.0); // trivially bounded relation
        }
    }
}
