//! Evaluation harness for anomalous-subtrajectory detection.
//!
//! Implements the paper's metrics (§V-A, Eq. 6–7): detection output and
//! ground truth are per-segment 0/1 label sequences; *anomalous
//! subtrajectories* are maximal runs of 1s, treated like entities in NER
//! evaluation. Each ground-truth subtrajectory is matched (1:1, greedily by
//! overlap) to an output subtrajectory; the Jaccard similarity of the
//! matched pair contributes to an aggregate score `J`, from which
//!
//! ```text
//! P = J / |C_o|,   R = J / |C_g|,   F1 = 2PR / (P + R)
//! ```
//!
//! with `|C_o|` / `|C_g|` the total numbers of output / ground-truth
//! subtrajectories over the corpus. `TF1` re-defines the per-pair Jaccard
//! as 1 if it exceeds a threshold `φ` (paper: 0.5) and 0 otherwise.
//!
//! Also provides the paper's trajectory-length groups (G1–G4), the
//! dev-set threshold tuner used to adapt score-based baselines to the
//! subtrajectory task, and plain-text table rendering for the benchmark
//! binaries.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod groups;
pub mod metrics;
pub mod report;
pub mod segment_metrics;
pub mod tuning;

pub use groups::{group_of_len, LengthGroup, GROUP_BOUNDS};
pub use metrics::{evaluate, evaluate_pairs, DetectionMetrics, JACCARD_TF1_THRESHOLD};
pub use segment_metrics::Confusion;
pub use tuning::tune_threshold;
