//! Plain-text table rendering for the benchmark binaries.
//!
//! The `bench-suite` binaries print paper-style tables; this module keeps
//! the column alignment logic in one place.

/// A simple fixed-width text table.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push(' ');
                line.push_str(cell);
                line.push_str(&" ".repeat(w - cell.len() + 1));
                line.push('|');
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&"-".repeat(w + 2));
            sep.push('|');
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Formats a float with 3 decimals (the paper's table precision).
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a duration in milliseconds with adaptive precision.
pub fn ms(v: f64) -> String {
    if v < 0.01 {
        format!("{:.4}ms", v)
    } else if v < 1.0 {
        format!("{:.3}ms", v)
    } else {
        format!("{:.2}ms", v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["method", "F1"]);
        t.row(["RL4OASD", "0.854"]);
        t.row(["CTSS", "0.706"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // all lines same width
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(s.contains("RL4OASD"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f3(0.8541), "0.854");
        assert_eq!(ms(0.0042), "0.0042ms");
        assert_eq!(ms(0.42), "0.420ms");
        assert_eq!(ms(42.0), "42.00ms");
    }
}
