//! Numeric primitives: activations, softmax/cross-entropy, cosine
//! similarity and small vector helpers.
//!
//! The dot-product-shaped entry points ([`dot`], [`matvec`],
//! [`matvec_batch`]) are thin wrappers over the vectorized [`kernels`]
//! layer and share its fixed reduction order; see the module docs there
//! for why that keeps the repo's bit-identity invariants intact.

pub mod kernels;

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Hyperbolic tangent (thin wrapper for symmetry with [`sigmoid`]).
#[inline]
pub fn tanh(x: f32) -> f32 {
    x.tanh()
}

/// In-place numerically stable softmax.
pub fn softmax_inplace(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
    let mut sum = 0.0;
    for v in x.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in x.iter_mut() {
        *v *= inv;
    }
}

/// Softmax into a fresh vector.
pub fn softmax(x: &[f32]) -> Vec<f32> {
    let mut out = x.to_vec();
    softmax_inplace(&mut out);
    out
}

/// Cross-entropy loss `-ln(probs[target])` for a softmax output.
/// Probabilities are floored at `1e-12` for numerical safety.
#[inline]
pub fn cross_entropy(probs: &[f32], target: usize) -> f32 {
    -probs[target].max(1e-12).ln()
}

/// Gradient of [`cross_entropy`] composed with softmax, with respect to the
/// *logits*: `probs - onehot(target)`, written into `grad`.
pub fn cross_entropy_softmax_grad(probs: &[f32], target: usize, grad: &mut [f32]) {
    grad.copy_from_slice(probs);
    grad[target] -= 1.0;
}

/// Cosine similarity of two equal-length vectors; 0.0 when either vector is
/// (near-)zero.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut dot = 0.0f32;
    let mut na = 0.0f32;
    let mut nb = 0.0f32;
    for i in 0..a.len() {
        dot += a[i] * b[i];
        na += a[i] * a[i];
        nb += b[i] * b[i];
    }
    let denom = (na.sqrt()) * (nb.sqrt());
    if denom < 1e-12 {
        0.0
    } else {
        dot / denom
    }
}

/// Dot product (vectorized; [`kernels`] fixed reduction order).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    kernels::dot(a, b)
}

/// `y += alpha * x` (8-lane unrolled; bit-identical to the naive loop).
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    kernels::axpy(alpha, x, y)
}

/// Concatenates two slices into a fresh vector.
pub fn concat(a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    out.extend_from_slice(a);
    out.extend_from_slice(b);
    out
}

/// Matrix–vector product `y = W x` for a row-major `rows × cols` matrix
/// (vectorized; each output element is one [`kernels::dot`]).
pub fn matvec(w: &[f32], rows: usize, cols: usize, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(w.len(), rows * cols);
    kernels::matvec(w, cols, rows, cols, x, y)
}

/// Batched matrix–vector product: for each of `batch` input row-vectors
/// `x_b` (`cols` wide, row-major in `xs`), computes `y_b = W x_b` into the
/// `batch × rows` row-major `ys`.
///
/// Implemented on [`kernels::gemm_micro`], whose every output cell uses
/// the same fixed reduction order as [`dot`], so results are
/// **bit-identical** to `batch` independent [`matvec`] calls — the
/// register blocking only changes which cells are in flight, never the
/// order of additions within a cell (the invariant the stream engine's
/// batched tick relies on).
pub fn matvec_batch(w: &[f32], rows: usize, cols: usize, xs: &[f32], batch: usize, ys: &mut [f32]) {
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert_eq!(xs.len(), batch * cols);
    kernels::gemm_micro(w, cols, rows, cols, xs, cols, batch, ys)
}

/// Transposed matrix–vector product `y += W^T g` (accumulates into `y`).
///
/// Built on the unrolled [`kernels::axpy`]; the accumulation stays
/// row-by-row over `g` (element-wise in `y`), so results are bit-identical
/// to the pre-kernel implementation and `⟨Wx, g⟩ ≈ ⟨x, Wᵀg⟩` adjointness
/// with [`matvec`] holds to normal `f32` tolerance.
pub fn matvec_t_acc(w: &[f32], rows: usize, cols: usize, g: &[f32], y: &mut [f32]) {
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert_eq!(g.len(), rows);
    debug_assert_eq!(y.len(), cols);
    for (r, &gr) in g.iter().enumerate() {
        if gr == 0.0 {
            continue;
        }
        let row = &w[r * cols..(r + 1) * cols];
        axpy(gr, row, y);
    }
}

/// Outer-product accumulation `W_grad += g x^T` (row-wise
/// [`kernels::axpy`]; element-wise, so bit-identical to the naive loops).
pub fn outer_acc(wg: &mut [f32], rows: usize, cols: usize, g: &[f32], x: &[f32]) {
    debug_assert_eq!(wg.len(), rows * cols);
    debug_assert_eq!(g.len(), rows);
    debug_assert_eq!(x.len(), cols);
    for (r, &gr) in g.iter().enumerate() {
        if gr == 0.0 {
            continue;
        }
        let row = &mut wg[r * cols..(r + 1) * cols];
        axpy(gr, x, row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let mut x = vec![1000.0, 1000.0, 999.0];
        softmax_inplace(&mut x);
        let s: f32 = x.iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
        assert!(x.iter().all(|&p| p.is_finite() && p > 0.0));
        assert!((x[0] - x[1]).abs() < 1e-6);
        assert!(x[2] < x[0]);
    }

    #[test]
    fn softmax_empty_noop() {
        let mut x: Vec<f32> = vec![];
        softmax_inplace(&mut x);
        assert!(x.is_empty());
    }

    #[test]
    fn cross_entropy_of_confident_prediction_is_small() {
        let probs = softmax(&[10.0, 0.0]);
        assert!(cross_entropy(&probs, 0) < 1e-3);
        assert!(cross_entropy(&probs, 1) > 5.0);
    }

    #[test]
    fn ce_softmax_grad_matches_probs_minus_onehot() {
        let probs = softmax(&[0.3, -0.2, 1.0]);
        let mut g = vec![0.0; 3];
        cross_entropy_softmax_grad(&probs, 2, &mut g);
        assert!((g[0] - probs[0]).abs() < 1e-7);
        assert!((g[2] - (probs[2] - 1.0)).abs() < 1e-7);
        // gradient sums to zero
        assert!(g.iter().sum::<f32>().abs() < 1e-6);
    }

    #[test]
    fn cosine_properties() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-6);
        assert!(cosine(&a, &b).abs() < 1e-6);
        let c = [-1.0, 0.0];
        assert!((cosine(&a, &c) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &a), 0.0);
    }

    #[test]
    fn matvec_batch_is_bit_identical_to_scalar() {
        let w: Vec<f32> = (0..6).map(|i| (i as f32 + 1.0) * 0.37).collect(); // 2x3
        let xs: Vec<f32> = (0..12).map(|i| (i as f32 - 5.0) * 0.21).collect(); // 4 lanes
        let mut ys = vec![0.0; 8];
        matvec_batch(&w, 2, 3, &xs, 4, &mut ys);
        for b in 0..4 {
            let mut y = vec![0.0; 2];
            matvec(&w, 2, 3, &xs[b * 3..(b + 1) * 3], &mut y);
            assert_eq!(&ys[b * 2..(b + 1) * 2], &y[..], "lane {b}");
        }
    }

    #[test]
    fn matvec_and_transpose_are_adjoint() {
        // <Wx, g> == <x, W^T g>
        let w = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
        let x = vec![0.5, -1.0, 2.0];
        let g = vec![0.7, -0.3];
        let mut y = vec![0.0; 2];
        matvec(&w, 2, 3, &x, &mut y);
        let lhs = dot(&y, &g);
        let mut xt = vec![0.0; 3];
        matvec_t_acc(&w, 2, 3, &g, &mut xt);
        let rhs = dot(&x, &xt);
        assert!((lhs - rhs).abs() < 1e-5);
    }

    #[test]
    fn outer_acc_accumulates() {
        let mut wg = vec![0.0; 6];
        outer_acc(&mut wg, 2, 3, &[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!(wg, vec![3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
        outer_acc(&mut wg, 2, 3, &[1.0, 0.0], &[1.0, 1.0, 1.0]);
        assert_eq!(wg[0], 4.0);
        assert_eq!(wg[3], 6.0); // untouched by zero gradient row
    }

    #[test]
    fn concat_and_axpy() {
        let c = concat(&[1.0], &[2.0, 3.0]);
        assert_eq!(c, vec![1.0, 2.0, 3.0]);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }
}
