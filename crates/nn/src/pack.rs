//! Packed (inference-ready) weight representations for the serving hot
//! path.
//!
//! Training mutates [`Param`](crate::Param) values in place, so layers
//! keep their weights in plain dense row-major storage. Serving never
//! mutates weights — so a model can be *packed once at load time* into a
//! layout the vectorized [`kernels`](mod@crate::ops::kernels) prefer:
//!
//! * **row padding** — each weight row starts at a multiple of
//!   [`LANES`] `f32`s, so every row's 8-wide
//!   k-blocks sit on consistent 32-byte boundaries (padding is
//!   zero-filled and *never read*: the kernels stop at the logical
//!   column count, which is also why packed results are bit-identical to
//!   the unpacked path — same values, same fixed reduction order);
//! * **precomputed shapes** — the bias is carried alongside and the
//!   stride is resolved once, so the per-tick code is pure kernel calls.
//!
//! [`PackedLinear`], [`PackedLstm`] and [`PackedGru`] mirror the
//! inference entry points of [`Linear`], [`LstmCell`] and [`GruCell`];
//! a trained model caches them once (e.g. `rl4oasd`'s `TrainedModel`
//! holds a `OnceLock`-ed packed form) and every engine tick — scalar or
//! batched, sharded or ingest-driven — runs on the packed weights with
//! zero per-tick repacking.
//!
//! A transposed layout for the batch≥4 path was evaluated and rejected:
//! it forces a sequential-k accumulation per output cell, a different
//! reduction order than the scalar path, which would break the repo's
//! batched-vs-scalar bit-identity invariants (see the
//! [`kernels`](mod@crate::ops::kernels) docs).

use crate::linear::Linear;
use crate::ops::kernels::{self, LANES};
use crate::rnn::{
    gru_infer_step_strided, lstm_infer_step_batch_strided, lstm_infer_step_strided, GruCell,
    GruScratch, LstmCell, LstmScratch, LstmState,
};

/// A row-major weight matrix re-laid-out with each row padded to the
/// kernel lane width. The padding is zero-filled and never read.
#[derive(Debug, Clone)]
pub struct PackedWeights {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
    stride: usize,
}

impl PackedWeights {
    /// Packs a dense row-major `rows × cols` matrix.
    ///
    /// # Panics
    /// Panics if `values.len() != rows * cols`.
    pub fn pack(values: &[f32], rows: usize, cols: usize) -> Self {
        assert_eq!(values.len(), rows * cols, "shape mismatch");
        let stride = cols.div_ceil(LANES) * LANES;
        let mut data = vec![0.0f32; rows * stride];
        for r in 0..rows {
            data[r * stride..r * stride + cols].copy_from_slice(&values[r * cols..(r + 1) * cols]);
        }
        PackedWeights {
            data,
            rows,
            cols,
            stride,
        }
    }

    /// Number of logical rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of logical columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Padded row stride in `f32`s (a multiple of the kernel lane width).
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The logical (unpadded) row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.stride..r * self.stride + self.cols]
    }

    /// `y = W x`. Bit-identical to `ops::matvec` on the unpacked values.
    #[inline]
    pub fn matvec(&self, x: &[f32], y: &mut [f32]) {
        kernels::matvec(&self.data, self.stride, self.rows, self.cols, x, y)
    }

    /// Batched `ys[b] = W x_b` over `batch` contiguous input rows
    /// (`batch × cols` row-major `xs`, `batch × rows` row-major `ys`).
    /// Bit-identical per lane to [`PackedWeights::matvec`].
    #[inline]
    pub fn matvec_batch(&self, xs: &[f32], batch: usize, ys: &mut [f32]) {
        debug_assert_eq!(xs.len(), batch * self.cols);
        kernels::gemm_micro(
            &self.data,
            self.stride,
            self.rows,
            self.cols,
            xs,
            self.cols,
            batch,
            ys,
        )
    }
}

/// Inference-ready form of a [`Linear`] layer: packed weights plus the
/// bias. Built once per trained model; see the module docs.
#[derive(Debug, Clone)]
pub struct PackedLinear {
    /// Packed `out × in` weight matrix.
    pub w: PackedWeights,
    b: Vec<f32>,
}

impl PackedLinear {
    /// Packs a trained layer.
    pub fn of(layer: &Linear) -> Self {
        PackedLinear {
            w: PackedWeights::pack(&layer.w.value, layer.w.rows, layer.w.cols),
            b: layer.b.value.clone(),
        }
    }

    /// Input dimension.
    #[inline]
    pub fn in_dim(&self) -> usize {
        self.w.cols()
    }

    /// Output dimension.
    #[inline]
    pub fn out_dim(&self) -> usize {
        self.w.rows()
    }

    /// `y = W x + b`. Bit-identical to [`Linear::infer`].
    pub fn infer(&self, x: &[f32], y: &mut [f32]) {
        self.w.matvec(x, y);
        for (yi, bi) in y.iter_mut().zip(&self.b) {
            *yi += bi;
        }
    }

    /// Batched inference; bit-identical to [`Linear::infer_batch`] (and
    /// therefore to `batch` independent [`PackedLinear::infer`] calls).
    pub fn infer_batch(&self, xs: &[f32], batch: usize, ys: &mut [f32]) {
        let out = self.out_dim();
        self.w.matvec_batch(xs, batch, ys);
        for b in 0..batch {
            for (yi, bi) in ys[b * out..(b + 1) * out].iter_mut().zip(&self.b) {
                *yi += bi;
            }
        }
    }
}

/// Inference-ready form of an [`LstmCell`]: the combined `4H × (I+H)`
/// gate matrix packed, bias carried alongside.
#[derive(Debug, Clone)]
pub struct PackedLstm {
    w: PackedWeights,
    b: Vec<f32>,
    input: usize,
    hidden: usize,
}

impl PackedLstm {
    /// Packs a trained cell.
    pub fn of(cell: &LstmCell) -> Self {
        PackedLstm {
            w: PackedWeights::pack(&cell.w.value, cell.w.rows, cell.w.cols),
            b: cell.b.value.clone(),
            input: cell.input_dim(),
            hidden: cell.hidden_dim(),
        }
    }

    /// Input dimension.
    #[inline]
    pub fn input_dim(&self) -> usize {
        self.input
    }

    /// Hidden dimension.
    #[inline]
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Allocation-free scalar step advancing `state` in place.
    /// Bit-identical to [`LstmCell::forward`]'s value path and to
    /// [`LstmCell::infer_step`].
    pub fn infer_step(&self, x: &[f32], state: &mut LstmState, scratch: &mut LstmScratch) {
        lstm_infer_step_strided(
            &self.w.data,
            self.w.stride,
            &self.b,
            self.input,
            self.hidden,
            x,
            state,
            scratch,
        );
    }

    /// Batched step with the layout contract of
    /// [`LstmCell::infer_step_batch`], to which it is bit-identical.
    pub fn infer_step_batch(
        &self,
        batch: usize,
        xh: &[f32],
        c: &mut [f32],
        h: &mut [f32],
        z_scratch: &mut Vec<f32>,
    ) {
        lstm_infer_step_batch_strided(
            &self.w.data,
            self.w.stride,
            &self.b,
            self.input,
            self.hidden,
            batch,
            xh,
            c,
            h,
            z_scratch,
        );
    }
}

/// Inference-ready form of a [`GruCell`]: all three gate matrices packed.
#[derive(Debug, Clone)]
pub struct PackedGru {
    wz: PackedWeights,
    wr: PackedWeights,
    wn: PackedWeights,
    bz: Vec<f32>,
    br: Vec<f32>,
    bn: Vec<f32>,
    input: usize,
    hidden: usize,
}

impl PackedGru {
    /// Packs a trained cell.
    pub fn of(cell: &GruCell) -> Self {
        PackedGru {
            wz: PackedWeights::pack(&cell.wz.value, cell.wz.rows, cell.wz.cols),
            wr: PackedWeights::pack(&cell.wr.value, cell.wr.rows, cell.wr.cols),
            wn: PackedWeights::pack(&cell.wn.value, cell.wn.rows, cell.wn.cols),
            bz: cell.bz.value.clone(),
            br: cell.br.value.clone(),
            bn: cell.bn.value.clone(),
            input: cell.input_dim(),
            hidden: cell.hidden_dim(),
        }
    }

    /// Input dimension.
    #[inline]
    pub fn input_dim(&self) -> usize {
        self.input
    }

    /// Hidden dimension.
    #[inline]
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Allocation-free scalar step writing the new hidden vector into
    /// `h_new`. Bit-identical to [`GruCell::forward`]'s value path and to
    /// [`GruCell::infer_step`].
    pub fn infer_step(
        &self,
        x: &[f32],
        h_prev: &[f32],
        h_new: &mut Vec<f32>,
        scratch: &mut GruScratch,
    ) {
        gru_infer_step_strided(
            (&self.wz.data, self.wz.stride),
            (&self.wr.data, self.wr.stride),
            (&self.wn.data, self.wn.stride),
            &self.bz,
            &self.br,
            &self.bn,
            self.input,
            self.hidden,
            x,
            h_prev,
            h_new,
            scratch,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;

    #[test]
    fn packed_weights_pad_rows_and_preserve_values() {
        let values: Vec<f32> = (0..6).map(|i| i as f32).collect(); // 2×3
        let p = PackedWeights::pack(&values, 2, 3);
        assert_eq!(p.stride(), LANES);
        assert_eq!(p.row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(p.row(1), &[3.0, 4.0, 5.0]);
        // padding zero-filled
        assert!(p.data[3..8].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn packed_matvec_is_bit_identical_to_unpacked() {
        let values: Vec<f32> = (0..35).map(|i| (i as f32 - 17.0) * 0.21).collect(); // 5×7
        let p = PackedWeights::pack(&values, 5, 7);
        let x: Vec<f32> = (0..7).map(|i| (i as f32) * 0.4 - 1.0).collect();
        let mut y0 = vec![0.0; 5];
        let mut y1 = vec![0.0; 5];
        crate::ops::matvec(&values, 5, 7, &x, &mut y0);
        p.matvec(&x, &mut y1);
        assert_eq!(y0, y1);
    }

    #[test]
    fn packed_linear_matches_raw_bitwise() {
        let l = Linear::new(13, 9, &mut seeded_rng(3));
        let p = PackedLinear::of(&l);
        let xs: Vec<f32> = (0..39).map(|i| (i as f32 - 20.0) * 0.11).collect();
        let mut y0 = vec![0.0; 9];
        let mut y1 = vec![0.0; 9];
        for b in 0..3 {
            l.infer(&xs[b * 13..(b + 1) * 13], &mut y0);
            p.infer(&xs[b * 13..(b + 1) * 13], &mut y1);
            assert_eq!(y0, y1, "lane {b}");
        }
        let mut ys0 = vec![0.0; 27];
        let mut ys1 = vec![0.0; 27];
        l.infer_batch(&xs, 3, &mut ys0);
        p.infer_batch(&xs, 3, &mut ys1);
        assert_eq!(ys0, ys1);
    }

    #[test]
    fn packed_lstm_scalar_and_batched_match_forward_bitwise() {
        let cell = LstmCell::new(3, 5, &mut seeded_rng(4));
        let p = PackedLstm::of(&cell);
        let x = [0.4, -0.2, 0.9];
        let mut state = LstmState::zeros(5);
        let mut scratch = LstmScratch::default();
        // two chained steps through the packed scalar path
        p.infer_step(&x, &mut state, &mut scratch);
        p.infer_step(&x, &mut state, &mut scratch);
        // reference: raw forward twice
        let mut expect = LstmState::zeros(5);
        expect = cell.forward(&x, &expect).0;
        expect = cell.forward(&x, &expect).0;
        assert_eq!(state, expect);
        // raw scratch-based step agrees too
        let mut raw = LstmState::zeros(5);
        cell.infer_step(&x, &mut raw, &mut scratch);
        cell.infer_step(&x, &mut raw, &mut scratch);
        assert_eq!(raw, expect);
    }

    #[test]
    fn packed_gru_matches_forward_bitwise() {
        let cell = GruCell::new(4, 6, &mut seeded_rng(5));
        let p = PackedGru::of(&cell);
        let x = [0.1, -0.5, 0.3, 0.8];
        let h0 = vec![0.05; 6];
        let (expect, _) = cell.forward(&x, &h0);
        let mut scratch = GruScratch::default();
        let mut got = Vec::new();
        p.infer_step(&x, &h0, &mut got, &mut scratch);
        assert_eq!(got, expect);
        let mut raw = Vec::new();
        cell.infer_step(&x, &h0, &mut raw, &mut scratch);
        assert_eq!(raw, expect);
    }
}
