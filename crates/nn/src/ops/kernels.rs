//! Vectorized micro-GEMM kernel layer: 8-lane unrolled dot/axpy primitives
//! and a register-blocked `rows × batch` micro-kernel for the inference
//! hot path.
//!
//! # The fixed reduction order
//!
//! Every dot-product-shaped value in this module is accumulated the same
//! way, regardless of which public entry point computed it:
//!
//! 1. **Lane-strided partial sums.** Eight `f32` accumulators start at
//!    `+0.0`; the product at index `i` is added to accumulator `i % 8`, in
//!    increasing `i`. (A tail of `len % 8` elements therefore lands in
//!    lanes `0..len % 8`, continuing each lane's running sum.)
//! 2. **Fixed pairwise tree.** The eight partials are combined as
//!    `((a0+a4)+(a2+a6)) + ((a1+a5)+(a3+a7))` — never reassociated.
//!
//! This is *not* the seed's left-to-right summation (kept as
//! [`mod@reference`]), so absolute values differ from pre-kernel builds by
//! normal `f32` reassociation noise. What the fixed order buys is
//! **bit-identity between every path that computes the same logical
//! value**:
//!
//! * [`matvec`] and [`gemm_micro`] produce identical bits per output cell
//!   at any batch — the register blocking only changes *which* cells are
//!   in flight, never the order of additions within a cell;
//! * a [`PackedWeights`](crate::pack::PackedWeights) row (padded to the
//!   lane width) feeds the same kernel as the unpadded row-major slice —
//!   the padding is never read (the `cols` bound stops before it), so
//!   packed and unpacked results are equal bit-for-bit;
//! * consequently the repo's serving invariants — batched-vs-scalar,
//!   shard-invariance (`tests/sharded.rs`), ingest-vs-sync
//!   (`tests/ingest.rs`) — survive vectorization *by construction*: there
//!   is exactly one accumulation order in the whole inference stack.
//!
//! # Implementation notes
//!
//! The order-defining implementation is the portable [`dot_portable`]
//! (plain safe Rust). On `x86_64` the kernels dispatch to an explicit
//! SSE2 path (`core::arch` intrinsics — SSE2 is part of the x86_64
//! baseline ABI, so no runtime detection is needed): the eight lane
//! accumulators live in two `__m128` registers, lanes 0–3 and 4–7, and
//! each 8-wide block is two `mulps`+`addps` per cell. Packed-single IEEE
//! arithmetic rounds exactly like the scalar ops, so the intrinsic path
//! is bit-identical to the portable one (property-tested in
//! `tests/kernels.rs` and below).
//!
//! Why not rely on autovectorization alone: LLVM's SLP vectorizer
//! (rustc 1.95) packs the lane accumulators to optimise the *reduction
//! tree* rather than the loop, emitting shuffle-heavy bodies
//! (`movsd`/`unpcklps`/`shufps` per block) that ran no faster than ~1.7×
//! scalar; the explicit kernels reach ~3–4× and keep codegen stable
//! across `target-cpu` settings.
//!
//! On register blocking: a 2×2 block (four cells) was measured and
//! rejected — four 8-lane accumulator arrays plus four input streams
//! exceed SSE's 16 registers and the spilled accumulators made each cell
//! ~4× slower than a plain [`dot`]. Two cells per micro-kernel (2 rows ×
//! 1 input, or 1 row × 2 inputs) is the largest block that keeps every
//! accumulator in a register.
//!
//! A transposed weight layout for the batch path was likewise rejected:
//! vectorizing across batch lanes (or across rows) forces a
//! *sequential-k* accumulation per cell — a different reduction order
//! than the scalar path, which would break the bit-identity above. See
//! ROADMAP for the follow-on (runtime `target-cpu` dispatch / `std::simd`
//! once stable).

/// Vector width of the kernel layer: every reduction runs over this many
/// lane-strided partial accumulators, and packed rows are padded to a
/// multiple of this many `f32`s.
pub const LANES: usize = 8;

/// Combines the eight lane partials with the fixed pairwise tree
/// documented in the module docs. Inlined everywhere so all entry points
/// share one reduction order.
#[inline(always)]
fn reduce(acc: &[f32; LANES]) -> f32 {
    ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7]))
}

/// Adds `a[k] * b[k]` for one 8-wide block into the lane accumulators
/// (portable path). Fixed-size array operands so the loop carries no
/// bounds checks.
#[inline(always)]
fn fma_block(acc: &mut [f32; LANES], a: &[f32; LANES], b: &[f32; LANES]) {
    for l in 0..LANES {
        acc[l] += a[l] * b[l];
    }
}

/// Adds the `len % 8` trailing products into lanes `0..tail`, continuing
/// each lane's running sum (same lane assignment `i % 8` as the blocks).
#[inline(always)]
fn fma_tail(acc: &mut [f32; LANES], a: &[f32], b: &[f32]) {
    for (l, (&x, &y)) in a.iter().zip(b).enumerate() {
        acc[l] += x * y;
    }
}

/// The portable lane-strided dot product — the *definition* of the fixed
/// reduction order. [`dot`] dispatches here on non-x86 targets; on
/// `x86_64` the SSE2 path below computes the same bits faster.
#[inline]
pub fn dot_portable(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let (ab, at) = a.as_chunks::<LANES>();
    let (bb, bt) = b.as_chunks::<LANES>();
    for (x, y) in ab.iter().zip(bb) {
        fma_block(&mut acc, x, y);
    }
    fma_tail(&mut acc, at, bt);
    reduce(&acc)
}

/// Explicit SSE2 kernels (x86_64 baseline — always available, no runtime
/// detection). Each cell's eight lane accumulators live in two `__m128`s
/// (lanes 0–3 / 4–7); after the block loop they are stored back to the
/// lane array so the tail and the reduction tree are shared with the
/// portable path — one reduction order, two codegen strategies.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{fma_tail, reduce, LANES};
    use core::arch::x86_64::*;

    /// Loads one 8-wide block as two `__m128`s.
    ///
    /// # Safety
    /// `p` must point at least 8 readable `f32`s (guaranteed by the
    /// `&[f32; 8]` chunk it comes from).
    #[inline(always)]
    unsafe fn load8(p: *const f32) -> (__m128, __m128) {
        (_mm_loadu_ps(p), _mm_loadu_ps(p.add(4)))
    }

    #[inline]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let (ab, at) = a.as_chunks::<LANES>();
        let (bb, bt) = b.as_chunks::<LANES>();
        let mut acc = [0.0f32; LANES];
        unsafe {
            let mut lo = _mm_setzero_ps();
            let mut hi = _mm_setzero_ps();
            for (x, y) in ab.iter().zip(bb) {
                let (x0, x1) = load8(x.as_ptr());
                let (y0, y1) = load8(y.as_ptr());
                lo = _mm_add_ps(lo, _mm_mul_ps(x0, y0));
                hi = _mm_add_ps(hi, _mm_mul_ps(x1, y1));
            }
            _mm_storeu_ps(acc.as_mut_ptr(), lo);
            _mm_storeu_ps(acc.as_mut_ptr().add(4), hi);
        }
        fma_tail(&mut acc, at, bt);
        reduce(&acc)
    }

    #[inline]
    pub fn dot_2x1(w0: &[f32], w1: &[f32], x: &[f32]) -> [f32; 2] {
        let (w0b, w0t) = w0.as_chunks::<LANES>();
        let (w1b, w1t) = w1.as_chunks::<LANES>();
        let (xb, xt) = x.as_chunks::<LANES>();
        let mut a0 = [0.0f32; LANES];
        let mut a1 = [0.0f32; LANES];
        unsafe {
            let mut lo0 = _mm_setzero_ps();
            let mut hi0 = _mm_setzero_ps();
            let mut lo1 = _mm_setzero_ps();
            let mut hi1 = _mm_setzero_ps();
            for ((r0, r1), c) in w0b.iter().zip(w1b).zip(xb) {
                let (c0, c1) = load8(c.as_ptr());
                let (p0, p1) = load8(r0.as_ptr());
                lo0 = _mm_add_ps(lo0, _mm_mul_ps(p0, c0));
                hi0 = _mm_add_ps(hi0, _mm_mul_ps(p1, c1));
                let (q0, q1) = load8(r1.as_ptr());
                lo1 = _mm_add_ps(lo1, _mm_mul_ps(q0, c0));
                hi1 = _mm_add_ps(hi1, _mm_mul_ps(q1, c1));
            }
            _mm_storeu_ps(a0.as_mut_ptr(), lo0);
            _mm_storeu_ps(a0.as_mut_ptr().add(4), hi0);
            _mm_storeu_ps(a1.as_mut_ptr(), lo1);
            _mm_storeu_ps(a1.as_mut_ptr().add(4), hi1);
        }
        fma_tail(&mut a0, w0t, xt);
        fma_tail(&mut a1, w1t, xt);
        [reduce(&a0), reduce(&a1)]
    }

    #[inline]
    pub fn dot_1x2(w: &[f32], x0: &[f32], x1: &[f32]) -> [f32; 2] {
        let (wb, wt) = w.as_chunks::<LANES>();
        let (x0b, x0t) = x0.as_chunks::<LANES>();
        let (x1b, x1t) = x1.as_chunks::<LANES>();
        let mut a0 = [0.0f32; LANES];
        let mut a1 = [0.0f32; LANES];
        unsafe {
            let mut lo0 = _mm_setzero_ps();
            let mut hi0 = _mm_setzero_ps();
            let mut lo1 = _mm_setzero_ps();
            let mut hi1 = _mm_setzero_ps();
            for ((r, c0), c1) in wb.iter().zip(x0b).zip(x1b) {
                let (p0, p1) = load8(r.as_ptr());
                let (u0, u1) = load8(c0.as_ptr());
                lo0 = _mm_add_ps(lo0, _mm_mul_ps(p0, u0));
                hi0 = _mm_add_ps(hi0, _mm_mul_ps(p1, u1));
                let (v0, v1) = load8(c1.as_ptr());
                lo1 = _mm_add_ps(lo1, _mm_mul_ps(p0, v0));
                hi1 = _mm_add_ps(hi1, _mm_mul_ps(p1, v1));
            }
            _mm_storeu_ps(a0.as_mut_ptr(), lo0);
            _mm_storeu_ps(a0.as_mut_ptr().add(4), hi0);
            _mm_storeu_ps(a1.as_mut_ptr(), lo1);
            _mm_storeu_ps(a1.as_mut_ptr().add(4), hi1);
        }
        fma_tail(&mut a0, wt, x0t);
        fma_tail(&mut a1, wt, x1t);
        [reduce(&a0), reduce(&a1)]
    }
}

/// Dot product in the fixed reduction order.
///
/// # Panics
/// Debug-asserts equal lengths.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    {
        x86::dot(a, b)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        dot_portable(a, b)
    }
}

/// 2-row micro-kernel: dots two weight rows against one input, sharing the
/// input's register loads. Both cells use the fixed reduction order.
#[inline]
fn dot_2x1(w0: &[f32], w1: &[f32], x: &[f32]) -> [f32; 2] {
    #[cfg(target_arch = "x86_64")]
    {
        x86::dot_2x1(w0, w1, x)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let mut a0 = [0.0f32; LANES];
        let mut a1 = [0.0f32; LANES];
        let (w0b, w0t) = w0.as_chunks::<LANES>();
        let (w1b, w1t) = w1.as_chunks::<LANES>();
        let (xb, xt) = x.as_chunks::<LANES>();
        for ((r0, r1), c) in w0b.iter().zip(w1b).zip(xb) {
            fma_block(&mut a0, r0, c);
            fma_block(&mut a1, r1, c);
        }
        fma_tail(&mut a0, w0t, xt);
        fma_tail(&mut a1, w1t, xt);
        [reduce(&a0), reduce(&a1)]
    }
}

/// 1-row × 2-batch micro-kernel: one weight row against two inputs,
/// sharing the row's register loads.
#[inline]
fn dot_1x2(w: &[f32], x0: &[f32], x1: &[f32]) -> [f32; 2] {
    #[cfg(target_arch = "x86_64")]
    {
        x86::dot_1x2(w, x0, x1)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let mut a0 = [0.0f32; LANES];
        let mut a1 = [0.0f32; LANES];
        let (wb, wt) = w.as_chunks::<LANES>();
        let (x0b, x0t) = x0.as_chunks::<LANES>();
        let (x1b, x1t) = x1.as_chunks::<LANES>();
        for ((r, c0), c1) in wb.iter().zip(x0b).zip(x1b) {
            fma_block(&mut a0, r, c0);
            fma_block(&mut a1, r, c1);
        }
        fma_tail(&mut a0, wt, x0t);
        fma_tail(&mut a1, wt, x1t);
        [reduce(&a0), reduce(&a1)]
    }
}

/// `y += alpha * x`, 8-lane unrolled. Element-wise (no reduction), so the
/// result is bit-identical to the naive loop — vectorization here is pure
/// speedup with no numerical consequence (and element-wise loops
/// autovectorize cleanly, so no explicit-SIMD path is needed).
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    let (yb, yt) = y.as_chunks_mut::<LANES>();
    let (xb, xt) = x.as_chunks::<LANES>();
    for (yc, xc) in yb.iter_mut().zip(xb) {
        for l in 0..LANES {
            yc[l] += alpha * xc[l];
        }
    }
    for (yi, &xi) in yt.iter_mut().zip(xt) {
        *yi += alpha * xi;
    }
}

/// Strided matrix–vector product `y = W x`: row `r` of `W` is
/// `w[r*stride .. r*stride + cols]`. `stride == cols` is the plain
/// row-major case; packed weights pass their padded stride (the padding is
/// never read). Rows are processed in pairs so `x`'s register loads are
/// shared.
pub fn matvec(w: &[f32], stride: usize, rows: usize, cols: usize, x: &[f32], y: &mut [f32]) {
    debug_assert!(stride >= cols);
    debug_assert!(w.len() >= rows.saturating_sub(1) * stride + cols * usize::from(rows > 0));
    debug_assert_eq!(x.len(), cols);
    debug_assert_eq!(y.len(), rows);
    let mut r = 0;
    while r + 2 <= rows {
        let [y0, y1] = dot_2x1(
            &w[r * stride..r * stride + cols],
            &w[(r + 1) * stride..(r + 1) * stride + cols],
            x,
        );
        y[r] = y0;
        y[r + 1] = y1;
        r += 2;
    }
    if r < rows {
        y[r] = dot(&w[r * stride..r * stride + cols], x);
    }
}

/// Register-blocked micro-GEMM for the batched inference path:
/// `ys[b*rows + r] = dot(W_row_r, x_b)` for `batch` input rows stored at
/// `x_stride` (`xs[b*x_stride .. b*x_stride + cols]`).
///
/// Each weight row is dotted against two batch lanes at a time (the 1×2
/// micro-kernel: the row's register loads are shared across both cells,
/// halving weight-stream traffic); `batch == 1` falls back to the
/// row-paired [`matvec`]. Every cell uses the fixed reduction order, so
/// the output is bit-identical to `batch` independent [`matvec`] calls —
/// which is exactly the invariant `ops::matvec_batch` promises the
/// serving engines.
#[allow(clippy::too_many_arguments)]
pub fn gemm_micro(
    w: &[f32],
    w_stride: usize,
    rows: usize,
    cols: usize,
    xs: &[f32],
    x_stride: usize,
    batch: usize,
    ys: &mut [f32],
) {
    debug_assert!(w_stride >= cols && x_stride >= cols);
    debug_assert!(xs.len() >= batch.saturating_sub(1) * x_stride + cols * usize::from(batch > 0));
    debug_assert_eq!(ys.len(), batch * rows);
    if batch == 1 {
        return matvec(w, w_stride, rows, cols, &xs[..cols], ys);
    }
    let wrow = |r: usize| &w[r * w_stride..r * w_stride + cols];
    let xrow = |b: usize| &xs[b * x_stride..b * x_stride + cols];
    for r in 0..rows {
        let w0 = wrow(r);
        let mut b = 0;
        while b + 2 <= batch {
            let [y0, y1] = dot_1x2(w0, xrow(b), xrow(b + 1));
            ys[b * rows + r] = y0;
            ys[(b + 1) * rows + r] = y1;
            b += 2;
        }
        if b < batch {
            ys[b * rows + r] = dot(w0, xrow(b));
        }
    }
}

/// The seed's scalar kernels, kept verbatim as the correctness oracle for
/// the property tests and the "old" baseline for `--bin kernels`
/// (`BENCH_kernels.json`'s speedup columns). Left-to-right summation —
/// *not* the fixed reduction order above, so values agree with the
/// vectorized kernels only to `f32` reassociation noise.
pub mod reference {
    /// Seed `dot`: sequential left-to-right sum.
    #[inline]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// Seed `matvec`: one sequential dot per row.
    pub fn matvec(w: &[f32], rows: usize, cols: usize, x: &[f32], y: &mut [f32]) {
        debug_assert_eq!(w.len(), rows * cols);
        debug_assert_eq!(x.len(), cols);
        debug_assert_eq!(y.len(), rows);
        for (r, yr) in y.iter_mut().enumerate() {
            *yr = dot(&w[r * cols..(r + 1) * cols], x);
        }
    }

    /// Seed `matvec_batch`: row-outer / lane-inner sequential dots.
    pub fn matvec_batch(
        w: &[f32],
        rows: usize,
        cols: usize,
        xs: &[f32],
        batch: usize,
        ys: &mut [f32],
    ) {
        debug_assert_eq!(w.len(), rows * cols);
        debug_assert_eq!(xs.len(), batch * cols);
        debug_assert_eq!(ys.len(), batch * rows);
        for r in 0..rows {
            let row = &w[r * cols..(r + 1) * cols];
            for b in 0..batch {
                ys[b * rows + r] = dot(row, &xs[b * cols..(b + 1) * cols]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(n: usize, scale: f32, shift: f32) -> Vec<f32> {
        (0..n).map(|i| (i as f32 - shift) * scale).collect()
    }

    #[test]
    fn dot_matches_reference_within_tolerance() {
        for n in [0, 1, 3, 7, 8, 9, 16, 31, 64, 100] {
            let a = vals(n, 0.13, 20.0);
            let b = vals(n, -0.07, 3.0);
            let got = dot(&a, &b);
            let want = reference::dot(&a, &b);
            assert!(
                (got - want).abs() <= 1e-3 * (1.0 + want.abs()),
                "n={n}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn dot_is_bit_identical_to_portable_definition() {
        // The dispatched kernel (SSE2 on x86_64) must match the portable
        // order-defining implementation exactly, at every length.
        for n in 0..130 {
            let a = vals(n, 0.31, (n / 2) as f32);
            let b = vals(n, -0.17, 3.0);
            assert_eq!(dot(&a, &b), dot_portable(&a, &b), "n={n}");
        }
    }

    #[test]
    fn dot_is_lane_order_not_sequential() {
        // Sanity that the documented order is what is implemented: compute
        // the lane-strided sum by hand for an awkward length.
        let n = 13;
        let a = vals(n, 0.31, 5.0);
        let b = vals(n, 0.17, 2.0);
        let mut acc = [0.0f32; LANES];
        for i in 0..n {
            acc[i % LANES] += a[i] * b[i];
        }
        let want =
            ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7]));
        assert_eq!(dot(&a, &b), want);
    }

    #[test]
    fn matvec_strided_ignores_padding() {
        // A 3×5 matrix stored at stride 8 with NaN padding must equal the
        // dense layout: the kernel may never read past `cols`.
        let rows = 3;
        let cols = 5;
        let dense = vals(rows * cols, 0.21, 7.0);
        let mut padded = vec![f32::NAN; rows * LANES];
        for r in 0..rows {
            padded[r * LANES..r * LANES + cols].copy_from_slice(&dense[r * cols..(r + 1) * cols]);
        }
        let x = vals(cols, -0.4, 2.0);
        let mut y0 = vec![0.0; rows];
        let mut y1 = vec![0.0; rows];
        matvec(&dense, cols, rows, cols, &x, &mut y0);
        matvec(&padded, LANES, rows, cols, &x, &mut y1);
        assert_eq!(y0, y1);
    }

    #[test]
    fn gemm_micro_is_bit_identical_to_matvec_per_lane() {
        for rows in [1, 2, 3, 5, 8] {
            for cols in [1, 7, 8, 17] {
                for batch in [0, 1, 2, 3, 5] {
                    let w = vals(rows * cols, 0.19, 11.0);
                    let xs = vals(batch * cols, -0.23, 6.0);
                    let mut ys = vec![0.0; batch * rows];
                    gemm_micro(&w, cols, rows, cols, &xs, cols, batch, &mut ys);
                    for b in 0..batch {
                        let mut y = vec![0.0; rows];
                        matvec(&w, cols, rows, cols, &xs[b * cols..(b + 1) * cols], &mut y);
                        assert_eq!(
                            &ys[b * rows..(b + 1) * rows],
                            &y[..],
                            "rows={rows} cols={cols} batch={batch} lane={b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn micro_kernel_cells_match_single_dot_bitwise() {
        // Pair kernels must not change per-cell bits vs `dot` — exercised
        // through matvec/gemm_micro shapes that hit the 2x1 and 1x2 paths.
        for cols in [1, 4, 8, 9, 24, 64, 65] {
            let w = vals(2 * cols, 0.23, 9.0);
            let x0 = vals(cols, -0.11, 4.0);
            let x1 = vals(cols, 0.37, 1.0);
            let mut y = vec![0.0; 2];
            matvec(&w, cols, 2, cols, &x0, &mut y);
            assert_eq!(y[0], dot(&w[..cols], &x0), "2x1 row0 cols={cols}");
            assert_eq!(y[1], dot(&w[cols..], &x0), "2x1 row1 cols={cols}");
            let mut xs = x0.clone();
            xs.extend_from_slice(&x1);
            let mut ys = vec![0.0; 2];
            gemm_micro(&w[..cols], cols, 1, cols, &xs, cols, 2, &mut ys);
            assert_eq!(ys[0], dot(&w[..cols], &x0), "1x2 lane0 cols={cols}");
            assert_eq!(ys[1], dot(&w[..cols], &x1), "1x2 lane1 cols={cols}");
        }
    }

    #[test]
    fn axpy_matches_naive_bitwise() {
        for n in [0, 1, 7, 8, 9, 33] {
            let x = vals(n, 0.11, 4.0);
            let mut y0 = vals(n, 0.05, 1.0);
            let mut y1 = y0.clone();
            axpy(1.7, &x, &mut y0);
            for (yi, &xi) in y1.iter_mut().zip(&x) {
                *yi += 1.7 * xi;
            }
            assert_eq!(y0, y1, "n={n}");
        }
    }

    #[test]
    fn empty_shapes_are_noops() {
        let mut y: Vec<f32> = vec![];
        matvec(&[], 0, 0, 0, &[], &mut y);
        gemm_micro(&[], 0, 0, 0, &[], 0, 0, &mut y);
        assert_eq!(dot(&[], &[]), 0.0);
        // rows with zero cols
        let mut y = vec![1.0; 3];
        matvec(&[], 0, 3, 0, &[], &mut y);
        assert_eq!(y, vec![0.0; 3]);
    }
}
