//! Minimal neural-network substrate for the RL4OASD reproduction.
//!
//! The paper implements its models in TensorFlow 1.8; no comparable
//! framework exists in this workspace's allowed dependency set, and the
//! models involved are small (an LSTM with 128 hidden units, single-layer
//! policy and classifier heads, small GRU seq2seq autoencoders for the
//! GM-VSAE baseline family). This crate therefore implements exactly the
//! pieces those models need, with **manual backpropagation** and
//! finite-difference gradient checks on every layer:
//!
//! * [`Param`]: a learnable tensor with gradient and Adam moments;
//! * [`Linear`], [`Embedding`]: dense and lookup layers;
//! * [`LstmCell`], [`GruCell`]: recurrent cells with explicit
//!   forward-context / backward passes (BPTT is driven by the caller, which
//!   keeps this crate free of any graph machinery);
//! * [`ops`]: softmax / cross-entropy / cosine similarity and small vector
//!   helpers;
//! * Adam optimisation via [`Param::adam_step`] and plain SGD via
//!   [`Param::sgd_step`].
//!
//! Everything is `f32`, row-major, and allocation-conscious (per-step
//! scratch buffers are reused by callers where hot).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod embedding;
pub mod gradcheck;
pub mod init;
pub mod linear;
pub mod ops;
pub mod pack;
pub mod param;
pub mod rnn;

pub use embedding::Embedding;
pub use linear::{Linear, LinearCtx};
pub use pack::{PackedGru, PackedLinear, PackedLstm, PackedWeights};
pub use param::Param;
pub use rnn::{GruCell, GruCtx, GruScratch, LstmCell, LstmCtx, LstmScratch, LstmState};
