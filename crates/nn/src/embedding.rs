//! Token embedding layer (lookup table) with sparse gradients.

use crate::param::Param;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// A `vocab × dim` lookup table. Used for road-segment embeddings (the
/// Toast-initialised traffic-context features), normal-route-feature
/// embeddings and previous-label embeddings in the paper's networks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Embedding {
    /// The table; row `i` is the vector of token `i`.
    pub table: Param,
}

impl Embedding {
    /// Creates a uniformly initialised table (`bound = 0.5 / dim`).
    pub fn new(vocab: usize, dim: usize, rng: &mut StdRng) -> Self {
        Embedding {
            table: crate::init::uniform(vocab, dim, 0.5 / dim as f32, rng),
        }
    }

    /// Creates a table from pre-trained vectors (e.g. Toast output).
    ///
    /// # Panics
    /// Panics if `vectors.len() != vocab * dim`.
    pub fn from_pretrained(vocab: usize, dim: usize, vectors: Vec<f32>) -> Self {
        Embedding {
            table: Param::from_values(vocab, dim, vectors),
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.rows
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.table.cols
    }

    /// The vector of `token`.
    ///
    /// # Panics
    /// Panics if `token >= vocab`.
    #[inline]
    pub fn lookup(&self, token: usize) -> &[f32] {
        self.table.row(token)
    }

    /// Accumulates gradient `dy` into the row of `token`.
    pub fn backward(&mut self, token: usize, dy: &[f32]) {
        debug_assert_eq!(dy.len(), self.dim());
        let row = self.table.grad_row_mut(token);
        for (g, d) in row.iter_mut().zip(dy) {
            *g += d;
        }
    }

    /// Parameters for optimiser iteration.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.table]
    }

    /// Clears gradients.
    pub fn zero_grad(&mut self) {
        self.table.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;

    #[test]
    fn lookup_returns_rows() {
        let e = Embedding::from_pretrained(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(e.lookup(0), &[1., 2., 3.]);
        assert_eq!(e.lookup(1), &[4., 5., 6.]);
        assert_eq!(e.vocab(), 2);
        assert_eq!(e.dim(), 3);
    }

    #[test]
    fn backward_is_sparse() {
        let mut e = Embedding::new(4, 2, &mut seeded_rng(1));
        e.backward(2, &[1.0, -1.0]);
        e.backward(2, &[0.5, 0.5]);
        assert_eq!(&e.table.grad[4..6], &[1.5, -0.5]);
        // untouched rows stay zero
        assert!(e.table.grad[..4].iter().all(|&g| g == 0.0));
        assert!(e.table.grad[6..].iter().all(|&g| g == 0.0));
    }

    #[test]
    fn adam_moves_only_touched_rows_meaningfully() {
        let mut e = Embedding::new(3, 2, &mut seeded_rng(2));
        let before = e.table.value.clone();
        e.backward(1, &[1.0, 1.0]);
        e.table.adam_step(0.1);
        // row 1 moved
        assert!((e.table.value[2] - before[2]).abs() > 1e-4);
        // rows 0 and 2 unchanged (zero grad => zero Adam update)
        assert_eq!(e.table.value[0], before[0]);
        assert_eq!(e.table.value[5], before[5]);
    }

    #[test]
    #[should_panic]
    fn out_of_vocab_panics() {
        let e = Embedding::new(2, 2, &mut seeded_rng(3));
        e.lookup(2);
    }
}
