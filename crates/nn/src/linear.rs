//! Fully connected layer with manual backprop.

use crate::ops;
use crate::param::Param;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// A dense layer `y = W x + b` (`W`: `out × in`, `b`: `out`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Weight matrix, `out_dim × in_dim`.
    pub w: Param,
    /// Bias vector, `out_dim`.
    pub b: Param,
}

/// Forward context: the input needed to compute gradients.
#[derive(Debug, Clone)]
pub struct LinearCtx {
    x: Vec<f32>,
}

impl Linear {
    /// Creates a Xavier-initialised layer.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        Linear {
            w: crate::init::xavier(out_dim, in_dim, rng),
            b: Param::zeros(out_dim, 1),
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.cols
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.rows
    }

    /// Forward pass returning the output and the backward context.
    pub fn forward(&self, x: &[f32]) -> (Vec<f32>, LinearCtx) {
        let mut y = vec![0.0; self.out_dim()];
        ops::matvec(&self.w.value, self.w.rows, self.w.cols, x, &mut y);
        for (yi, bi) in y.iter_mut().zip(&self.b.value) {
            *yi += bi;
        }
        (y, LinearCtx { x: x.to_vec() })
    }

    /// Forward pass without keeping a context (inference only).
    pub fn infer(&self, x: &[f32], y: &mut [f32]) {
        ops::matvec(&self.w.value, self.w.rows, self.w.cols, x, y);
        for (yi, bi) in y.iter_mut().zip(&self.b.value) {
            *yi += bi;
        }
    }

    /// Batched inference: `xs` holds `batch` input rows (`batch × in_dim`,
    /// row-major); writes `batch × out_dim` into `ys`. Bit-identical to
    /// `batch` independent [`Linear::infer`] calls (same accumulation
    /// order), but walks the weight matrix once for all lanes.
    pub fn infer_batch(&self, xs: &[f32], batch: usize, ys: &mut [f32]) {
        let out = self.out_dim();
        ops::matvec_batch(&self.w.value, self.w.rows, self.w.cols, xs, batch, ys);
        for b in 0..batch {
            for (yi, bi) in ys[b * out..(b + 1) * out].iter_mut().zip(&self.b.value) {
                *yi += bi;
            }
        }
    }

    /// Backward pass: accumulates `dL/dW`, `dL/db` and returns `dL/dx`.
    pub fn backward(&mut self, ctx: &LinearCtx, dy: &[f32]) -> Vec<f32> {
        debug_assert_eq!(dy.len(), self.out_dim());
        ops::outer_acc(&mut self.w.grad, self.w.rows, self.w.cols, dy, &ctx.x);
        ops::axpy(1.0, dy, &mut self.b.grad);
        let mut dx = vec![0.0; self.in_dim()];
        ops::matvec_t_acc(&self.w.value, self.w.rows, self.w.cols, dy, &mut dx);
        dx
    }

    /// All parameters, for optimiser iteration.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    /// Clears gradients of all parameters.
    pub fn zero_grad(&mut self) {
        self.w.zero_grad();
        self.b.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_model_gradients;
    use crate::init::seeded_rng;

    #[test]
    fn forward_matches_manual() {
        let mut l = Linear::new(2, 2, &mut seeded_rng(1));
        l.w.value.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        l.b.value.copy_from_slice(&[0.5, -0.5]);
        let (y, _) = l.forward(&[1.0, 1.0]);
        assert!((y[0] - 3.5).abs() < 1e-6);
        assert!((y[1] - 6.5).abs() < 1e-6);
    }

    #[test]
    fn infer_matches_forward() {
        let l = Linear::new(3, 4, &mut seeded_rng(5));
        let x = [0.1, -0.2, 0.7];
        let (y, _) = l.forward(&x);
        let mut y2 = vec![0.0; 4];
        l.infer(&x, &mut y2);
        assert_eq!(y, y2);
    }

    #[test]
    fn infer_batch_matches_scalar_bitwise() {
        let l = Linear::new(3, 4, &mut seeded_rng(7));
        let xs: Vec<f32> = (0..9).map(|i| (i as f32 - 4.0) * 0.33).collect();
        let mut ys = vec![0.0; 12];
        l.infer_batch(&xs, 3, &mut ys);
        for b in 0..3 {
            let mut y = vec![0.0; 4];
            l.infer(&xs[b * 3..(b + 1) * 3], &mut y);
            assert_eq!(&ys[b * 4..(b + 1) * 4], &y[..], "lane {b}");
        }
    }

    /// Loss = sum(tanh(y)); analytic gradients must match finite
    /// differences for weights, bias and input.
    #[test]
    fn gradcheck_weights_and_bias() {
        let x = vec![0.3f32, -0.7, 0.9];
        let loss = {
            let x = x.clone();
            move |l: &Linear| -> f32 {
                let (y, _) = l.forward(&x);
                y.iter().map(|v| v.tanh()).sum()
            }
        };
        let mut l = Linear::new(3, 2, &mut seeded_rng(2));
        l.zero_grad();
        let (y, ctx) = l.forward(&x);
        // dL/dy for L = sum tanh(y)
        let dy: Vec<f32> = y.iter().map(|v| 1.0 - v.tanh() * v.tanh()).collect();
        let dx = l.backward(&ctx, &dy);
        // dL/dx via chain rule must equal W^T dy
        let mut expect = vec![0.0; 3];
        crate::ops::matvec_t_acc(&l.w.value, 2, 3, &dy, &mut expect);
        for j in 0..3 {
            assert!((dx[j] - expect[j]).abs() < 1e-5);
        }
        check_model_gradients(&mut l, &loss, &|m| vec![&mut m.w, &mut m.b], 1e-2, 2e-2);
    }

    #[test]
    fn backward_accumulates_across_calls() {
        let mut l = Linear::new(2, 1, &mut seeded_rng(3));
        let (_, c1) = l.forward(&[1.0, 0.0]);
        l.backward(&c1, &[1.0]);
        let g1 = l.w.grad.clone();
        let (_, c2) = l.forward(&[1.0, 0.0]);
        l.backward(&c2, &[1.0]);
        assert!((l.w.grad[0] - 2.0 * g1[0]).abs() < 1e-6);
        l.zero_grad();
        assert!(l.w.grad.iter().all(|&g| g == 0.0));
    }
}
