//! Finite-difference gradient checking.
//!
//! Every layer in this crate (and every model built on it in `rl4oasd` and
//! `baselines`) verifies its manual backward pass against central finite
//! differences. With `f32` arithmetic, `eps ≈ 1e-2` and a relative
//! tolerance of a few percent reliably separates correct gradients from the
//! order-of-magnitude errors real backprop bugs produce.

use crate::param::Param;

/// Verifies analytic gradients against central finite differences.
///
/// Protocol: the caller accumulates analytic gradients into the model's
/// parameters (exactly one backward pass from zeroed grads), then calls this
/// with
/// * `loss`: recomputes the scalar loss from the model's *current* values —
///   it must be a pure function of the parameter values;
/// * `params`: exposes the model's parameters (stable order).
///
/// Every parameter entry is perturbed by `±eps`; the numeric derivative is
/// compared with the stored analytic gradient. Panics (with coordinates) on
/// mismatch beyond `rel_tol`.
pub fn check_model_gradients<M>(
    model: &mut M,
    loss: &dyn Fn(&M) -> f32,
    params: &dyn Fn(&mut M) -> Vec<&mut Param>,
    eps: f32,
    rel_tol: f32,
) {
    let n_params = params(model).len();
    for pi in 0..n_params {
        let n = {
            let ps = params(model);
            ps[pi].len()
        };
        for i in 0..n {
            let (orig, analytic) = {
                let ps = params(model);
                (ps[pi].value[i], ps[pi].grad[i])
            };
            set(model, params, pi, i, orig + eps);
            let lp = loss(model);
            set(model, params, pi, i, orig - eps);
            let lm = loss(model);
            set(model, params, pi, i, orig);
            let numeric = (lp - lm) / (2.0 * eps);
            let denom = 1.0f32.max(analytic.abs()).max(numeric.abs());
            let rel = (analytic - numeric).abs() / denom;
            assert!(
                rel <= rel_tol,
                "gradient mismatch at param {pi} entry {i}: analytic={analytic}, numeric={numeric} (rel={rel})"
            );
        }
    }
}

fn set<M>(model: &mut M, params: &dyn Fn(&mut M) -> Vec<&mut Param>, pi: usize, i: usize, v: f32) {
    let mut ps = params(model);
    ps[pi].value[i] = v;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Quad {
        p: Param,
    }

    fn quad_loss(m: &Quad) -> f32 {
        // f = sum_i (x_i - i)^2
        m.p.value
            .iter()
            .enumerate()
            .map(|(i, &x)| (x - i as f32).powi(2))
            .sum()
    }

    #[test]
    fn accepts_correct_gradient() {
        let mut m = Quad {
            p: Param::from_values(1, 3, vec![0.5, 2.0, -1.0]),
        };
        for i in 0..3 {
            m.p.grad[i] = 2.0 * (m.p.value[i] - i as f32);
        }
        check_model_gradients(&mut m, &quad_loss, &|m| vec![&mut m.p], 1e-3, 1e-2);
    }

    #[test]
    #[should_panic(expected = "gradient mismatch")]
    fn rejects_wrong_gradient() {
        let mut m = Quad {
            p: Param::from_values(1, 2, vec![1.0, 1.0]),
        };
        m.p.grad[0] = 123.0; // wrong
        m.p.grad[1] = 2.0 * (m.p.value[1] - 1.0);
        check_model_gradients(&mut m, &quad_loss, &|m| vec![&mut m.p], 1e-3, 1e-2);
    }
}
