//! Learnable parameters and optimisers.

use serde::{Deserialize, Serialize};

/// A learnable tensor (row-major matrix, or vector with `cols == 1`),
/// carrying its gradient accumulator and Adam moment estimates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Current values, row-major, `rows * cols` entries.
    pub value: Vec<f32>,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Vec<f32>,
    /// First-moment (Adam `m`).
    m: Vec<f32>,
    /// Second-moment (Adam `v`).
    v: Vec<f32>,
    /// Adam time step.
    t: u64,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl Param {
    /// Creates a parameter from explicit values.
    ///
    /// # Panics
    /// Panics if `value.len() != rows * cols`.
    pub fn from_values(rows: usize, cols: usize, value: Vec<f32>) -> Self {
        assert_eq!(value.len(), rows * cols, "shape mismatch");
        let n = value.len();
        Param {
            value,
            grad: vec![0.0; n],
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
            rows,
            cols,
        }
    }

    /// Creates a zero-initialised parameter.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Param::from_values(rows, cols, vec![0.0; rows * cols])
    }

    /// Number of scalar entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.value[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r` of the gradient.
    #[inline]
    pub fn grad_row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.grad[r * self.cols..(r + 1) * self.cols]
    }

    /// Clears the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Sum of squared gradient entries (for clipping / diagnostics).
    pub fn grad_norm_sq(&self) -> f64 {
        self.grad.iter().map(|&g| (g as f64) * (g as f64)).sum()
    }

    /// Scales the gradient in place (used for global-norm clipping).
    pub fn scale_grad(&mut self, factor: f32) {
        self.grad.iter_mut().for_each(|g| *g *= factor);
    }

    /// One Adam step with the given learning rate and default
    /// `(beta1, beta2, eps) = (0.9, 0.999, 1e-8)`. Does **not** clear the
    /// gradient; call [`Param::zero_grad`] afterwards.
    pub fn adam_step(&mut self, lr: f32) {
        self.adam_step_with(lr, 0.9, 0.999, 1e-8);
    }

    /// One Adam step with explicit hyperparameters.
    pub fn adam_step_with(&mut self, lr: f32, beta1: f32, beta2: f32, eps: f32) {
        self.t += 1;
        let bc1 = 1.0 - beta1.powi(self.t.min(1_000_000) as i32);
        let bc2 = 1.0 - beta2.powi(self.t.min(1_000_000) as i32);
        for i in 0..self.value.len() {
            let g = self.grad[i];
            self.m[i] = beta1 * self.m[i] + (1.0 - beta1) * g;
            self.v[i] = beta2 * self.v[i] + (1.0 - beta2) * g * g;
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            self.value[i] -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }

    /// One plain SGD step (`value -= lr * grad`). Does not clear the
    /// gradient.
    pub fn sgd_step(&mut self, lr: f32) {
        for i in 0..self.value.len() {
            self.value[i] -= lr * self.grad[i];
        }
    }
}

/// Clips the global gradient norm of a set of parameters to `max_norm`.
/// Returns the pre-clip norm.
pub fn clip_global_norm(params: &mut [&mut Param], max_norm: f32) -> f32 {
    let norm_sq: f64 = params.iter().map(|p| p.grad_norm_sq()).sum();
    let norm = norm_sq.sqrt() as f32;
    if norm > max_norm && norm > 0.0 {
        let factor = max_norm / norm;
        for p in params.iter_mut() {
            p.scale_grad(factor);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_moves_against_gradient() {
        let mut p = Param::from_values(1, 2, vec![1.0, -1.0]);
        p.grad.copy_from_slice(&[0.5, -0.5]);
        p.sgd_step(0.1);
        assert!((p.value[0] - 0.95).abs() < 1e-6);
        assert!((p.value[1] + 0.95).abs() < 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // minimise f(x) = (x - 3)^2; gradient 2(x-3)
        let mut p = Param::from_values(1, 1, vec![0.0]);
        for _ in 0..2000 {
            p.zero_grad();
            p.grad[0] = 2.0 * (p.value[0] - 3.0);
            p.adam_step(0.05);
        }
        assert!((p.value[0] - 3.0).abs() < 1e-2, "x = {}", p.value[0]);
    }

    #[test]
    fn adam_first_step_size_is_lr() {
        // With bias correction, the first Adam step is ~lr in the gradient
        // direction regardless of gradient magnitude.
        let mut p = Param::from_values(1, 1, vec![0.0]);
        p.grad[0] = 123.0;
        p.adam_step(0.01);
        assert!((p.value[0] + 0.01).abs() < 1e-4, "step = {}", p.value[0]);
    }

    #[test]
    fn rows_and_grad_rows() {
        let mut p = Param::from_values(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(p.row(1), &[4., 5., 6.]);
        p.grad_row_mut(0)[2] = 9.0;
        assert_eq!(p.grad[2], 9.0);
        p.zero_grad();
        assert!(p.grad.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn global_clipping() {
        let mut a = Param::from_values(1, 2, vec![0.0, 0.0]);
        let mut b = Param::from_values(1, 1, vec![0.0]);
        a.grad.copy_from_slice(&[3.0, 0.0]);
        b.grad[0] = 4.0;
        let norm = clip_global_norm(&mut [&mut a, &mut b], 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        let after: f64 = a.grad_norm_sq() + b.grad_norm_sq();
        assert!((after.sqrt() - 1.0).abs() < 1e-5);
        // direction preserved
        assert!(a.grad[0] > 0.0 && b.grad[0] > 0.0);
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        Param::from_values(2, 2, vec![0.0; 3]);
    }
}
