//! Recurrent cells (LSTM, GRU) with manual backprop.
//!
//! Cells are *stateless* computation units: callers own the hidden state
//! and drive sequences / BPTT explicitly (RSRNet unrolls an LSTM over a
//! trajectory; the GM-VSAE baselines unroll GRU encoders/decoders).
//!
//! The inference-only step paths ([`LstmCell::infer_step`],
//! [`LstmCell::infer_step_batch`], [`GruCell::infer_step`]) take reusable
//! [`LstmScratch`]/[`GruScratch`] buffers instead of allocating the
//! `[x; h]` concatenations and gate vectors per point — the serving hot
//! path allocates nothing once a session's scratch is warm. The same
//! strided step helpers back the packed-weight variants in
//! [`crate::pack`], so raw and packed inference share one accumulation
//! order and stay bit-identical.

use crate::ops::{self, kernels, sigmoid};
use crate::param::Param;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Reusable buffers for the allocation-free scalar LSTM inference step:
/// the `[x; h]` concatenation and the `4H` pre-activation gate vector.
#[derive(Debug, Clone, Default)]
pub struct LstmScratch {
    pub(crate) xh: Vec<f32>,
    pub(crate) gates: Vec<f32>,
}

/// Reusable buffers for the allocation-free scalar GRU inference step:
/// `[x; h]` / `[x; r⊙h]` concatenations and the `z`/`r` gate vectors.
#[derive(Debug, Clone, Default)]
pub struct GruScratch {
    pub(crate) xh: Vec<f32>,
    pub(crate) xrh: Vec<f32>,
    pub(crate) z: Vec<f32>,
    pub(crate) r: Vec<f32>,
}

/// Adds the bias into the `4H` pre-activations and applies the LSTM gate
/// element-wise math for one lane: `c ← f⊙c + i⊙g`, `h ← o⊙tanh(c)`.
/// Exactly the expressions of [`LstmCell::forward`], shared by the raw and
/// packed batched/scalar step paths so all four are bit-identical.
#[inline]
pub(crate) fn lstm_gate_fuse(z: &mut [f32], bias: &[f32], c: &mut [f32], h: &mut [f32]) {
    let hd = c.len();
    debug_assert_eq!(z.len(), 4 * hd);
    debug_assert_eq!(bias.len(), 4 * hd);
    debug_assert_eq!(h.len(), hd);
    for (zi, bi) in z.iter_mut().zip(bias) {
        *zi += bi;
    }
    for k in 0..hd {
        let i = sigmoid(z[k]);
        let f = sigmoid(z[hd + k]);
        let g = z[2 * hd + k].tanh();
        let o = sigmoid(z[3 * hd + k]);
        let new_c = f * c[k] + i * g;
        c[k] = new_c;
        h[k] = o * new_c.tanh();
    }
}

/// Scalar LSTM inference step over a strided weight matrix (`stride ==
/// input + hidden` for raw weights; the padded stride for packed ones).
/// Advances `state` in place; allocation-free once `scratch` is warm.
#[allow(clippy::too_many_arguments)]
pub(crate) fn lstm_infer_step_strided(
    w: &[f32],
    stride: usize,
    bias: &[f32],
    input: usize,
    hidden: usize,
    x: &[f32],
    state: &mut LstmState,
    scratch: &mut LstmScratch,
) {
    debug_assert_eq!(x.len(), input);
    debug_assert_eq!(state.h.len(), hidden);
    scratch.xh.clear();
    scratch.xh.extend_from_slice(x);
    scratch.xh.extend_from_slice(&state.h);
    scratch.gates.clear();
    scratch.gates.resize(4 * hidden, 0.0);
    kernels::matvec(
        w,
        stride,
        4 * hidden,
        input + hidden,
        &scratch.xh,
        &mut scratch.gates,
    );
    lstm_gate_fuse(&mut scratch.gates, bias, &mut state.c, &mut state.h);
}

/// Batched LSTM inference step over a strided weight matrix; see
/// [`LstmCell::infer_step_batch`] for the layout contract.
#[allow(clippy::too_many_arguments)]
pub(crate) fn lstm_infer_step_batch_strided(
    w: &[f32],
    stride: usize,
    bias: &[f32],
    input: usize,
    hidden: usize,
    batch: usize,
    xh: &[f32],
    c: &mut [f32],
    h: &mut [f32],
    z_scratch: &mut Vec<f32>,
) {
    debug_assert_eq!(xh.len(), batch * (input + hidden));
    debug_assert_eq!(c.len(), batch * hidden);
    debug_assert_eq!(h.len(), batch * hidden);
    z_scratch.clear();
    z_scratch.resize(batch * 4 * hidden, 0.0);
    kernels::gemm_micro(
        w,
        stride,
        4 * hidden,
        input + hidden,
        xh,
        input + hidden,
        batch,
        z_scratch,
    );
    for b in 0..batch {
        lstm_gate_fuse(
            &mut z_scratch[b * 4 * hidden..(b + 1) * 4 * hidden],
            bias,
            &mut c[b * hidden..(b + 1) * hidden],
            &mut h[b * hidden..(b + 1) * hidden],
        );
    }
}

/// Scalar GRU inference step over strided weight matrices (one `(matrix,
/// stride)` pair per gate). Writes the new hidden vector into `h_new`;
/// bit-identical to [`GruCell::forward`]'s value path.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gru_infer_step_strided(
    wz: (&[f32], usize),
    wr: (&[f32], usize),
    wn: (&[f32], usize),
    bz: &[f32],
    br: &[f32],
    bn: &[f32],
    input: usize,
    hidden: usize,
    x: &[f32],
    h_prev: &[f32],
    h_new: &mut Vec<f32>,
    scratch: &mut GruScratch,
) {
    debug_assert_eq!(x.len(), input);
    debug_assert_eq!(h_prev.len(), hidden);
    let cols = input + hidden;
    scratch.xh.clear();
    scratch.xh.extend_from_slice(x);
    scratch.xh.extend_from_slice(h_prev);
    scratch.z.clear();
    scratch.z.resize(hidden, 0.0);
    scratch.r.clear();
    scratch.r.resize(hidden, 0.0);
    kernels::matvec(wz.0, wz.1, hidden, cols, &scratch.xh, &mut scratch.z);
    kernels::matvec(wr.0, wr.1, hidden, cols, &scratch.xh, &mut scratch.r);
    for k in 0..hidden {
        scratch.z[k] = sigmoid(scratch.z[k] + bz[k]);
        scratch.r[k] = sigmoid(scratch.r[k] + br[k]);
    }
    scratch.xrh.clear();
    scratch.xrh.extend_from_slice(x);
    scratch
        .xrh
        .extend(scratch.r.iter().zip(h_prev).map(|(rk, hk)| rk * hk));
    h_new.clear();
    h_new.resize(hidden, 0.0);
    kernels::matvec(wn.0, wn.1, hidden, cols, &scratch.xrh, h_new);
    for k in 0..hidden {
        h_new[k] = (h_new[k] + bn[k]).tanh();
    }
    for k in 0..hidden {
        h_new[k] = (1.0 - scratch.z[k]) * h_new[k] + scratch.z[k] * h_prev[k];
    }
}

/// Hidden state of an LSTM: `(h, c)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LstmState {
    /// Hidden vector.
    pub h: Vec<f32>,
    /// Cell vector.
    pub c: Vec<f32>,
}

impl LstmState {
    /// Zero state of the given hidden size.
    pub fn zeros(hidden: usize) -> Self {
        LstmState {
            h: vec![0.0; hidden],
            c: vec![0.0; hidden],
        }
    }
}

/// An LSTM cell (Hochreiter & Schmidhuber \[35\]) with combined gate weights:
/// `z = W [x; h] + b`, `W: 4H × (I+H)`, gate order `i, f, g, o`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmCell {
    /// Combined gate weights, `4H × (I+H)`.
    pub w: Param,
    /// Combined gate bias, `4H` (forget-gate slice initialised to 1.0).
    pub b: Param,
    input: usize,
    hidden: usize,
}

/// Backward context of one LSTM step.
#[derive(Debug, Clone)]
pub struct LstmCtx {
    xh: Vec<f32>,
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    c_prev: Vec<f32>,
    tanh_c: Vec<f32>,
}

impl LstmCell {
    /// Creates a Xavier-initialised cell with forget bias 1.0.
    pub fn new(input: usize, hidden: usize, rng: &mut StdRng) -> Self {
        let w = crate::init::xavier(4 * hidden, input + hidden, rng);
        let mut b = Param::zeros(4 * hidden, 1);
        // Forget-gate bias of 1.0 is the standard trick for gradient flow.
        for v in &mut b.value[hidden..2 * hidden] {
            *v = 1.0;
        }
        LstmCell {
            w,
            b,
            input,
            hidden,
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.input
    }

    /// Hidden dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// One step: consumes `x` and the previous state, returns the new state
    /// and the backward context.
    pub fn forward(&self, x: &[f32], prev: &LstmState) -> (LstmState, LstmCtx) {
        debug_assert_eq!(x.len(), self.input);
        debug_assert_eq!(prev.h.len(), self.hidden);
        let h = self.hidden;
        let xh = ops::concat(x, &prev.h);
        let mut z = vec![0.0; 4 * h];
        ops::matvec(&self.w.value, 4 * h, self.input + h, &xh, &mut z);
        for (zi, bi) in z.iter_mut().zip(&self.b.value) {
            *zi += bi;
        }
        let mut i = vec![0.0; h];
        let mut f = vec![0.0; h];
        let mut g = vec![0.0; h];
        let mut o = vec![0.0; h];
        for k in 0..h {
            i[k] = sigmoid(z[k]);
            f[k] = sigmoid(z[h + k]);
            g[k] = z[2 * h + k].tanh();
            o[k] = sigmoid(z[3 * h + k]);
        }
        let mut c = vec![0.0; h];
        let mut hv = vec![0.0; h];
        let mut tanh_c = vec![0.0; h];
        for k in 0..h {
            c[k] = f[k] * prev.c[k] + i[k] * g[k];
            tanh_c[k] = c[k].tanh();
            hv[k] = o[k] * tanh_c[k];
        }
        (
            LstmState { h: hv, c },
            LstmCtx {
                xh,
                i,
                f,
                g,
                o,
                c_prev: prev.c.clone(),
                tanh_c,
            },
        )
    }

    /// Inference-only scalar step advancing `state` in place without the
    /// per-point `concat`/gate allocations of [`LstmCell::forward`] — the
    /// `[x; h]` and pre-activation buffers live in the caller's reusable
    /// [`LstmScratch`]. Bit-identical to the value path of `forward` (same
    /// kernels, same gate expressions).
    pub fn infer_step(&self, x: &[f32], state: &mut LstmState, scratch: &mut LstmScratch) {
        lstm_infer_step_strided(
            &self.w.value,
            self.input + self.hidden,
            &self.b.value,
            self.input,
            self.hidden,
            x,
            state,
            scratch,
        );
    }

    /// Inference-only batched step advancing `batch` independent lanes in
    /// one matrix pass.
    ///
    /// * `xh` — `batch × (input + hidden)` row-major, each lane's input
    ///   concatenated with its previous hidden vector;
    /// * `c` — `batch × hidden` cell states, updated in place;
    /// * `h` — `batch × hidden` output hidden vectors, overwritten;
    /// * `z_scratch` — reusable gate buffer (resized to `batch × 4·hidden`).
    ///
    /// Per-lane results are **bit-identical** to [`LstmCell::forward`]
    /// (same kernel accumulation order, same element-wise gate
    /// expressions); the batched form exists so one pass over the `4H ×
    /// (I+H)` weight matrix serves every lane that advanced this tick.
    pub fn infer_step_batch(
        &self,
        batch: usize,
        xh: &[f32],
        c: &mut [f32],
        h: &mut [f32],
        z_scratch: &mut Vec<f32>,
    ) {
        lstm_infer_step_batch_strided(
            &self.w.value,
            self.input + self.hidden,
            &self.b.value,
            self.input,
            self.hidden,
            batch,
            xh,
            c,
            h,
            z_scratch,
        );
    }

    /// Backward for one step. `dh`/`dc` are the gradients flowing into this
    /// step's output state. Accumulates parameter gradients and returns
    /// `(dx, dh_prev, dc_prev)`.
    pub fn backward(
        &mut self,
        ctx: &LstmCtx,
        dh: &[f32],
        dc: &[f32],
    ) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let h = self.hidden;
        let mut dz = vec![0.0; 4 * h];
        let mut dc_prev = vec![0.0; h];
        for k in 0..h {
            let dct = dc[k] + dh[k] * ctx.o[k] * (1.0 - ctx.tanh_c[k] * ctx.tanh_c[k]);
            let d_o = dh[k] * ctx.tanh_c[k];
            let d_i = dct * ctx.g[k];
            let d_f = dct * ctx.c_prev[k];
            let d_g = dct * ctx.i[k];
            dz[k] = d_i * ctx.i[k] * (1.0 - ctx.i[k]);
            dz[h + k] = d_f * ctx.f[k] * (1.0 - ctx.f[k]);
            dz[2 * h + k] = d_g * (1.0 - ctx.g[k] * ctx.g[k]);
            dz[3 * h + k] = d_o * ctx.o[k] * (1.0 - ctx.o[k]);
            dc_prev[k] = dct * ctx.f[k];
        }
        ops::outer_acc(&mut self.w.grad, 4 * h, self.input + h, &dz, &ctx.xh);
        ops::axpy(1.0, &dz, &mut self.b.grad);
        let mut dxh = vec![0.0; self.input + h];
        ops::matvec_t_acc(&self.w.value, 4 * h, self.input + h, &dz, &mut dxh);
        let dx = dxh[..self.input].to_vec();
        let dh_prev = dxh[self.input..].to_vec();
        (dx, dh_prev, dc_prev)
    }

    /// Parameters for optimiser iteration.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    /// Clears gradients.
    pub fn zero_grad(&mut self) {
        self.w.zero_grad();
        self.b.zero_grad();
    }
}

/// A GRU cell (used by the GM-VSAE baseline family's encoders/decoders).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GruCell {
    /// Update-gate weights, `H × (I+H)`.
    pub wz: Param,
    /// Update-gate bias.
    pub bz: Param,
    /// Reset-gate weights, `H × (I+H)`.
    pub wr: Param,
    /// Reset-gate bias.
    pub br: Param,
    /// Candidate weights, `H × (I+H)` (acting on `[x; r⊙h]`).
    pub wn: Param,
    /// Candidate bias.
    pub bn: Param,
    input: usize,
    hidden: usize,
}

/// Backward context of one GRU step.
#[derive(Debug, Clone)]
pub struct GruCtx {
    xh: Vec<f32>,
    xrh: Vec<f32>,
    z: Vec<f32>,
    r: Vec<f32>,
    n: Vec<f32>,
    h_prev: Vec<f32>,
}

impl GruCell {
    /// Creates a Xavier-initialised GRU cell.
    pub fn new(input: usize, hidden: usize, rng: &mut StdRng) -> Self {
        GruCell {
            wz: crate::init::xavier(hidden, input + hidden, rng),
            bz: Param::zeros(hidden, 1),
            wr: crate::init::xavier(hidden, input + hidden, rng),
            br: Param::zeros(hidden, 1),
            wn: crate::init::xavier(hidden, input + hidden, rng),
            bn: Param::zeros(hidden, 1),
            input,
            hidden,
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.input
    }

    /// Hidden dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// One step: returns the new hidden vector and the backward context.
    pub fn forward(&self, x: &[f32], h_prev: &[f32]) -> (Vec<f32>, GruCtx) {
        debug_assert_eq!(x.len(), self.input);
        debug_assert_eq!(h_prev.len(), self.hidden);
        let h = self.hidden;
        let xh = ops::concat(x, h_prev);
        let mut z = vec![0.0; h];
        let mut r = vec![0.0; h];
        ops::matvec(&self.wz.value, h, self.input + h, &xh, &mut z);
        ops::matvec(&self.wr.value, h, self.input + h, &xh, &mut r);
        for k in 0..h {
            z[k] = sigmoid(z[k] + self.bz.value[k]);
            r[k] = sigmoid(r[k] + self.br.value[k]);
        }
        let rh: Vec<f32> = r.iter().zip(h_prev).map(|(rk, hk)| rk * hk).collect();
        let xrh = ops::concat(x, &rh);
        let mut n = vec![0.0; h];
        ops::matvec(&self.wn.value, h, self.input + h, &xrh, &mut n);
        for (nk, bk) in n.iter_mut().zip(&self.bn.value) {
            *nk = (*nk + bk).tanh();
        }
        let h_new: Vec<f32> = (0..h)
            .map(|k| (1.0 - z[k]) * n[k] + z[k] * h_prev[k])
            .collect();
        (
            h_new,
            GruCtx {
                xh,
                xrh,
                z,
                r,
                n,
                h_prev: h_prev.to_vec(),
            },
        )
    }

    /// Inference-only scalar step writing the new hidden vector into
    /// `h_new`, without the per-point `concat`/gate allocations of
    /// [`GruCell::forward`] — all intermediates live in the caller's
    /// reusable [`GruScratch`]. Bit-identical to the value path of
    /// `forward`.
    pub fn infer_step(
        &self,
        x: &[f32],
        h_prev: &[f32],
        h_new: &mut Vec<f32>,
        scratch: &mut GruScratch,
    ) {
        let cols = self.input + self.hidden;
        gru_infer_step_strided(
            (&self.wz.value, cols),
            (&self.wr.value, cols),
            (&self.wn.value, cols),
            &self.bz.value,
            &self.br.value,
            &self.bn.value,
            self.input,
            self.hidden,
            x,
            h_prev,
            h_new,
            scratch,
        );
    }

    /// Backward for one step: accumulates parameter gradients, returns
    /// `(dx, dh_prev)`.
    pub fn backward(&mut self, ctx: &GruCtx, dh: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let h = self.hidden;
        let inp = self.input;
        let mut dz_pre = vec![0.0; h];
        let mut dn_pre = vec![0.0; h];
        let mut dh_prev = vec![0.0; h];
        for k in 0..h {
            let dn = dh[k] * (1.0 - ctx.z[k]);
            let dzg = dh[k] * (ctx.h_prev[k] - ctx.n[k]);
            dh_prev[k] = dh[k] * ctx.z[k];
            dz_pre[k] = dzg * ctx.z[k] * (1.0 - ctx.z[k]);
            dn_pre[k] = dn * (1.0 - ctx.n[k] * ctx.n[k]);
        }
        // Candidate path: input was [x; r ⊙ h_prev].
        ops::outer_acc(&mut self.wn.grad, h, inp + h, &dn_pre, &ctx.xrh);
        ops::axpy(1.0, &dn_pre, &mut self.bn.grad);
        let mut dxrh = vec![0.0; inp + h];
        ops::matvec_t_acc(&self.wn.value, h, inp + h, &dn_pre, &mut dxrh);
        let mut dx = dxrh[..inp].to_vec();
        let mut dr_pre = vec![0.0; h];
        for k in 0..h {
            let drh = dxrh[inp + k];
            dh_prev[k] += drh * ctx.r[k];
            let dr = drh * ctx.h_prev[k];
            dr_pre[k] = dr * ctx.r[k] * (1.0 - ctx.r[k]);
        }
        // Gate paths: input was [x; h_prev].
        ops::outer_acc(&mut self.wz.grad, h, inp + h, &dz_pre, &ctx.xh);
        ops::axpy(1.0, &dz_pre, &mut self.bz.grad);
        ops::outer_acc(&mut self.wr.grad, h, inp + h, &dr_pre, &ctx.xh);
        ops::axpy(1.0, &dr_pre, &mut self.br.grad);
        let mut dxh = vec![0.0; inp + h];
        ops::matvec_t_acc(&self.wz.value, h, inp + h, &dz_pre, &mut dxh);
        ops::matvec_t_acc(&self.wr.value, h, inp + h, &dr_pre, &mut dxh);
        for k in 0..inp {
            dx[k] += dxh[k];
        }
        for k in 0..h {
            dh_prev[k] += dxh[inp + k];
        }
        (dx, dh_prev)
    }

    /// Parameters for optimiser iteration.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![
            &mut self.wz,
            &mut self.bz,
            &mut self.wr,
            &mut self.br,
            &mut self.wn,
            &mut self.bn,
        ]
    }

    /// Clears gradients.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_model_gradients;
    use crate::init::seeded_rng;

    const I: usize = 3;
    const H: usize = 4;

    fn seq() -> Vec<Vec<f32>> {
        vec![
            vec![0.5, -0.3, 0.8],
            vec![-0.2, 0.9, 0.1],
            vec![0.3, 0.3, -0.7],
        ]
    }

    /// Loss: sum of the final hidden vector after unrolling the sequence.
    fn lstm_loss(cell: &LstmCell) -> f32 {
        let mut state = LstmState::zeros(H);
        for x in seq() {
            let (s, _) = cell.forward(&x, &state);
            state = s;
        }
        state.h.iter().sum()
    }

    #[test]
    fn lstm_gradcheck_through_time() {
        let mut cell = LstmCell::new(I, H, &mut seeded_rng(1));
        cell.zero_grad();
        // forward, keeping contexts
        let mut state = LstmState::zeros(H);
        let mut ctxs = Vec::new();
        for x in seq() {
            let (s, ctx) = cell.forward(&x, &state);
            ctxs.push(ctx);
            state = s;
        }
        // BPTT
        let mut dh = vec![1.0; H];
        let mut dc = vec![0.0; H];
        for ctx in ctxs.iter().rev() {
            let (_dx, dhp, dcp) = cell.backward(ctx, &dh, &dc);
            dh = dhp;
            dc = dcp;
        }
        check_model_gradients(
            &mut cell,
            &lstm_loss,
            &|c| vec![&mut c.w, &mut c.b],
            1e-2,
            3e-2,
        );
    }

    #[test]
    fn lstm_batched_step_matches_scalar_bitwise() {
        // Three lanes with different inputs and different prior states must
        // advance exactly as three scalar forward() calls would.
        let cell = LstmCell::new(I, H, &mut seeded_rng(11));
        let inputs = seq();
        let mut states: Vec<LstmState> = (0..3)
            .map(|lane| {
                let mut s = LstmState::zeros(H);
                // desynchronise the lanes
                for x in inputs.iter().take(lane) {
                    s = cell.forward(x, &s).0;
                }
                s
            })
            .collect();

        let mut xh = Vec::new();
        let mut c = Vec::new();
        for (lane, s) in states.iter().enumerate() {
            xh.extend_from_slice(&inputs[lane]);
            xh.extend_from_slice(&s.h);
            c.extend_from_slice(&s.c);
        }
        let mut h = vec![0.0; 3 * H];
        let mut z = Vec::new();
        cell.infer_step_batch(3, &xh, &mut c, &mut h, &mut z);

        for (lane, s) in states.iter_mut().enumerate() {
            let (expect, _) = cell.forward(&inputs[lane], s);
            assert_eq!(&h[lane * H..(lane + 1) * H], &expect.h[..], "h lane {lane}");
            assert_eq!(&c[lane * H..(lane + 1) * H], &expect.c[..], "c lane {lane}");
        }
    }

    #[test]
    fn lstm_state_shapes_and_bounds() {
        let cell = LstmCell::new(I, H, &mut seeded_rng(2));
        let (s, _) = cell.forward(&[1.0, 2.0, 3.0], &LstmState::zeros(H));
        assert_eq!(s.h.len(), H);
        assert_eq!(s.c.len(), H);
        // h = o * tanh(c) is in (-1, 1)
        assert!(s.h.iter().all(|&v| v.abs() < 1.0));
    }

    #[test]
    fn lstm_forget_bias_initialised() {
        let cell = LstmCell::new(I, H, &mut seeded_rng(3));
        assert!(cell.b.value[H..2 * H].iter().all(|&v| v == 1.0));
        assert!(cell.b.value[..H].iter().all(|&v| v == 0.0));
    }

    fn gru_loss(cell: &GruCell) -> f32 {
        let mut h = vec![0.0; H];
        for x in seq() {
            let (hn, _) = cell.forward(&x, &h);
            h = hn;
        }
        h.iter().sum()
    }

    #[test]
    fn gru_gradcheck_through_time() {
        let mut cell = GruCell::new(I, H, &mut seeded_rng(4));
        cell.zero_grad();
        let mut h = vec![0.0; H];
        let mut ctxs = Vec::new();
        for x in seq() {
            let (hn, ctx) = cell.forward(&x, &h);
            ctxs.push(ctx);
            h = hn;
        }
        let mut dh = vec![1.0; H];
        for ctx in ctxs.iter().rev() {
            let (_dx, dhp) = cell.backward(ctx, &dh);
            dh = dhp;
        }
        check_model_gradients(
            &mut cell,
            &gru_loss,
            &|c| {
                vec![
                    &mut c.wz, &mut c.bz, &mut c.wr, &mut c.br, &mut c.wn, &mut c.bn,
                ]
            },
            1e-2,
            3e-2,
        );
    }

    #[test]
    fn gru_interpolates_between_prev_and_candidate() {
        // With z forced to 1 (huge bias), h_new == h_prev.
        let mut cell = GruCell::new(I, H, &mut seeded_rng(5));
        for v in &mut cell.bz.value {
            *v = 50.0;
        }
        let h_prev = vec![0.3; H];
        let (h, _) = cell.forward(&[0.1, 0.2, 0.3], &h_prev);
        for k in 0..H {
            assert!((h[k] - h_prev[k]).abs() < 1e-5);
        }
    }

    #[test]
    fn lstm_input_gradient_direction() {
        // dL/dx from backward must match finite differences on the input.
        fn loss_of_x(cell: &LstmCell, x: &[f32]) -> f32 {
            let (s, _) = cell.forward(x, &LstmState::zeros(H));
            s.h.iter().sum()
        }
        let mut cell = LstmCell::new(I, H, &mut seeded_rng(6));
        let x = vec![0.2f32, -0.4, 0.6];
        let base_ctx = cell.forward(&x, &LstmState::zeros(H)).1;
        cell.zero_grad();
        let (dx, _, _) = cell.backward(&base_ctx, &[1.0; H], &[0.0; H]);
        for k in 0..I {
            let mut xp = x.clone();
            xp[k] += 1e-2;
            let mut xm = x.clone();
            xm[k] -= 1e-2;
            let numeric = (loss_of_x(&cell, &xp) - loss_of_x(&cell, &xm)) / 2e-2;
            assert!(
                (dx[k] - numeric).abs() / 1.0f32.max(numeric.abs()) < 3e-2,
                "dx[{k}]={} numeric={numeric}",
                dx[k]
            );
        }
    }
}
