//! Deterministic parameter initialisation.

use crate::param::Param;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Xavier/Glorot-uniform initialised matrix: entries uniform in
/// `[-b, b]` with `b = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Param {
    let bound = (6.0 / (rows + cols) as f64).sqrt() as f32;
    uniform(rows, cols, bound, rng)
}

/// Uniformly initialised matrix with entries in `[-bound, bound]`.
pub fn uniform(rows: usize, cols: usize, bound: f32, rng: &mut StdRng) -> Param {
    let value = (0..rows * cols)
        .map(|_| rng.gen_range(-bound..=bound))
        .collect();
    Param::from_values(rows, cols, value)
}

/// Convenience: a seeded RNG for model construction.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_within_bound_and_nonzero() {
        let mut rng = seeded_rng(1);
        let p = xavier(16, 8, &mut rng);
        let bound = (6.0f64 / 24.0).sqrt() as f32 + 1e-6;
        assert!(p.value.iter().all(|&v| v.abs() <= bound));
        assert!(p.value.iter().any(|&v| v != 0.0));
        assert_eq!(p.rows, 16);
        assert_eq!(p.cols, 8);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = xavier(4, 4, &mut seeded_rng(7));
        let b = xavier(4, 4, &mut seeded_rng(7));
        assert_eq!(a.value, b.value);
        let c = xavier(4, 4, &mut seeded_rng(8));
        assert_ne!(a.value, c.value);
    }
}
