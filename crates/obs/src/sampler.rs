//! Background gauge sampler.
//!
//! [`Obs::start_sampler`](crate::Obs::start_sampler) spawns one thread
//! that periodically copies every registered gauge into a bounded ring
//! of [`GaugeSample`](crate::GaugeSample) rows (timestamped with
//! monotonic nanoseconds since the `Obs` was built). The thread holds
//! only a `Weak` reference, so dropping the last `Obs` ends it; the
//! returned [`Sampler`] guard stops it eagerly on drop.

use crate::export::GaugeSample;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub(crate) struct SampleRing {
    buf: VecDeque<GaugeSample>,
    cap: usize,
}

impl SampleRing {
    pub(crate) fn new(cap: usize) -> Self {
        SampleRing {
            buf: VecDeque::with_capacity(cap.min(4096)),
            cap: cap.max(1),
        }
    }

    pub(crate) fn push(&mut self, sample: GaugeSample) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(sample);
    }

    pub(crate) fn rows(&self) -> Vec<GaugeSample> {
        self.buf.iter().cloned().collect()
    }
}

/// Guard for a running background sampler thread. Stopping (or dropping)
/// it signals the thread and joins it; the sampled rows stay in the
/// owning [`Obs`](crate::Obs) and appear in subsequent snapshots.
pub struct Sampler {
    stop: Option<Arc<AtomicBool>>,
    join: Option<JoinHandle<()>>,
}

impl Sampler {
    /// A guard over nothing — what a disabled [`Obs`](crate::Obs)
    /// returns.
    pub(crate) fn inert() -> Self {
        Sampler {
            stop: None,
            join: None,
        }
    }

    pub(crate) fn spawn(inner: Weak<crate::Inner>, every: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name("obs-sampler".into())
            .spawn(move || {
                while !flag.load(Ordering::Relaxed) {
                    // Sleep in short slices so stop() returns promptly
                    // even with long sampling intervals.
                    let wake = Instant::now() + every;
                    while Instant::now() < wake {
                        if flag.load(Ordering::Relaxed) {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(5).min(every));
                    }
                    match inner.upgrade() {
                        Some(inner) => inner.sample(),
                        None => return,
                    }
                }
            })
            .expect("spawn obs-sampler thread");
        Sampler {
            stop: Some(stop),
            join: Some(join),
        }
    }

    /// Signals the thread and waits for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(stop) = self.stop.take() {
            stop.store(true, Ordering::Relaxed);
        }
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

pub(crate) type Samples = Mutex<SampleRing>;
