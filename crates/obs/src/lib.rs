//! Zero-dependency telemetry spine for the serving stack.
//!
//! One [`Obs`] handle (cheap to clone — an `Arc` or nothing) carries
//! four cooperating pieces through every serving layer:
//!
//! 1. a **metrics registry** — atomic counters, gauges and HDR latency
//!    histograms addressed by *name + static label set* (shard, epoch,
//!    tier, regime, stage), resolved once into lock-free handles
//!    ([`Counter`], [`Gauge`], [`Histo`]);
//! 2. **stage-level tracing** — [`Span`]s finished through a
//!    [`StageHandle`] feed per-stage histograms and a bounded ring of
//!    fixed-size [`SpanRecord`]s (no per-event allocation);
//! 3. a bounded **structured event log** of discrete [`OpsEvent`]s with
//!    monotone sequence numbers for loss-aware tailing;
//! 4. **export** — [`Snapshot`] (JSON via the vendored serde subset, or
//!    Prometheus text exposition) plus a background [`Sampler`] thread
//!    recording gauge history.
//!
//! Telemetry is strictly opt-in: [`Obs::disabled`] (the
//! [`ObsConfig::disabled`] / `Default` state) hands out handles that
//! never read the clock, never lock and never allocate, so the disabled
//! path is provably inert — `tests/obs.rs` property-checks that labels
//! are byte-identical with telemetry on and off.
//!
//! # Metric naming scheme
//!
//! Every metric name starts with `oasd_`; counters end in `_total`;
//! durations are nanosecond histograms ending in `_nanos`. Label keys
//! come from the fixed vocabulary `{shard, epoch, tier, regime, stage}`.
//! The [`names`] module holds the canonical constants.
//!
//! ```
//! use obs::{names, Obs, ObsConfig, OpsEvent, Stage};
//!
//! let obs = Obs::new(ObsConfig::enabled());
//! let accepted = obs.counter(names::INGEST_SUBMITTED, &[("shard", "0")]);
//! accepted.add(41);
//! accepted.inc();
//!
//! let flush = obs.stage(Stage::Flush, 0);
//! let span = flush.start();
//! // ... do the work being timed ...
//! flush.finish(span);
//!
//! obs.event(OpsEvent::BackpressureShed { shed: 7 });
//!
//! let snap = obs.snapshot();
//! assert!(!snap.is_empty());
//! assert!(snap.to_prometheus().contains("oasd_ingest_submitted_total{shard=\"0\"} 42"));
//!
//! // The same calls against a disabled handle are no-ops:
//! let off = Obs::disabled();
//! off.counter(names::INGEST_SUBMITTED, &[("shard", "0")]).inc();
//! assert!(off.snapshot().is_empty());
//! ```

#![deny(missing_docs)]

mod events;
mod export;
mod hist;
mod registry;
mod sampler;
mod span;

pub use events::{EventTail, OpsEvent, SeqEvent};
pub use export::{GaugeSample, HistogramSnapshot, MetricValue, Snapshot};
pub use hist::LatencyHistogram;
pub use registry::{Counter, Gauge, Histo};
pub use sampler::Sampler;
pub use span::{Span, SpanRecord, Stage, StageHandle};

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Canonical metric names (see the crate docs for the naming scheme).
pub mod names {
    /// Per-stage latency histogram, labelled `{stage, shard}`.
    pub const STAGE_NANOS: &str = "oasd_stage_nanos";
    /// Events accepted by `submit`, per shard.
    pub const INGEST_SUBMITTED: &str = "oasd_ingest_submitted_total";
    /// Submits rejected with `QueueFull`, per shard.
    pub const INGEST_REJECTED: &str = "oasd_ingest_rejected_total";
    /// Events flushed into shard engines, per shard.
    pub const INGEST_FLUSHED: &str = "oasd_ingest_flushed_events_total";
    /// Micro-batch flushes executed, per shard.
    pub const INGEST_FLUSHES: &str = "oasd_ingest_flushes_total";
    /// Submit→label latency histogram, per shard.
    pub const INGEST_LATENCY: &str = "oasd_ingest_latency_nanos";
    /// Supervised worker restarts after a panic, per shard.
    pub const INGEST_WORKER_RESTARTS: &str = "oasd_ingest_worker_restarts_total";
    /// Sessions quarantined with a terminal `SessionFault`, per shard.
    pub const INGEST_QUARANTINED_SESSIONS: &str = "oasd_ingest_quarantined_sessions_total";
    /// Events charged to quarantined sessions (counted, never delivered),
    /// per shard.
    pub const INGEST_QUARANTINED_EVENTS: &str = "oasd_ingest_quarantined_events_total";
    /// Events shed inside a worker (stray or undeliverable), per shard.
    pub const INGEST_SHED_EVENTS: &str = "oasd_ingest_shed_events_total";
    /// Submits rejected because their deadline expired, per shard.
    pub const INGEST_DEADLINE_EXCEEDED: &str = "oasd_ingest_deadline_exceeded_total";
    /// Degraded-mode admission gauge, per shard (1 while degraded).
    pub const INGEST_DEGRADED: &str = "oasd_ingest_degraded";
    /// Sessions currently held, labelled `{shard, tier}` with
    /// `tier="hot"` (resident) or `tier="frozen"` (hibernated).
    pub const ENGINE_SESSIONS: &str = "oasd_engine_sessions";
    /// Bytes pinned by the frozen-state arena, per shard.
    pub const ENGINE_ARENA_BYTES: &str = "oasd_engine_arena_bytes";
    /// Label decisions made, per shard.
    pub const ENGINE_DECISIONS: &str = "oasd_engine_decisions_total";
    /// Anomalous labels emitted, per shard.
    pub const ENGINE_ALERTS: &str = "oasd_engine_alerts_total";
    /// Model swaps applied, per shard.
    pub const ENGINE_SWAPS: &str = "oasd_engine_model_swaps_total";
    /// Live sessions pinned per model epoch, labelled `{shard, epoch}`.
    pub const EPOCH_SESSIONS: &str = "oasd_epoch_live_sessions";
    /// Events delivered by a scenario replay, labelled `{regime}` by the
    /// scenario driver.
    pub const SCENARIO_EVENTS: &str = "oasd_scenario_events_total";
    /// Events shed by a scenario replay under `Backpressure::Shed`.
    pub const SCENARIO_SHED: &str = "oasd_scenario_shed_total";
    /// Measured ns/op of one micro-kernel shape, labelled
    /// `{op, dims, batch}` (recorded by the kernel bench).
    pub const KERNEL_NANOS: &str = "oasd_kernel_nanos";
    /// Wire connections accepted by the serving front door.
    pub const SERVE_CONNECTIONS: &str = "oasd_serve_connections_total";
    /// Request frames decoded off the wire, labelled `{op}`.
    pub const SERVE_FRAMES: &str = "oasd_serve_frames_total";
    /// Typed wire errors sent to clients, labelled `{error}`.
    pub const SERVE_WIRE_ERRORS: &str = "oasd_serve_wire_errors_total";
    /// Sessions opened over the wire, labelled `{tenant}`.
    pub const SERVE_OPENS: &str = "oasd_serve_opens_total";
    /// Opens shed by per-tenant session quotas, labelled `{tenant}`.
    pub const SERVE_QUOTA_SHED: &str = "oasd_serve_quota_shed_total";
    /// Ops (HTTP) requests served, labelled `{path}`.
    pub const SERVE_HTTP_REQUESTS: &str = "oasd_serve_http_requests_total";
}

/// Construction options for [`Obs::new`]. `Default` is
/// [`disabled`](ObsConfig::disabled), so embedding an `ObsConfig` in a
/// larger config keeps telemetry off unless asked for.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Master switch; `false` makes [`Obs::new`] return
    /// [`Obs::disabled`].
    pub enabled: bool,
    /// Capacity of the ops-event ring.
    pub event_capacity: usize,
    /// Capacity of the span-record ring.
    pub span_capacity: usize,
    /// Capacity of the background-sampler gauge-history ring.
    pub sample_capacity: usize,
}

impl ObsConfig {
    /// Telemetry off — every handle minted is a no-op.
    pub fn disabled() -> Self {
        ObsConfig {
            enabled: false,
            event_capacity: 0,
            span_capacity: 0,
            sample_capacity: 0,
        }
    }

    /// Telemetry on with default ring capacities (1024 events, 4096
    /// spans, 4096 samples).
    pub fn enabled() -> Self {
        ObsConfig {
            enabled: true,
            event_capacity: 1024,
            span_capacity: 4096,
            sample_capacity: 4096,
        }
    }
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig::disabled()
    }
}

pub(crate) struct Inner {
    registry: registry::Registry,
    events: events::EventLog,
    spans: Arc<span::SpanRing>,
    samples: sampler::Samples,
    start: Instant,
}

impl Inner {
    /// Copies every gauge into the sample ring (one sampler tick).
    pub(crate) fn sample(&self) {
        let at_nanos = hist::clamp_nanos(self.start.elapsed());
        let mut rows = Vec::new();
        self.registry.visit(
            |_, _| {},
            |key, value| {
                rows.push(GaugeSample {
                    at_nanos,
                    name: key.render(),
                    value,
                })
            },
            |_, _| {},
        );
        let mut ring = self.samples.lock().unwrap();
        for row in rows {
            ring.push(row);
        }
    }
}

/// The telemetry handle threaded through the serving stack.
///
/// Cloning is cheap (an `Arc` bump, or nothing when disabled); every
/// layer that wants to record resolves its handles once at wiring time
/// and the hot path touches only relaxed atomics. See the crate docs for
/// the full tour.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Obs {
    /// The inert handle: no registry, no rings, no clock reads.
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// Builds a handle from `cfg` ([`Obs::disabled`] when
    /// `cfg.enabled` is `false`).
    pub fn new(cfg: ObsConfig) -> Self {
        if !cfg.enabled {
            return Obs::disabled();
        }
        Obs {
            inner: Some(Arc::new(Inner {
                registry: registry::Registry::new(),
                events: events::EventLog::new(cfg.event_capacity.max(1)),
                spans: Arc::new(span::SpanRing::new(cfg.span_capacity.max(1))),
                samples: Mutex::new(sampler::SampleRing::new(cfg.sample_capacity.max(1))),
                start: Instant::now(),
            })),
        }
    }

    /// `true` when this handle actually records.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Resolves (registering on first use) a counter handle.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match &self.inner {
            Some(inner) => Counter::live(inner.registry.counter(name, labels)),
            None => Counter::disabled(),
        }
    }

    /// Resolves (registering on first use) a gauge handle.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match &self.inner {
            Some(inner) => Gauge::live(inner.registry.gauge(name, labels)),
            None => Gauge::disabled(),
        }
    }

    /// Resolves (registering on first use) a histogram handle.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histo {
        match &self.inner {
            Some(inner) => Histo::live(inner.registry.histogram(name, labels)),
            None => Histo::disabled(),
        }
    }

    /// Resolves a stage tracer for `(stage, shard)`: the
    /// [`names::STAGE_NANOS`] histogram plus the shared span ring.
    pub fn stage(&self, stage: Stage, shard: u32) -> StageHandle {
        match &self.inner {
            Some(inner) => {
                let shard_label = shard.to_string();
                let histo = Histo::live(inner.registry.histogram(
                    names::STAGE_NANOS,
                    &[("stage", stage.name()), ("shard", &shard_label)],
                ));
                StageHandle::live(histo, Arc::clone(&inner.spans), stage, shard)
            }
            None => StageHandle::disabled(),
        }
    }

    /// Logs one ops event, returning its sequence number (0 and a no-op
    /// when disabled).
    pub fn event(&self, event: OpsEvent) -> u64 {
        match &self.inner {
            Some(inner) => inner.events.push(event),
            None => 0,
        }
    }

    /// Tails the event log from sequence `since` (an empty, loss-free
    /// tail when disabled).
    pub fn tail_events(&self, since: u64) -> EventTail {
        match &self.inner {
            Some(inner) => inner.events.tail(since),
            None => EventTail {
                events: Vec::new(),
                missed: 0,
            },
        }
    }

    /// Takes one gauge sample synchronously (what the background sampler
    /// does on its interval); useful in tests and at shutdown.
    pub fn sample_now(&self) {
        if let Some(inner) = &self.inner {
            inner.sample();
        }
    }

    /// Spawns the background sampler thread, one gauge sweep per
    /// `every`. Returns an inert guard when disabled. The thread holds
    /// only a weak reference: dropping the last `Obs` (or the guard)
    /// stops it.
    pub fn start_sampler(&self, every: Duration) -> Sampler {
        match &self.inner {
            Some(inner) => Sampler::spawn(Arc::downgrade(inner), every),
            None => Sampler::inert(),
        }
    }

    /// Point-in-time export of everything recorded so far (an empty
    /// [`Snapshot`] when disabled).
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        let mut snap = Snapshot::default();
        inner.registry.visit(
            |key, value| {
                snap.counters.push(MetricValue {
                    name: key.name.clone(),
                    labels: key.labels.clone(),
                    value,
                })
            },
            |key, value| {
                snap.gauges.push(MetricValue {
                    name: key.name.clone(),
                    labels: key.labels.clone(),
                    value,
                })
            },
            |key, h| {
                snap.histograms.push(HistogramSnapshot::from_hist(
                    key.name.clone(),
                    key.labels.clone(),
                    &h,
                ))
            },
        );
        let tail = inner.events.tail(0);
        snap.events = tail.events;
        snap.events_total = inner.events.pushed();
        let (spans, dropped) = inner.spans.drain();
        snap.spans = spans;
        snap.spans_dropped = dropped;
        snap.samples = inner.samples.lock().unwrap().rows();
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_obs_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        obs.counter("oasd_x_total", &[]).inc();
        obs.gauge("oasd_g", &[]).set(3);
        obs.histogram("oasd_h_nanos", &[])
            .record(Duration::from_micros(1));
        let h = obs.stage(Stage::Flush, 0);
        let span = h.start();
        h.finish(span);
        obs.event(OpsEvent::BackpressureShed { shed: 1 });
        obs.sample_now();
        let _sampler = obs.start_sampler(Duration::from_millis(1));
        assert!(obs.snapshot().is_empty());
    }

    #[test]
    fn snapshot_carries_all_four_pieces() {
        let obs = Obs::new(ObsConfig::enabled());
        obs.counter(names::INGEST_SUBMITTED, &[("shard", "0")])
            .add(7);
        obs.gauge(names::ENGINE_SESSIONS, &[("shard", "0"), ("tier", "hot")])
            .set(5);
        let stage = obs.stage(Stage::BatchCompute, 0);
        let span = stage.start();
        stage.finish(span);
        obs.event(OpsEvent::EpochRetired { shard: 0, seq: 1 });
        obs.sample_now();
        let snap = obs.snapshot();
        assert!(!snap.is_empty());
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters[0].value, 7);
        assert_eq!(snap.gauges.len(), 1);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].count, 1);
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.samples.len(), 1);
        assert_eq!(snap.samples[0].value, 5);
    }

    #[test]
    fn clones_share_state() {
        let obs = Obs::new(ObsConfig::enabled());
        let other = obs.clone();
        other.counter("oasd_shared_total", &[]).add(2);
        obs.counter("oasd_shared_total", &[]).add(3);
        assert_eq!(obs.snapshot().counters[0].value, 5);
    }

    #[test]
    fn background_sampler_samples_and_stops() {
        let obs = Obs::new(ObsConfig::enabled());
        obs.gauge("oasd_g", &[]).set(9);
        let sampler = obs.start_sampler(Duration::from_millis(5));
        let deadline = Instant::now() + Duration::from_secs(5);
        while obs.snapshot().samples.is_empty() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        sampler.stop();
        let snap = obs.snapshot();
        assert!(!snap.samples.is_empty(), "sampler never ticked");
        assert_eq!(snap.samples[0].value, 9);
        assert_eq!(snap.samples[0].name, "oasd_g");
    }
}
