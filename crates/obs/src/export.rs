//! Snapshot export: the JSON payload and Prometheus text exposition the
//! future `oasd-serve` ops endpoints will return.
//!
//! A [`Snapshot`] is a point-in-time copy of everything an
//! [`Obs`](crate::Obs) holds — counters, gauges, per-stage histograms
//! (reduced to quantiles), the retained event/span rings and any sampler
//! rows. It serialises to JSON through the vendored serde subset and to
//! the Prometheus text format (version 0.0.4: `# TYPE` comments,
//! `name{label="value"} value` lines, summary quantiles).

use crate::events::SeqEvent;
use crate::span::SpanRecord;
use crate::LatencyHistogram;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One counter or gauge reading.
#[derive(Debug, Clone, Serialize)]
pub struct MetricValue {
    /// Metric name (already carries the `oasd_` prefix).
    pub name: String,
    /// Canonically sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Current value.
    pub value: u64,
}

/// One histogram reduced to its summary statistics (nanoseconds).
#[derive(Debug, Clone, Serialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Canonically sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating at `u64::MAX`).
    pub sum_nanos: u64,
    /// Median.
    pub p50_nanos: u64,
    /// 90th percentile.
    pub p90_nanos: u64,
    /// 99th percentile.
    pub p99_nanos: u64,
    /// Mean.
    pub mean_nanos: u64,
    /// Exact maximum.
    pub max_nanos: u64,
}

impl HistogramSnapshot {
    /// Reduces a loaded histogram under a metric identity.
    pub(crate) fn from_hist(
        name: String,
        labels: Vec<(String, String)>,
        h: &LatencyHistogram,
    ) -> Self {
        HistogramSnapshot {
            name,
            labels,
            count: h.count(),
            sum_nanos: u64::try_from(h.sum_nanos()).unwrap_or(u64::MAX),
            p50_nanos: h.percentile(0.50).as_nanos() as u64,
            p90_nanos: h.percentile(0.90).as_nanos() as u64,
            p99_nanos: h.percentile(0.99).as_nanos() as u64,
            mean_nanos: h.mean().as_nanos() as u64,
            max_nanos: h.max().as_nanos() as u64,
        }
    }
}

/// One background-sampler gauge reading.
#[derive(Debug, Clone, Serialize)]
pub struct GaugeSample {
    /// Monotonic capture time, nanoseconds since the owning
    /// [`Obs`](crate::Obs) was created.
    pub at_nanos: u64,
    /// Rendered metric identity (`name{label="value",...}`).
    pub name: String,
    /// Gauge value at capture time.
    pub value: u64,
}

/// Point-in-time export of one [`Obs`](crate::Obs).
#[derive(Debug, Clone, Default, Serialize)]
pub struct Snapshot {
    /// Monotone counters, name-sorted.
    pub counters: Vec<MetricValue>,
    /// Gauges, name-sorted.
    pub gauges: Vec<MetricValue>,
    /// Histograms reduced to quantiles, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
    /// Retained ops events, oldest first.
    pub events: Vec<SeqEvent>,
    /// Events ever logged (`events_total - events.len()` were evicted).
    pub events_total: u64,
    /// Retained span records, oldest first.
    pub spans: Vec<SpanRecord>,
    /// Span records evicted from the ring so far.
    pub spans_dropped: u64,
    /// Background-sampler gauge history, oldest first.
    pub samples: Vec<GaugeSample>,
}

impl Snapshot {
    /// `true` when nothing was ever recorded (also the permanent state
    /// of a disabled [`Obs`](crate::Obs)).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.events.is_empty()
            && self.spans.is_empty()
            && self.samples.is_empty()
    }

    /// Compact JSON rendering (the ops-endpoint payload).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialisation is infallible")
    }

    /// Human-indented JSON rendering.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialisation is infallible")
    }

    /// Prometheus text exposition (format 0.0.4).
    ///
    /// Counters and gauges export verbatim; each histogram exports as a
    /// `summary` — `quantile`-labelled lines plus `_sum`/`_count` — so a
    /// scrape stays a few lines per metric instead of 1024 buckets.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        write_section(&mut out, "counter", &self.counters);
        write_section(&mut out, "gauge", &self.gauges);
        let mut by_name: BTreeMap<&str, Vec<&HistogramSnapshot>> = BTreeMap::new();
        for h in &self.histograms {
            by_name.entry(&h.name).or_default().push(h);
        }
        for (name, hists) in by_name {
            let _ = writeln!(out, "# TYPE {name} summary");
            for h in hists {
                for (q, v) in [
                    ("0.5", h.p50_nanos),
                    ("0.9", h.p90_nanos),
                    ("0.99", h.p99_nanos),
                ] {
                    let mut labels = h.labels.clone();
                    labels.push(("quantile".to_string(), q.to_string()));
                    let _ = writeln!(out, "{}{} {}", name, render_labels(&labels), v);
                }
                let rendered = render_labels(&h.labels);
                let _ = writeln!(out, "{}_sum{} {}", name, rendered, h.sum_nanos);
                let _ = writeln!(out, "{}_count{} {}", name, rendered, h.count);
            }
        }
        out
    }
}

fn write_section(out: &mut String, kind: &str, metrics: &[MetricValue]) {
    let mut by_name: BTreeMap<&str, Vec<&MetricValue>> = BTreeMap::new();
    for m in metrics {
        by_name.entry(&m.name).or_default().push(m);
    }
    for (name, rows) in by_name {
        let _ = writeln!(out, "# TYPE {name} {kind}");
        for m in rows {
            let _ = writeln!(out, "{}{} {}", name, render_labels(&m.labels), m.value);
        }
    }
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
    out
}

/// Prometheus label-value escaping: backslash, double quote, newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn empty_snapshot_is_empty() {
        let s = Snapshot::default();
        assert!(s.is_empty());
        assert_eq!(s.to_prometheus(), "");
        assert!(s.to_json().starts_with('{'));
    }

    #[test]
    fn same_name_metrics_group_under_one_type_line() {
        let s = Snapshot {
            counters: vec![
                MetricValue {
                    name: "oasd_x_total".into(),
                    labels: vec![("shard".into(), "0".into())],
                    value: 1,
                },
                MetricValue {
                    name: "oasd_x_total".into(),
                    labels: vec![("shard".into(), "1".into())],
                    value: 2,
                },
            ],
            ..Snapshot::default()
        };
        let text = s.to_prometheus();
        assert_eq!(text.matches("# TYPE oasd_x_total counter").count(), 1);
        assert!(text.contains("oasd_x_total{shard=\"0\"} 1\n"));
        assert!(text.contains("oasd_x_total{shard=\"1\"} 2\n"));
    }

    #[test]
    fn histogram_exports_as_summary() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(5));
        h.record(Duration::from_micros(15));
        let s = Snapshot {
            histograms: vec![HistogramSnapshot::from_hist(
                "oasd_stage_nanos".into(),
                vec![("stage".into(), "flush".into())],
                &h,
            )],
            ..Snapshot::default()
        };
        let text = s.to_prometheus();
        assert!(text.contains("# TYPE oasd_stage_nanos summary"));
        assert!(text.contains("oasd_stage_nanos{stage=\"flush\",quantile=\"0.5\"}"));
        assert!(text.contains("oasd_stage_nanos_sum{stage=\"flush\"} 20000"));
        assert!(text.contains("oasd_stage_nanos_count{stage=\"flush\"} 2"));
    }

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
