//! Lock-light metrics registry.
//!
//! Metrics are addressed by **name + static label set** (e.g.
//! `oasd_stage_nanos{shard="0", stage="batch_compute"}`). Resolution
//! takes the registry mutex once, at wiring time, and hands back a cheap
//! pre-resolved handle ([`Counter`], [`Gauge`], [`Histo`]) that is just an
//! `Arc` around the atomic cell — the hot path never locks. Handles from
//! a disabled [`Obs`](crate::Obs) carry no cell and compile down to
//! no-ops.

use crate::hist::AtomicHist;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A metric's identity: name plus its canonically sorted label pairs.
#[derive(Debug, Clone)]
pub(crate) struct MetricKey {
    pub(crate) name: String,
    pub(crate) labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }

    /// Canonical rendering, used as the registry key so the same
    /// name+labels always resolves to the same cell regardless of the
    /// label order the caller wrote.
    pub(crate) fn render(&self) -> String {
        let mut out = self.name.clone();
        if !self.labels.is_empty() {
            out.push('{');
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(k);
                out.push_str("=\"");
                out.push_str(v);
                out.push('"');
            }
            out.push('}');
        }
        out
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, (MetricKey, Arc<AtomicU64>)>,
    gauges: BTreeMap<String, (MetricKey, Arc<AtomicU64>)>,
    hists: BTreeMap<String, (MetricKey, Arc<AtomicHist>)>,
}

/// The metric store behind an enabled [`Obs`](crate::Obs): three
/// name-keyed maps guarded by one mutex that is only taken at
/// registration and snapshot time.
pub(crate) struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    pub(crate) fn new() -> Self {
        Registry {
            inner: Mutex::new(RegistryInner::default()),
        }
    }

    pub(crate) fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<AtomicU64> {
        let key = MetricKey::new(name, labels);
        let mut inner = self.inner.lock().unwrap();
        Arc::clone(
            &inner
                .counters
                .entry(key.render())
                .or_insert_with(|| (key, Arc::new(AtomicU64::new(0))))
                .1,
        )
    }

    pub(crate) fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<AtomicU64> {
        let key = MetricKey::new(name, labels);
        let mut inner = self.inner.lock().unwrap();
        Arc::clone(
            &inner
                .gauges
                .entry(key.render())
                .or_insert_with(|| (key, Arc::new(AtomicU64::new(0))))
                .1,
        )
    }

    pub(crate) fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<AtomicHist> {
        let key = MetricKey::new(name, labels);
        let mut inner = self.inner.lock().unwrap();
        Arc::clone(
            &inner
                .hists
                .entry(key.render())
                .or_insert_with(|| (key, Arc::new(AtomicHist::new())))
                .1,
        )
    }

    /// Visits every metric in deterministic (name-sorted) order.
    pub(crate) fn visit(
        &self,
        mut counter: impl FnMut(&MetricKey, u64),
        mut gauge: impl FnMut(&MetricKey, u64),
        mut hist: impl FnMut(&MetricKey, crate::LatencyHistogram),
    ) {
        let inner = self.inner.lock().unwrap();
        for (key, cell) in inner.counters.values() {
            counter(key, cell.load(Ordering::Relaxed));
        }
        for (key, cell) in inner.gauges.values() {
            gauge(key, cell.load(Ordering::Relaxed));
        }
        for (key, cell) in inner.hists.values() {
            hist(key, cell.load());
        }
    }
}

/// Pre-resolved handle to a monotone counter; a no-op when telemetry is
/// disabled. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A handle that records nothing (what a disabled
    /// [`Obs`](crate::Obs) hands out).
    pub fn disabled() -> Self {
        Counter { cell: None }
    }

    pub(crate) fn live(cell: Arc<AtomicU64>) -> Self {
        Counter { cell: Some(cell) }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Overwrites the absolute value — used to mirror an externally
    /// accumulated cumulative counter (e.g. `EngineStats` fields) into
    /// the registry at a sync point.
    #[inline]
    pub fn set(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.store(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// Pre-resolved handle to a gauge (a value that goes up and down); a
/// no-op when telemetry is disabled.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        Gauge { cell: None }
    }

    pub(crate) fn live(cell: Arc<AtomicU64>) -> Self {
        Gauge { cell: Some(cell) }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.store(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// Pre-resolved handle to a registered latency histogram; a no-op when
/// telemetry is disabled.
#[derive(Debug, Clone, Default)]
pub struct Histo {
    cell: Option<Arc<AtomicHist>>,
}

impl Histo {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        Histo { cell: None }
    }

    pub(crate) fn live(cell: Arc<AtomicHist>) -> Self {
        Histo { cell: Some(cell) }
    }

    /// `true` when this handle actually records (telemetry enabled).
    #[inline]
    pub fn is_live(&self) -> bool {
        self.cell.is_some()
    }

    /// Records one sample (saturating above `u64::MAX` nanoseconds).
    #[inline]
    pub fn record(&self, latency: Duration) {
        if let Some(cell) = &self.cell {
            cell.record(latency);
        }
    }

    /// Records one pre-measured nanosecond sample.
    #[inline]
    pub fn record_nanos(&self, nanos: u64) {
        if let Some(cell) = &self.cell {
            cell.record_nanos(nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_labels_any_order_resolve_to_one_cell() {
        let r = Registry::new();
        let a = r.counter("x_total", &[("shard", "0"), ("tier", "hot")]);
        let b = r.counter("x_total", &[("tier", "hot"), ("shard", "0")]);
        a.fetch_add(3, Ordering::Relaxed);
        assert_eq!(b.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn disabled_handles_are_inert() {
        let c = Counter::disabled();
        c.inc();
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = Gauge::disabled();
        g.set(9);
        assert_eq!(g.get(), 0);
        let h = Histo::disabled();
        h.record(Duration::from_millis(1));
        assert!(!h.is_live());
    }

    #[test]
    fn render_is_canonical() {
        let key = MetricKey::new("m", &[("b", "2"), ("a", "1")]);
        assert_eq!(key.render(), "m{a=\"1\",b=\"2\"}");
        let bare = MetricKey::new("m", &[]);
        assert_eq!(bare.render(), "m");
    }
}
