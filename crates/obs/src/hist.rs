//! HDR-style latency histograms: the single-writer [`LatencyHistogram`]
//! (moved here from `traj::ingest` so every layer can share it) and its
//! lock-free multi-writer sibling [`AtomicHist`] used by the registry.
//!
//! # Bucket layout
//!
//! Power-of-two octaves with 16 linear sub-buckets each, so recorded
//! values keep ~4 significant bits (quantile error ≤ 1/16 ≈ 6%) in 8 KiB
//! of counters, whatever the range. Nanosecond values 0..16 get one
//! bucket each; from there, octave `e` (values `2^e..2^(e+1)`) splits
//! into 16 linear sub-buckets. The largest index `index()` can produce
//! is 975 (the top sub-bucket of the `2^63` octave); buckets 976..1023
//! exist only as slack so the array length stays a power of two.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

pub(crate) const HIST_BUCKETS: usize = 1024;

/// Bucket index for a nanosecond value (shared by both histogram kinds).
pub(crate) fn bucket_index(nanos: u64) -> usize {
    if nanos < 16 {
        nanos as usize
    } else {
        let exp = 63 - nanos.leading_zeros() as u64; // >= 4
        let sub = (nanos >> (exp - 4)) & 0xF;
        (((exp - 3) << 4) | sub) as usize
    }
}

/// Representative value (nanoseconds) of a bucket: its midpoint.
pub(crate) fn bucket_value(index: usize) -> u64 {
    if index < 16 {
        index as u64
    } else {
        let exp = (index >> 4) as u64 + 3;
        let sub = (index & 0xF) as u64;
        let lo = (16 + sub) << (exp - 4);
        lo + (1u64 << (exp - 4)) / 2
    }
}

/// Clamps a [`Duration`] to the histogram's nanosecond domain.
///
/// Durations longer than `u64::MAX` nanoseconds (~584 years) saturate to
/// `u64::MAX` — the sample is still counted, lands in the top occupied
/// bucket, and `max()` reports the clamped value. This is the documented
/// top-end sentinel: no sample is ever dropped or panics, it just loses
/// resolution beyond the representable range.
#[inline]
pub(crate) fn clamp_nanos(latency: Duration) -> u64 {
    u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX)
}

/// HDR-style latency histogram (single-writer; see the module docs for
/// the bucket layout).
///
/// # Edge semantics (explicit, unit-tested)
///
/// * **Empty histogram**: [`count`](Self::count) is 0,
///   [`is_empty`](Self::is_empty) is `true`, and
///   [`percentile`](Self::percentile), [`mean`](Self::mean) and
///   [`max`](Self::max) all return the sentinel [`Duration::ZERO`] —
///   callers that need to distinguish "no samples" from "all samples were
///   zero" must check `is_empty()` first.
/// * **Top-bucket saturation**: samples above `u64::MAX` nanoseconds are
///   clamped (see `clamp_nanos`); quantiles of the top bucket are
///   additionally capped at the exact recorded maximum, so
///   `percentile(q) <= max()` always holds.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_nanos: u128,
    max_nanos: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; HIST_BUCKETS],
            total: 0,
            sum_nanos: 0,
            max_nanos: 0,
        }
    }

    /// Records one sample (saturating above `u64::MAX` nanoseconds).
    pub fn record(&mut self, latency: Duration) {
        self.record_nanos(clamp_nanos(latency));
    }

    /// Records one pre-measured nanosecond sample.
    pub fn record_nanos(&mut self, nanos: u64) {
        self.counts[bucket_index(nanos).min(HIST_BUCKETS - 1)] += 1;
        self.total += 1;
        self.sum_nanos += nanos as u128;
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_nanos += other.sum_nanos;
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// `true` when no sample has been recorded; the quantile/mean/max
    /// accessors all return the [`Duration::ZERO`] sentinel in that case.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Sum of every recorded sample, in nanoseconds (exact — kept in a
    /// `u128` so it cannot overflow).
    pub fn sum_nanos(&self) -> u128 {
        self.sum_nanos
    }

    /// Mean latency ([`Duration::ZERO`] if empty — see the type docs).
    pub fn mean(&self) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.sum_nanos / self.total as u128) as u64)
    }

    /// Largest recorded latency, exact, not quantised
    /// ([`Duration::ZERO`] if empty — see the type docs).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos)
    }

    /// The `q`-quantile (`0.0..=1.0`), accurate to the bucket resolution
    /// (~6%) and capped at [`max`](Self::max).
    ///
    /// Returns the [`Duration::ZERO`] sentinel when the histogram is
    /// empty (check [`is_empty`](Self::is_empty) to disambiguate from a
    /// genuine all-zero distribution).
    pub fn percentile(&self, q: f64) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Duration::from_nanos(bucket_value(i).min(self.max_nanos));
            }
        }
        self.max()
    }
}

/// Lock-free multi-writer histogram backing registered latency metrics.
///
/// Same bucket layout as [`LatencyHistogram`]; every counter is a relaxed
/// atomic so concurrent shard workers can record without coordination.
/// [`load`](Self::load) folds the counters into an owned
/// [`LatencyHistogram`] — the read is *weakly consistent* (buckets are
/// loaded one by one while writers may still be recording), which is fine
/// for monitoring but means `count()` can briefly disagree with the sum
/// of bucket counts by in-flight samples.
#[derive(Debug)]
pub(crate) struct AtomicHist {
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    // Wrapping u64 nanosecond sum: overflows only after ~584 years of
    // accumulated latency, acceptable for a monitoring metric.
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl AtomicHist {
    pub(crate) fn new() -> Self {
        AtomicHist {
            counts: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }

    pub(crate) fn record_nanos(&self, nanos: u64) {
        self.counts[bucket_index(nanos).min(HIST_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    pub(crate) fn record(&self, latency: Duration) {
        self.record_nanos(clamp_nanos(latency));
    }

    /// Folds the atomic counters into an owned snapshot (weakly
    /// consistent — see the type docs).
    pub(crate) fn load(&self) -> LatencyHistogram {
        LatencyHistogram {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            total: self.total.load(Ordering::Relaxed),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed) as u128,
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_sentinels() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.0), Duration::ZERO);
        assert_eq!(h.percentile(0.5), Duration::ZERO);
        assert_eq!(h.percentile(1.0), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
        assert_eq!(h.sum_nanos(), 0);
    }

    #[test]
    fn zero_sample_differs_from_empty() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        assert!(!h.is_empty());
        assert_eq!(h.count(), 1);
        assert_eq!(h.percentile(1.0), Duration::ZERO);
    }

    #[test]
    fn top_bucket_saturates_without_panicking() {
        let mut h = LatencyHistogram::new();
        // Duration::MAX holds ~5.8e28 nanoseconds — far beyond u64. The
        // documented semantics: clamp to u64::MAX, count the sample.
        h.record(Duration::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), Duration::from_nanos(u64::MAX));
        // The quantile lands in the top occupied bucket and never
        // exceeds the exact max.
        let p = h.percentile(1.0);
        assert!(p <= h.max());
        assert!(p >= Duration::from_nanos(u64::MAX / 32 * 31));
        // Mean is exact (u128 accumulator): one clamped sample.
        assert_eq!(h.mean(), Duration::from_nanos(u64::MAX));
    }

    #[test]
    fn top_bucket_index_is_in_range() {
        // The largest reachable index must stay within the array and its
        // midpoint must not overflow u64.
        let i = bucket_index(u64::MAX);
        assert_eq!(i, 975);
        assert!(i < HIST_BUCKETS);
        let mid = bucket_value(i);
        assert!(mid > u64::MAX / 32 * 31 && mid < u64::MAX);
    }

    #[test]
    fn percentile_capped_at_exact_max() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_nanos(1_000));
        // Bucket midpoint for 1000ns is above 1000; the cap keeps the
        // reported quantile at the recorded max.
        assert!(h.percentile(1.0) <= h.max());
    }

    #[test]
    fn quantile_resolution_within_one_sixteenth() {
        let mut h = LatencyHistogram::new();
        for n in 1..=10_000u64 {
            h.record(Duration::from_nanos(n * 100));
        }
        let p50 = h.percentile(0.5).as_nanos() as f64;
        let exact = 500_000.0f64;
        assert!((p50 - exact).abs() / exact < 1.0 / 16.0 + 0.01);
    }

    #[test]
    fn atomic_hist_matches_single_writer() {
        let a = AtomicHist::new();
        let mut m = LatencyHistogram::new();
        for n in [0u64, 5, 17, 999, 123_456, u64::MAX] {
            a.record_nanos(n);
            m.record_nanos(n);
        }
        let loaded = a.load();
        assert_eq!(loaded.count(), m.count());
        assert_eq!(loaded.max(), m.max());
        assert_eq!(loaded.percentile(0.5), m.percentile(0.5));
        assert_eq!(loaded.percentile(0.99), m.percentile(0.99));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(30));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Duration::from_micros(30));
    }
}
