//! Stage-level tracing.
//!
//! A [`Span`] is a monotonic start timestamp; finishing it through a
//! [`StageHandle`] folds the elapsed time into that stage's registered
//! histogram and appends one fixed-size [`SpanRecord`] to a bounded ring
//! — no per-event allocation anywhere on the path. When telemetry is
//! disabled, [`StageHandle::start`] returns an empty span without ever
//! reading the clock.

use crate::registry::Histo;
use serde::{Serialize, Value};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The pipeline stages the serving stack traces. The per-stage histogram
/// is registered as `oasd_stage_nanos{stage="<name>", shard="<n>"}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Stage {
    /// submit → flush start: time an event sat in the shard's ingress
    /// queue (recorded per event from the worker's arrival stamps).
    EnqueueWait,
    /// One whole micro-batch flush (drain + compute + deliver).
    #[default]
    Flush,
    /// The `observe_batch` call inside a flush.
    BatchCompute,
    /// Outbox fan-out of freshly computed labels to subscribers.
    LabelDelivery,
    /// One idle-session hibernation sweep in `StreamEngine`.
    HibernateSweep,
    /// One `swap_model` application (epoch publish + retire scan).
    SwapApply,
    /// One supervised-worker recovery: salvage the panicked shard's
    /// sessions, rebuild the engine, re-import survivors.
    RestartSweep,
}

impl Stage {
    /// The stage's label value in metrics and span records.
    pub fn name(self) -> &'static str {
        match self {
            Stage::EnqueueWait => "enqueue_wait",
            Stage::Flush => "flush",
            Stage::BatchCompute => "batch_compute",
            Stage::LabelDelivery => "label_delivery",
            Stage::HibernateSweep => "hibernate_sweep",
            Stage::SwapApply => "swap_apply",
            Stage::RestartSweep => "restart_sweep",
        }
    }
}

impl Serialize for Stage {
    fn serialize(&self) -> Value {
        Value::Str(self.name().to_string())
    }
}

/// An in-flight timed section. Empty (no clock read) when telemetry is
/// disabled, so the hot path cost of a disabled span is two branches.
#[must_use = "finish the span through the StageHandle that started it"]
#[derive(Debug)]
pub struct Span {
    t0: Option<Instant>,
}

impl Span {
    /// A span that records nothing when finished.
    pub fn none() -> Self {
        Span { t0: None }
    }

    pub(crate) fn started() -> Self {
        Span {
            t0: Some(Instant::now()),
        }
    }
}

/// One completed span, as kept in the bounded trace ring.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SpanRecord {
    /// Monotone sequence number (gap-free; see
    /// [`Snapshot::spans_dropped`](crate::Snapshot::spans_dropped)).
    pub seq: u64,
    /// Which pipeline stage this span timed.
    pub stage: Stage,
    /// Shard that ran the stage.
    pub shard: u32,
    /// Elapsed wall time in nanoseconds.
    pub nanos: u64,
}

struct SpanRingInner {
    buf: VecDeque<SpanRecord>,
    next_seq: u64,
    dropped: u64,
    cap: usize,
}

/// Bounded ring of recent [`SpanRecord`]s shared by every stage handle of
/// one [`Obs`](crate::Obs).
pub(crate) struct SpanRing {
    inner: Mutex<SpanRingInner>,
}

impl SpanRing {
    pub(crate) fn new(cap: usize) -> Self {
        SpanRing {
            inner: Mutex::new(SpanRingInner {
                buf: VecDeque::with_capacity(cap.min(4096)),
                next_seq: 0,
                dropped: 0,
                cap: cap.max(1),
            }),
        }
    }

    fn push(&self, stage: Stage, shard: u32, nanos: u64) {
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.buf.len() == inner.cap {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(SpanRecord {
            seq,
            stage,
            shard,
            nanos,
        });
    }

    /// (retained records oldest-first, records evicted so far).
    pub(crate) fn drain(&self) -> (Vec<SpanRecord>, u64) {
        let inner = self.inner.lock().unwrap();
        (inner.buf.iter().copied().collect(), inner.dropped)
    }
}

/// Pre-resolved tracer for one (stage, shard) pair: a histogram handle
/// plus the shared span ring. Cheap to clone; inert when built from a
/// disabled [`Obs`](crate::Obs).
#[derive(Clone, Default)]
pub struct StageHandle {
    histo: Histo,
    ring: Option<Arc<SpanRing>>,
    stage: Stage,
    shard: u32,
}

impl StageHandle {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        StageHandle::default()
    }

    pub(crate) fn live(histo: Histo, ring: Arc<SpanRing>, stage: Stage, shard: u32) -> Self {
        StageHandle {
            histo,
            ring: Some(ring),
            stage,
            shard,
        }
    }

    /// `true` when this handle actually records (telemetry enabled).
    /// Callers computing inputs for [`record_nanos`](Self::record_nanos)
    /// gate that work on this so the disabled path stays free.
    #[inline]
    pub fn is_live(&self) -> bool {
        self.histo.is_live()
    }

    /// Starts a span. Reads the clock only when telemetry is enabled.
    #[inline]
    pub fn start(&self) -> Span {
        if self.histo.is_live() {
            Span::started()
        } else {
            Span::none()
        }
    }

    /// Finishes a span: elapsed time goes to the stage histogram and one
    /// record joins the span ring. No-op for [`Span::none`].
    #[inline]
    pub fn finish(&self, span: Span) {
        if let Some(t0) = span.t0 {
            let nanos = crate::hist::clamp_nanos(t0.elapsed());
            self.histo.record_nanos(nanos);
            if let Some(ring) = &self.ring {
                ring.push(self.stage, self.shard, nanos);
            }
        }
    }

    /// Folds a pre-measured duration into the stage histogram *without*
    /// pushing a span record — the per-event path (enqueue-wait) uses
    /// this so the ring holds per-flush spans, not millions of per-event
    /// rows.
    #[inline]
    pub fn record_nanos(&self, nanos: u64) {
        self.histo.record_nanos(nanos);
    }

    /// Records a completed span from two pre-read timestamps: elapsed
    /// time goes to the stage histogram and one record joins the span
    /// ring, exactly like [`finish`](Self::finish). Lets a caller timing
    /// several adjacent stages share clock reads instead of paying
    /// `start`/`finish` clock pairs per stage.
    #[inline]
    pub fn record_span(&self, t0: Instant, end: Instant) {
        if self.histo.is_live() {
            let nanos = crate::hist::clamp_nanos(end.saturating_duration_since(t0));
            self.histo.record_nanos(nanos);
            if let Some(ring) = &self.ring {
                ring.push(self.stage, self.shard, nanos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_never_reads_clock() {
        let h = StageHandle::disabled();
        let span = h.start();
        assert!(span.t0.is_none());
        h.finish(span);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let ring = SpanRing::new(2);
        ring.push(Stage::Flush, 0, 10);
        ring.push(Stage::Flush, 0, 20);
        ring.push(Stage::Flush, 0, 30);
        let (records, dropped) = ring.drain();
        assert_eq!(dropped, 1);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 1);
        assert_eq!(records[1].seq, 2);
        assert_eq!(records[1].nanos, 30);
    }
}
