//! Bounded structured event log.
//!
//! Discrete ops events (model swap applied, epoch retired, arena
//! compaction, backpressure shed, sweep stats) are pushed into a ring of
//! fixed capacity. Every event carries a monotone sequence number, so a
//! tailer that remembers the last sequence it saw can detect exactly how
//! many events it missed when the ring wrapped — loss-*aware* tailing,
//! never silent loss.

use serde::{Serialize, Value};
use std::collections::VecDeque;
use std::sync::Mutex;

/// A discrete operational event. All variants are `Copy` — pushing one
/// never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpsEvent {
    /// A new model epoch was published on a shard.
    ModelSwapApplied {
        /// Shard that applied the swap.
        shard: u32,
        /// The new epoch's swap sequence number.
        seq: u64,
        /// Epochs retired immediately (outgoing epoch had no live
        /// sessions).
        retired: u64,
    },
    /// A model epoch's last session closed and its slot was reclaimed.
    EpochRetired {
        /// Shard that retired the epoch.
        shard: u32,
        /// The retired epoch's swap sequence number.
        seq: u64,
    },
    /// The frozen-state arena compacted itself.
    ArenaCompaction {
        /// Shard whose arena compacted.
        shard: u32,
        /// Cumulative compactions on that shard so far.
        compactions: u64,
    },
    /// Load shedding: submits rejected with `QueueFull` were dropped
    /// rather than retried.
    BackpressureShed {
        /// Events shed in this episode.
        shed: u64,
    },
    /// An idle-session hibernation sweep completed.
    SweepStats {
        /// Shard that swept.
        shard: u32,
        /// Engine tick at which the sweep ran.
        tick: u64,
        /// Sessions frozen by this sweep.
        swept: u64,
    },
    /// A supervised shard worker panicked and was restarted in place.
    WorkerRestart {
        /// Shard whose worker restarted.
        shard: u32,
        /// Sessions quarantined by this restart (poisoned or unsalvageable).
        quarantined: u64,
        /// Sessions salvaged into the rebuilt engine.
        salvaged: u64,
    },
    /// One session was quarantined (terminal `SessionFault`).
    SessionQuarantined {
        /// Shard the session lived on.
        shard: u32,
    },
    /// A shard entered degraded-mode admission control.
    DegradedEnter {
        /// Shard that degraded.
        shard: u32,
    },
    /// A shard left degraded mode.
    DegradedExit {
        /// Shard that recovered.
        shard: u32,
    },
}

impl Serialize for OpsEvent {
    fn serialize(&self) -> Value {
        let map = |tag: &str, fields: Vec<(&str, Value)>| {
            let mut m = vec![("type".to_string(), Value::Str(tag.to_string()))];
            m.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
            Value::Map(m)
        };
        match *self {
            OpsEvent::ModelSwapApplied {
                shard,
                seq,
                retired,
            } => map(
                "model_swap_applied",
                vec![
                    ("shard", shard.serialize()),
                    ("seq", seq.serialize()),
                    ("retired", retired.serialize()),
                ],
            ),
            OpsEvent::EpochRetired { shard, seq } => map(
                "epoch_retired",
                vec![("shard", shard.serialize()), ("seq", seq.serialize())],
            ),
            OpsEvent::ArenaCompaction { shard, compactions } => map(
                "arena_compaction",
                vec![
                    ("shard", shard.serialize()),
                    ("compactions", compactions.serialize()),
                ],
            ),
            OpsEvent::BackpressureShed { shed } => {
                map("backpressure_shed", vec![("shed", shed.serialize())])
            }
            OpsEvent::SweepStats { shard, tick, swept } => map(
                "sweep_stats",
                vec![
                    ("shard", shard.serialize()),
                    ("tick", tick.serialize()),
                    ("swept", swept.serialize()),
                ],
            ),
            OpsEvent::WorkerRestart {
                shard,
                quarantined,
                salvaged,
            } => map(
                "worker_restart",
                vec![
                    ("shard", shard.serialize()),
                    ("quarantined", quarantined.serialize()),
                    ("salvaged", salvaged.serialize()),
                ],
            ),
            OpsEvent::SessionQuarantined { shard } => {
                map("session_quarantined", vec![("shard", shard.serialize())])
            }
            OpsEvent::DegradedEnter { shard } => {
                map("degraded_enter", vec![("shard", shard.serialize())])
            }
            OpsEvent::DegradedExit { shard } => {
                map("degraded_exit", vec![("shard", shard.serialize())])
            }
        }
    }
}

/// One event with its log sequence number.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SeqEvent {
    /// Monotone, gap-free sequence number assigned at push time.
    pub seq: u64,
    /// The event.
    pub event: OpsEvent,
}

/// What [`Obs::tail_events`](crate::Obs::tail_events) hands back.
#[derive(Debug, Clone, Serialize)]
pub struct EventTail {
    /// Events with `seq >= since`, oldest first.
    pub events: Vec<SeqEvent>,
    /// Events in `since..` that were already evicted from the ring —
    /// `0` means the tail is loss-free.
    pub missed: u64,
}

struct EventLogInner {
    buf: VecDeque<SeqEvent>,
    next_seq: u64,
    cap: usize,
}

/// The bounded ring itself.
pub(crate) struct EventLog {
    inner: Mutex<EventLogInner>,
}

impl EventLog {
    pub(crate) fn new(cap: usize) -> Self {
        EventLog {
            inner: Mutex::new(EventLogInner {
                buf: VecDeque::with_capacity(cap.min(4096)),
                next_seq: 0,
                cap: cap.max(1),
            }),
        }
    }

    pub(crate) fn push(&self, event: OpsEvent) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.buf.len() == inner.cap {
            inner.buf.pop_front();
        }
        inner.buf.push_back(SeqEvent { seq, event });
        seq
    }

    /// Events with `seq >= since`, plus how many such events were
    /// already evicted.
    pub(crate) fn tail(&self, since: u64) -> EventTail {
        let inner = self.inner.lock().unwrap();
        let oldest = inner.buf.front().map_or(inner.next_seq, |e| e.seq);
        let missed = oldest.saturating_sub(since.min(inner.next_seq));
        let events = inner
            .buf
            .iter()
            .filter(|e| e.seq >= since)
            .copied()
            .collect();
        EventTail { events, missed }
    }

    /// Total events ever pushed (== next sequence number).
    pub(crate) fn pushed(&self) -> u64 {
        self.inner.lock().unwrap().next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shed(n: u64) -> OpsEvent {
        OpsEvent::BackpressureShed { shed: n }
    }

    #[test]
    fn sequences_are_monotone_and_gap_free() {
        let log = EventLog::new(8);
        for i in 0..5 {
            assert_eq!(log.push(shed(i)), i);
        }
        let tail = log.tail(0);
        assert_eq!(tail.missed, 0);
        let seqs: Vec<u64> = tail.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn wrap_reports_exact_gap() {
        let log = EventLog::new(3);
        for i in 0..10 {
            log.push(shed(i));
        }
        // Ring holds seqs 7, 8, 9; a tailer resuming from 2 missed 5.
        let tail = log.tail(2);
        assert_eq!(tail.missed, 5);
        assert_eq!(
            tail.events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
        // A tailer that is fully caught up misses nothing.
        let tail = log.tail(10);
        assert_eq!(tail.missed, 0);
        assert!(tail.events.is_empty());
    }

    #[test]
    fn event_json_shape() {
        let v = OpsEvent::SweepStats {
            shard: 1,
            tick: 64,
            swept: 9,
        }
        .serialize();
        assert_eq!(v.get("type").and_then(Value::as_str), Some("sweep_stats"));
        assert_eq!(v.get("swept"), Some(&Value::UInt(9)));
    }
}
