//! Compact binary encoding for map-matched trajectories.
//!
//! Large simulations produce hundreds of thousands of trajectories; JSON is
//! wasteful for checkpointing them between experiment stages. This codec
//! stores each trajectory as a varint-encoded, delta-compressed segment
//! sequence (consecutive segment ids on real road networks are strongly
//! locally correlated, so zig-zag deltas are small).
//!
//! Format (little-endian):
//! ```text
//! u32  magic "TRJ1"
//! u32  trajectory count
//! per trajectory:
//!   u32     id
//!   f64     start_time
//!   varint  segment count n
//!   varint  first segment id
//!   n-1 ×   zig-zag varint delta to previous id
//! ```

use crate::types::{MappedTrajectory, TrajectoryId};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use rnet::SegmentId;

const MAGIC: u32 = 0x3154_524A; // "JRT1" little-endian spells TRJ1 in memory

/// Errors produced by [`decode_trajectories`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer does not start with the expected magic number.
    BadMagic,
    /// The buffer ended before the declared contents.
    Truncated,
    /// A varint ran past 10 bytes (corrupt input).
    VarintOverflow,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "bad magic number"),
            CodecError::Truncated => write!(f, "truncated buffer"),
            CodecError::VarintOverflow => write!(f, "varint overflow"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Encodes trajectories into the compact binary format.
pub fn encode_trajectories(trajs: &[MappedTrajectory]) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + trajs.len() * 32);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(trajs.len() as u32);
    for t in trajs {
        buf.put_u32_le(t.id.0);
        buf.put_f64_le(t.start_time);
        put_varint(&mut buf, t.segments.len() as u64);
        if let Some((first, rest)) = t.segments.split_first() {
            put_varint(&mut buf, first.0 as u64);
            let mut prev = first.0 as i64;
            for s in rest {
                let delta = s.0 as i64 - prev;
                put_varint(&mut buf, zigzag(delta));
                prev = s.0 as i64;
            }
        }
    }
    buf.freeze()
}

/// Decodes trajectories produced by [`encode_trajectories`].
pub fn decode_trajectories(mut buf: &[u8]) -> Result<Vec<MappedTrajectory>, CodecError> {
    if buf.remaining() < 8 {
        return Err(CodecError::Truncated);
    }
    if buf.get_u32_le() != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let count = buf.get_u32_le() as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if buf.remaining() < 12 {
            return Err(CodecError::Truncated);
        }
        let id = TrajectoryId(buf.get_u32_le());
        let start_time = buf.get_f64_le();
        let n = get_varint(&mut buf)? as usize;
        let mut segments = Vec::with_capacity(n);
        if n > 0 {
            let first = get_varint(&mut buf)?;
            segments.push(SegmentId(first as u32));
            let mut prev = first as i64;
            for _ in 1..n {
                let delta = unzigzag(get_varint(&mut buf)?);
                prev += delta;
                segments.push(SegmentId(prev as u32));
            }
        }
        out.push(MappedTrajectory {
            id,
            segments,
            start_time,
        });
    }
    Ok(out)
}

/// Appends `v` as an LEB128 varint (7 bits per byte, high bit =
/// continuation; at most 10 bytes). Public for reuse by framing layers
/// built on this codec — the `serve` wire protocol encodes every integer
/// field with it.
pub fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads one LEB128 varint from the front of `buf`, advancing it past
/// the consumed bytes. Errors: [`CodecError::Truncated`] when the slice
/// ends mid-varint, [`CodecError::VarintOverflow`] when the encoding
/// exceeds `u64::MAX` or 10 bytes. The exact inverse of [`put_varint`].
pub fn get_varint(buf: &mut &[u8]) -> Result<u64, CodecError> {
    let mut v = 0u64;
    for shift in (0..70).step_by(7) {
        if !buf.has_remaining() {
            return Err(CodecError::Truncated);
        }
        let byte = buf.get_u8();
        if shift >= 63 && byte > 1 {
            return Err(CodecError::VarintOverflow);
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(CodecError::VarintOverflow)
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(id: u32, segs: &[u32], t: f64) -> MappedTrajectory {
        MappedTrajectory {
            id: TrajectoryId(id),
            segments: segs.iter().map(|&s| SegmentId(s)).collect(),
            start_time: t,
        }
    }

    #[test]
    fn roundtrip_basic() {
        let trajs = vec![
            traj(0, &[5, 6, 7, 100, 3], 3600.5),
            traj(1, &[], 0.0),
            traj(2, &[u32::MAX - 1, 0, u32::MAX], 86_399.0),
        ];
        let encoded = encode_trajectories(&trajs);
        let decoded = decode_trajectories(&encoded).unwrap();
        assert_eq!(decoded, trajs);
    }

    #[test]
    fn roundtrip_empty_list() {
        let encoded = encode_trajectories(&[]);
        assert_eq!(decode_trajectories(&encoded).unwrap(), vec![]);
    }

    #[test]
    fn detects_bad_magic() {
        let mut bytes = encode_trajectories(&[traj(0, &[1], 0.0)]).to_vec();
        bytes[0] ^= 0xFF;
        assert_eq!(decode_trajectories(&bytes), Err(CodecError::BadMagic));
    }

    #[test]
    fn detects_truncation() {
        let bytes = encode_trajectories(&[traj(0, &[1, 2, 3], 0.0)]);
        for cut in 1..bytes.len() {
            let res = decode_trajectories(&bytes[..cut]);
            assert!(res.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [-5i64, -1, 0, 1, 5, i64::MAX / 2, i64::MIN / 2] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn compression_beats_raw_u32() {
        // Locally correlated ids should compress well below 4 bytes/segment.
        let segs: Vec<u32> = (0..1000u32).map(|i| 5000 + i * 2).collect();
        let trajs = vec![traj(0, &segs, 0.0)];
        let encoded = encode_trajectories(&trajs);
        assert!(encoded.len() < 1000 * 4 / 2, "len = {}", encoded.len());
    }

    proptest::proptest! {
        #[test]
        fn roundtrip_random(segs in proptest::collection::vec(0u32..10_000, 0..200),
                            t in 0.0f64..86_400.0) {
            let trajs = vec![traj(7, &segs, t)];
            let decoded = decode_trajectories(&encode_trajectories(&trajs)).unwrap();
            proptest::prop_assert_eq!(decoded, trajs);
        }
    }
}
