//! Trajectory substrate for the RL4OASD reproduction.
//!
//! Provides the data model of the paper's preliminaries (§III-A) — raw GPS
//! trajectories, map-matched trajectories (segment sequences), SD pairs,
//! time slots, transitions and subtrajectories — plus the two pieces the
//! reproduction must synthesise because the DiDi Chengdu/Xi'an data is
//! proprietary:
//!
//! * [`generator::TrafficSimulator`]: builds per-SD-pair *route families*
//!   (a few popular "normal" routes and rare detours), samples trajectories
//!   from them with realistic start times, speeds and 2–4 s GPS sampling,
//!   and emits ground-truth anomalous-subtrajectory labels for the injected
//!   detours (replacing the paper's manual labelling);
//! * [`dataset::Dataset`]: the container used by preprocessing, training
//!   and evaluation, with SD-pair/time-slot grouping and Table II-style
//!   statistics.
//!
//! The [`OnlineDetector`] trait (shared by RL4OASD and all baselines) lives
//! here so that the evaluation and benchmark harnesses are detector-agnostic,
//! together with its fleet-scale counterpart [`session::SessionEngine`]:
//! a session-oriented serving API (`open`/`observe`/`close`) that
//! multiplexes many concurrent trajectories over one detector, with
//! [`session::SessionMux`] lifting any detector factory to an engine,
//! [`session::Sharded`] scaling any engine across cores by hashing
//! sessions onto independent shards, and [`session::SingleSession`]
//! adapting an engine back to a detector. [`ingest::IngestFrontDoor`]
//! is the asynchronous entry point over any of these: per-shard bounded
//! ingress queues and persistent worker threads micro-batch independent
//! per-point arrivals into `observe_batch` ticks under a latency SLO,
//! with typed [`ingest::IngestHandle::control`] commands (e.g. model
//! hot-swaps) applied at flush boundaries.
//!
//! How these layers compose into the full serving stack — and which test
//! enforces each bit-identity invariant — is documented in
//! `docs/ARCHITECTURE.md` at the repository root.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod codec;
pub mod dataset;
pub mod detector;
pub mod generator;
pub mod hibernate;
pub mod ingest;
pub mod labels;
pub mod session;
pub mod types;

pub use dataset::{Dataset, DatasetStats};
pub use detector::OnlineDetector;
pub use generator::{DriftConfig, RouteKind, SdPairData, TrafficConfig, TrafficSimulator};
pub use hibernate::{FrozenArena, FrozenRef, Hibernate};
pub use ingest::{
    silence_injected_panic_output, CloseTicket, FlushPolicy, IngestConfig, IngestFrontDoor,
    IngestHandle, IngestStats, LatencyHistogram, Priority, RetryPolicy, SessionFault,
    ShutdownReport, SubmitError, Subscription, FAULT_INJECTION_MARKER,
};
pub use labels::{extract_subtrajectories, LabelSpan};
pub use session::{
    SessionEngine, SessionId, SessionMux, SessionSlab, Sharded, SingleSession, SupervisedEngine,
};
pub use types::{
    slot_of_time, GpsPoint, MappedTrajectory, RawTrajectory, SdPair, TrajectoryId, Transition,
    HOURS_PER_DAY, SECONDS_PER_DAY,
};
