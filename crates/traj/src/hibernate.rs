//! Session hibernation: the cold half of the two-tier session store.
//!
//! At fleet scale most open trips are idle between GPS pings, yet a hot
//! session pins two `hidden_dim` LSTM vectors plus its label buffer for
//! its whole lifetime. This module provides the machinery to park such
//! sessions cheaply:
//!
//! * [`Hibernate`] — the freeze/thaw contract a session value implements
//!   against a context (for RL4OASD: the model view of the epoch the
//!   session opened under). The contract is **exact restore**: thawing
//!   the frozen bytes must reproduce a value observationally identical
//!   to the one frozen — every later label must be byte-identical to a
//!   never-hibernated run (property-tested in `tests/hibernate.rs`).
//! * [`FrozenArena`] — a chunked bump arena holding the frozen blobs,
//!   with stable [`FrozenRef`] handles, per-blob free and automatic
//!   compaction once dead bytes dominate, so a churning fleet does not
//!   leak arena space.
//! * varint / run-length codec helpers ([`put_varint`], [`put_runs`],
//!   …) shared by implementors, so frozen encodings are compact and
//!   self-describing without per-implementor codec duplication.
//!
//! [`crate::SessionSlab`] stitches these together as its cold tier:
//! `freeze`/`thaw` move a live slot between the hot (`T`) and cold
//! (arena blob) representations without invalidating its generational
//! [`crate::SessionId`].

/// Freeze/thaw contract of a hibernatable session value.
///
/// `Ctx` is whatever shared immutable state the encoding is defined
/// against — for RL4OASD sessions, the model view of the epoch the
/// session was opened under, so stream vectors can be delta-encoded
/// against the model's initial stream state.
///
/// # Contract: exact restore
///
/// `thaw(ctx, &frozen)` where `frozen` was produced by
/// `freeze(ctx, &mut frozen)` (the *same* `ctx`) must yield a value whose
/// observable behaviour is identical to the original — in particular,
/// every label a detection session emits after thawing must equal what
/// the never-frozen session would have emitted. Lossy codecs (float
/// quantisation, label truncation) violate the contract.
pub trait Hibernate<Ctx: ?Sized>: Sized {
    /// Appends the frozen encoding of `self` to `out` (which may already
    /// hold a caller prefix; implementors must only append).
    fn freeze(&self, ctx: &Ctx, out: &mut Vec<u8>);

    /// Rebuilds a value from bytes produced by [`Hibernate::freeze`]
    /// under the same `ctx`.
    ///
    /// # Panics
    /// May panic on malformed bytes; frozen blobs never leave the
    /// process, so corruption is a logic error, not an input error.
    fn thaw(ctx: &Ctx, bytes: &[u8]) -> Self;
}

/// Appends `v` to `out` as a LEB128 varint (7 bits per byte, low first).
#[inline]
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Reads a LEB128 varint from the front of `bytes`, advancing the slice.
///
/// # Panics
/// Panics on truncated input.
#[inline]
pub fn get_varint(bytes: &mut &[u8]) -> u64 {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let (b, rest) = bytes.split_first().expect("truncated varint");
        *bytes = rest;
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return v;
        }
        shift += 7;
        assert!(shift < 64, "varint overflow");
    }
}

/// Appends a binary (`0`/`1`) label sequence as alternating run lengths:
/// `varint len`, then (if non-empty) the first value byte followed by
/// varint run lengths that alternate between that value and its
/// complement until `len` is covered. Long normal stretches (the common
/// case: mostly-0 label streams with few anomalous runs) collapse to a
/// couple of bytes.
///
/// # Panics
/// Debug-asserts every label is `0` or `1` (the label contract).
pub fn put_runs(out: &mut Vec<u8>, labels: &[u8]) {
    put_varint(out, labels.len() as u64);
    let Some(&first) = labels.first() else { return };
    debug_assert!(labels.iter().all(|&l| l <= 1), "labels must be binary");
    out.push(first);
    let mut current = first;
    let mut run = 0u64;
    for &l in labels {
        if l == current {
            run += 1;
        } else {
            put_varint(out, run);
            current = l;
            run = 1;
        }
    }
    put_varint(out, run);
}

/// Reads a [`put_runs`] sequence from the front of `bytes` (advancing the
/// slice), appending the decoded labels to `out`.
///
/// # Panics
/// Panics on truncated or inconsistent input.
pub fn get_runs(bytes: &mut &[u8], out: &mut Vec<u8>) {
    let len = get_varint(bytes) as usize;
    if len == 0 {
        return;
    }
    let (first, rest) = bytes.split_first().expect("truncated run header");
    *bytes = rest;
    let mut value = *first;
    let mut decoded = 0usize;
    out.reserve(len);
    while decoded < len {
        let run = get_varint(bytes) as usize;
        assert!(run > 0 && decoded + run <= len, "inconsistent run lengths");
        out.resize(out.len() + run, value);
        decoded += run;
        value ^= 1;
    }
}

/// XOR-deltas `values` against `base` bit-for-bit and appends the result
/// as little-endian bytes. With an all-zero base (the LSTM initial
/// stream state) this is the identity on the bit pattern, but the delta
/// form keeps the encoding correct should a model ever carry a non-zero
/// initial state — and stays exactly invertible either way.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn put_f32_delta(out: &mut Vec<u8>, values: &[f32], base: &[f32]) {
    assert_eq!(values.len(), base.len(), "delta base length mismatch");
    out.reserve(values.len() * 4);
    for (&v, &b) in values.iter().zip(base) {
        out.extend_from_slice(&(v.to_bits() ^ b.to_bits()).to_le_bytes());
    }
}

/// Inverts [`put_f32_delta`]: reads `base.len()` deltaed floats from the
/// front of `bytes` (advancing the slice) into `out`.
///
/// # Panics
/// Panics on truncated input.
pub fn get_f32_delta(bytes: &mut &[u8], base: &[f32], out: &mut Vec<f32>) {
    let need = base.len() * 4;
    assert!(bytes.len() >= need, "truncated f32 delta block");
    let (block, rest) = bytes.split_at(need);
    *bytes = rest;
    out.reserve(base.len());
    for (chunk, &b) in block.chunks_exact(4).zip(base) {
        let bits = u32::from_le_bytes(chunk.try_into().unwrap());
        out.push(f32::from_bits(bits ^ b.to_bits()));
    }
}

/// Stable handle of one frozen blob inside a [`FrozenArena`].
///
/// Refs are single-owner by protocol (the slab's cold slot holds exactly
/// one); they are not generational — freeing a ref and keeping a copy is
/// a logic error the arena cannot detect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrozenRef(u32);

#[derive(Debug, Clone, Copy)]
struct ArenaEntry {
    chunk: u32,
    offset: u32,
    len: u32,
    live: bool,
}

/// Default chunk payload size: big enough to amortise chunk headers over
/// hundreds of frozen sessions, small enough that a near-empty arena
/// costs little.
const DEFAULT_CHUNK_SIZE: usize = 64 * 1024;

/// Chunked bump arena for frozen session blobs.
///
/// Allocation appends to the tail chunk (opening a new chunk when the
/// blob does not fit); [`FrozenArena::free`] marks a blob dead without
/// moving anything. Once dead bytes exceed live bytes (and a chunk's
/// worth in absolute terms), the arena **compacts**: live blobs are
/// copied into fresh chunks in entry order and the entry table is
/// rewritten in place, so every outstanding [`FrozenRef`] stays valid —
/// no back-pointers into the owner are needed.
#[derive(Debug, Clone)]
pub struct FrozenArena {
    chunks: Vec<Vec<u8>>,
    entries: Vec<ArenaEntry>,
    free: Vec<u32>,
    live_bytes: usize,
    dead_bytes: usize,
    chunk_size: usize,
    compactions: u64,
}

impl Default for FrozenArena {
    fn default() -> Self {
        Self::new()
    }
}

impl FrozenArena {
    /// An empty arena with the default chunk size.
    pub fn new() -> Self {
        Self::with_chunk_size(DEFAULT_CHUNK_SIZE)
    }

    /// An empty arena bump-allocating in chunks of `chunk_size` bytes
    /// (oversized blobs get a dedicated chunk).
    pub fn with_chunk_size(chunk_size: usize) -> Self {
        FrozenArena {
            chunks: Vec::new(),
            entries: Vec::new(),
            free: Vec::new(),
            live_bytes: 0,
            dead_bytes: 0,
            chunk_size: chunk_size.max(1),
            compactions: 0,
        }
    }

    /// Copies `bytes` into the arena, returning its stable ref.
    pub fn alloc(&mut self, bytes: &[u8]) -> FrozenRef {
        let fits = self
            .chunks
            .last()
            .is_some_and(|c| c.capacity() - c.len() >= bytes.len());
        if !fits {
            self.chunks
                .push(Vec::with_capacity(self.chunk_size.max(bytes.len())));
        }
        let chunk_idx = self.chunks.len() - 1;
        let chunk = &mut self.chunks[chunk_idx];
        let offset = chunk.len();
        chunk.extend_from_slice(bytes);
        let entry = ArenaEntry {
            chunk: chunk_idx as u32,
            offset: offset as u32,
            len: bytes.len() as u32,
            live: true,
        };
        self.live_bytes += bytes.len();
        let idx = match self.free.pop() {
            Some(idx) => {
                self.entries[idx as usize] = entry;
                idx
            }
            None => {
                let idx = u32::try_from(self.entries.len()).expect("more than 2^32 frozen blobs");
                self.entries.push(entry);
                idx
            }
        };
        FrozenRef(idx)
    }

    /// The bytes of a live blob.
    ///
    /// # Panics
    /// Panics (or debug-asserts bounds) if `r` was freed.
    pub fn get(&self, r: FrozenRef) -> &[u8] {
        let e = self.entries[r.0 as usize];
        assert!(e.live, "frozen blob {} was freed", r.0);
        let chunk = &self.chunks[e.chunk as usize];
        debug_assert!(
            (e.offset as usize).saturating_add(e.len as usize) <= chunk.len(),
            "arena entry out of chunk bounds"
        );
        &chunk[e.offset as usize..e.offset as usize + e.len as usize]
    }

    /// Frees a blob, compacting the arena when dead bytes dominate.
    ///
    /// # Panics
    /// Panics if `r` was already freed.
    pub fn free(&mut self, r: FrozenRef) {
        let e = &mut self.entries[r.0 as usize];
        assert!(e.live, "frozen blob {} double-freed", r.0);
        e.live = false;
        self.live_bytes -= e.len as usize;
        self.dead_bytes += e.len as usize;
        self.free.push(r.0);
        if self.dead_bytes >= self.live_bytes && self.dead_bytes > self.chunk_size {
            self.compact();
        }
    }

    /// Rewrites live blobs into fresh chunks (entry order), updating the
    /// entry table in place so outstanding refs survive.
    fn compact(&mut self) {
        let mut chunks: Vec<Vec<u8>> = Vec::new();
        for e in &mut self.entries {
            if !e.live {
                continue;
            }
            let len = e.len as usize;
            let fits = chunks
                .last()
                .is_some_and(|c: &Vec<u8>| c.capacity() - c.len() >= len);
            if !fits {
                chunks.push(Vec::with_capacity(self.chunk_size.max(len)));
            }
            let dst_idx = chunks.len() - 1;
            let dst = &mut chunks[dst_idx];
            let offset = dst.len();
            let src = &self.chunks[e.chunk as usize];
            dst.extend_from_slice(&src[e.offset as usize..e.offset as usize + len]);
            e.chunk = dst_idx as u32;
            e.offset = offset as u32;
        }
        self.chunks = chunks;
        self.dead_bytes = 0;
        self.compactions += 1;
    }

    /// Number of live blobs.
    pub fn len(&self) -> usize {
        self.entries.len() - self.free.len()
    }

    /// Whether the arena holds no live blobs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Payload bytes of all live blobs (the per-session cold-tier cost).
    pub fn live_bytes(&self) -> usize {
        self.live_bytes
    }

    /// Payload bytes currently wasted on freed blobs (reclaimed at the
    /// next compaction).
    pub fn dead_bytes(&self) -> usize {
        self.dead_bytes
    }

    /// Total allocated footprint: chunk capacities plus the entry table
    /// and free list.
    pub fn footprint_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.capacity()).sum::<usize>()
            + self.entries.capacity() * std::mem::size_of::<ArenaEntry>()
            + self.free.capacity() * 4
    }

    /// Compaction passes run so far.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut cursor = buf.as_slice();
        for &v in &values {
            assert_eq!(get_varint(&mut cursor), v);
        }
        assert!(cursor.is_empty());
    }

    #[test]
    fn runs_roundtrip_and_compress() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![0],
            vec![1],
            vec![0, 0, 0, 1, 1, 0, 1, 0, 0, 0],
            vec![1; 500],
            {
                let mut v = vec![0u8; 400];
                v.extend_from_slice(&[1; 30]);
                v.extend_from_slice(&[0; 70]);
                v
            },
        ];
        for labels in &cases {
            let mut buf = Vec::new();
            put_runs(&mut buf, labels);
            let mut cursor = buf.as_slice();
            let mut out = Vec::new();
            get_runs(&mut cursor, &mut out);
            assert_eq!(&out, labels);
            assert!(cursor.is_empty());
        }
        // A 500-label stream with 3 runs must land in single-digit bytes.
        let mut buf = Vec::new();
        put_runs(&mut buf, &cases[5]);
        assert!(buf.len() <= 8, "RLE did not compress: {} bytes", buf.len());
    }

    #[test]
    fn f32_delta_roundtrip_is_bit_exact() {
        let values = vec![0.0f32, -0.0, 1.5, -3.25e-7, f32::MIN_POSITIVE, 0.999];
        let base = vec![0.0f32; values.len()];
        let mut buf = Vec::new();
        put_f32_delta(&mut buf, &values, &base);
        assert_eq!(buf.len(), values.len() * 4);
        let mut cursor = buf.as_slice();
        let mut out = Vec::new();
        get_f32_delta(&mut cursor, &base, &mut out);
        for (a, b) in values.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits(), "delta codec not bit-exact");
        }
        // Non-zero base must invert exactly too.
        let base: Vec<f32> = (0..values.len()).map(|i| i as f32 * 0.25 - 0.5).collect();
        let mut buf = Vec::new();
        put_f32_delta(&mut buf, &values, &base);
        let mut cursor = buf.as_slice();
        let mut out = Vec::new();
        get_f32_delta(&mut cursor, &base, &mut out);
        for (a, b) in values.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn arena_alloc_get_free() {
        let mut arena = FrozenArena::with_chunk_size(64);
        let a = arena.alloc(b"hello");
        let b = arena.alloc(&[7u8; 100]); // oversized: dedicated chunk
        let c = arena.alloc(b"world");
        assert_eq!(arena.get(a), b"hello");
        assert_eq!(arena.get(b), &[7u8; 100]);
        assert_eq!(arena.get(c), b"world");
        assert_eq!(arena.len(), 3);
        assert_eq!(arena.live_bytes(), 110);
        arena.free(b);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(a), b"hello");
        assert_eq!(arena.get(c), b"world");
    }

    #[test]
    #[should_panic(expected = "was freed")]
    fn arena_get_after_free_panics() {
        let mut arena = FrozenArena::new();
        let a = arena.alloc(b"x");
        arena.free(a);
        arena.get(a);
    }

    #[test]
    #[should_panic(expected = "double-freed")]
    fn arena_double_free_panics() {
        let mut arena = FrozenArena::new();
        let a = arena.alloc(b"x");
        arena.free(a);
        arena.free(a);
    }

    #[test]
    fn arena_compaction_reclaims_dead_bytes_and_keeps_refs_valid() {
        let mut arena = FrozenArena::with_chunk_size(256);
        let mut live = Vec::new();
        let mut dead = Vec::new();
        for i in 0..200u32 {
            let blob = vec![i as u8; 32];
            let r = arena.alloc(&blob);
            if i % 2 == 0 {
                live.push((r, blob));
            } else {
                dead.push(r);
            }
        }
        let before = arena.footprint_bytes();
        for r in dead {
            arena.free(r);
        }
        assert!(arena.compactions() > 0, "compaction never triggered");
        assert_eq!(arena.dead_bytes(), 0);
        assert_eq!(arena.live_bytes(), live.len() * 32);
        assert!(
            arena.footprint_bytes() < before,
            "compaction did not shrink the footprint"
        );
        for (r, blob) in &live {
            assert_eq!(
                arena.get(*r),
                blob.as_slice(),
                "ref invalidated by compaction"
            );
        }
        // The arena keeps working after compaction: reuse + fresh allocs.
        let r = arena.alloc(b"post-compaction");
        assert_eq!(arena.get(r), b"post-compaction");
    }

    #[test]
    fn arena_churn_is_bounded() {
        // Alloc/free churn must not grow the footprint without bound.
        let mut arena = FrozenArena::with_chunk_size(1024);
        let mut refs = Vec::new();
        for round in 0..50 {
            for i in 0..64u32 {
                refs.push(arena.alloc(&[(round + i) as u8; 48]));
            }
            for r in refs.drain(..) {
                arena.free(r);
            }
        }
        assert_eq!(arena.live_bytes(), 0);
        assert!(
            arena.footprint_bytes() < 64 * 1024,
            "churn grew the arena footprint to {}",
            arena.footprint_bytes()
        );
    }
}
