//! Async ingestion front door: turn independent per-point arrivals into
//! batched [`SessionEngine::observe_batch`] ticks under a latency SLO.
//!
//! The paper's workload is *online* — each GPS point of each ongoing trip
//! must be labelled as it arrives — but [`crate::session::Sharded`] is
//! driven tick-synchronously by one caller that already holds a whole
//! tick's events. A fleet does not arrive in ticks: thousands of producer
//! threads (one per gateway connection, per Kafka partition, per vehicle
//! pool) each hold *one* point at a time. [`IngestFrontDoor`] is the
//! missing subsystem between the two shapes:
//!
//! * **one bounded ingress queue per shard** — sessions are hashed to a
//!   shard at [`IngestHandle::open`]; every later event of that session
//!   lands in the same FIFO queue, so per-session order is preserved and a
//!   slow shard never stalls the others;
//! * **persistent worker threads** — each shard is owned by one worker
//!   spawned once at construction (no `std::thread::scope` re-spawn per
//!   tick, so thread start-up cost leaves the hot path entirely); the
//!   worker also owns its batch/label scratch buffers, reused across
//!   flushes — the per-shard tick scratch of `Sharded`, promoted to
//!   worker-owned allocations;
//! * **latency-SLO micro-batching** — a worker accumulates events and
//!   flushes them into its shard as one `observe_batch` tick when either
//!   [`FlushPolicy::max_batch`] events are pending or the *oldest* pending
//!   event has waited [`FlushPolicy::max_delay`] (measured from `submit`,
//!   so queue wait counts against the SLO);
//! * **explicit backpressure** — [`IngestHandle::submit`] never blocks: a
//!   full ingress queue is reported as [`SubmitError::QueueFull`] and the
//!   producer decides (drop, retry, shed). Labels flow back through a
//!   bounded per-session outbox ([`Subscription`]); a consumer that stops
//!   draining eventually stalls only its own shard's flush;
//! * **graceful shutdown** — [`IngestFrontDoor::shutdown`] drains every
//!   event whose `submit` returned `Ok` (a quiescence barrier covers even
//!   submits racing the shutdown call), flushes it, and hands the shard
//!   engines back together with aggregate [`IngestStats`] (including an
//!   HDR-style submit→label [`LatencyHistogram`]);
//! * **control commands at flush boundaries** — [`IngestHandle::control`]
//!   broadcasts an engine mutation (e.g. a model hot-swap, see
//!   `rl4oasd::SwapModel`) through the same FIFO ingress queues; each
//!   worker first flushes its pending micro-batch, then applies the
//!   command, so a control never splits a micro-batch and everything
//!   submitted before the broadcast is processed under the pre-command
//!   engine state. The handle is typed by its engine (`IngestHandle<E>`),
//!   so commands for the wrong engine type are a compile error, not a
//!   runtime surprise.
//!
//! Because a session's events reach its shard in submit order and
//! [`SessionEngine`] guarantees interleaving never changes labels, the
//! per-session label sequence is **byte-identical** to driving
//! `observe_batch` synchronously — for any [`FlushPolicy`] and any shard
//! count (property-tested in `tests/ingest.rs`).

use crate::session::{SessionEngine, SessionId};
use crate::types::SdPair;
use obs::{names, Counter, Histo, Obs, Stage, StageHandle};
use rnet::SegmentId;
use std::any::Any;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// When a worker flushes its pending micro-batch into its shard.
///
/// A flush happens as soon as **either** bound is hit:
///
/// * `max_batch` — the batch reached this many events (throughput bound:
///   larger batches amortise the per-tick cost and widen the batched nn
///   kernels);
/// * `max_delay` — the *oldest* pending event has waited this long since
///   its `submit` (latency bound: no accepted event waits in the worker
///   longer than the SLO, even on a quiet shard). The clock starts at
///   `submit`, so ingress-queue wait counts against the budget.
///
/// Two special points in the space: [`FlushPolicy::immediate`] flushes
/// every event alone (minimum latency, no batching win), and a huge
/// `max_batch` with a long `max_delay` approximates the tick-synchronous
/// driver. Shutdown and `close` always flush whatever is pending,
/// regardless of policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushPolicy {
    /// Flush when this many events are pending (clamped to at least 1).
    pub max_batch: usize,
    /// Flush when the oldest pending event has waited this long.
    pub max_delay: Duration,
}

impl FlushPolicy {
    /// Flush every event by itself: minimum latency, no batching.
    pub fn immediate() -> Self {
        FlushPolicy {
            max_batch: 1,
            max_delay: Duration::ZERO,
        }
    }

    /// A policy with the given bounds.
    pub fn new(max_batch: usize, max_delay: Duration) -> Self {
        FlushPolicy {
            max_batch,
            max_delay,
        }
    }
}

impl Default for FlushPolicy {
    /// 64-event batches under a 1 ms SLO — batched-kernel wins at
    /// sub-millisecond added latency.
    fn default() -> Self {
        FlushPolicy {
            max_batch: 64,
            max_delay: Duration::from_millis(1),
        }
    }
}

/// Construction-time knobs of an [`IngestFrontDoor`].
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Micro-batching bounds (see [`FlushPolicy`]).
    pub flush: FlushPolicy,
    /// Capacity of each per-shard ingress queue; a full queue turns
    /// [`IngestHandle::submit`] into [`SubmitError::QueueFull`].
    pub queue_capacity: usize,
    /// Capacity of each per-session label outbox; an undrained outbox
    /// eventually blocks its shard's flush (backpressure toward the
    /// consumer), so size it for the consumer's polling cadence.
    pub outbox_capacity: usize,
    /// Telemetry handle. [`obs::Obs::disabled`] (the default) keeps the
    /// door's hot path free of any telemetry work; an enabled handle gets
    /// per-shard ingress counters, per-stage latency histograms
    /// (enqueue-wait / batch-compute / label-delivery) and the
    /// submit→label histogram registered under the `oasd_ingest_*` /
    /// `oasd_stage_nanos` names.
    pub obs: Obs,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            flush: FlushPolicy::default(),
            queue_capacity: 1024,
            outbox_capacity: 256,
            obs: Obs::disabled(),
        }
    }
}

/// Why an [`IngestHandle`] call was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The session's shard queue is full — backpressure. The event was
    /// **not** accepted; retry, shed or slow down.
    QueueFull,
    /// The front door is shutting down (or already shut down); no further
    /// events are accepted.
    ShutDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "shard ingress queue is full"),
            SubmitError::ShutDown => write!(f, "ingest front door is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// The per-session label outbox: accepted events yield provisional labels
/// here, in submit order. Disconnects (all further receives return `None`)
/// once the session is closed and every delivered label has been taken.
///
/// Delivery is bounded (`outbox_capacity`): a consumer that stops
/// draining eventually blocks its shard's flush — consumer-directed
/// backpressure — so drain promptly, and never block waiting for *later*
/// labels while leaving earlier ones untaken. One deliberate exception
/// keeps close from deadlocking: labels still pending when
/// [`IngestHandle::close`] is processed are delivered to the stream only
/// as outbox room allows (the closer is waiting on the [`CloseTicket`],
/// whose final labels cover every accepted event regardless).
pub struct Subscription {
    rx: Receiver<u8>,
}

impl Subscription {
    /// Takes the next label without blocking; `None` if nothing is ready
    /// (including after the session closed and the outbox drained).
    pub fn try_recv(&self) -> Option<u8> {
        self.rx.try_recv().ok()
    }

    /// Blocks for the next label; `None` once the session is closed and
    /// the outbox is drained.
    pub fn recv(&self) -> Option<u8> {
        self.rx.recv().ok()
    }

    /// Drains every currently ready label into `out`, returning how many
    /// were appended.
    pub fn drain_into(&self, out: &mut Vec<u8>) -> usize {
        let before = out.len();
        while let Ok(label) = self.rx.try_recv() {
            out.push(label);
        }
        out.len() - before
    }
}

/// Pending result of an [`IngestHandle::close`]: the session's final
/// labels arrive once its shard worker has flushed the session's pending
/// events and closed it in the engine.
pub struct CloseTicket {
    rx: Receiver<Vec<u8>>,
}

impl CloseTicket {
    /// Blocks until the close completes, returning the session's final
    /// labels (engines with delayed decisions may have revised them).
    ///
    /// # Panics
    /// Panics if the shard worker died before completing the close (e.g.
    /// it panicked on a stale handle).
    pub fn wait(self) -> Vec<u8> {
        self.rx
            .recv()
            .expect("shard worker died before completing close")
    }

    /// Non-blocking probe; `Some(labels)` once the close has completed.
    pub fn try_wait(&self) -> Option<Vec<u8>> {
        self.rx.try_recv().ok()
    }
}

// The HDR histogram grew into the telemetry crate (where the registry
// shares its bucket math); re-exported here so `traj::LatencyHistogram`
// keeps working for every existing caller.
pub use obs::LatencyHistogram;

/// Aggregate counters of one front door's lifetime, returned by
/// [`IngestFrontDoor::shutdown`] (live counters are also visible through
/// [`IngestHandle::accepted_events`] / [`IngestHandle::rejected_events`]).
#[derive(Debug, Clone)]
pub struct IngestStats {
    /// Observe events accepted by `submit`.
    pub submitted: u64,
    /// `submit` calls rejected with [`SubmitError::QueueFull`].
    pub rejected_full: u64,
    /// Events flushed into shard engines (equals `submitted` after a
    /// graceful shutdown).
    pub flushed_events: u64,
    /// Micro-batch flushes executed (each is one `observe_batch` tick).
    pub flushes: u64,
    /// Largest single flush.
    pub max_flush_batch: usize,
    /// Submit→label latency of every flushed event.
    pub latency: LatencyHistogram,
}

/// Everything a graceful [`IngestFrontDoor::shutdown`] hands back: the
/// shard engines (with any still-open sessions intact) and the aggregate
/// ingestion statistics.
pub struct ShutdownReport<E> {
    /// The shard engines, in shard order.
    pub engines: Vec<E>,
    /// Aggregate counters and the merged latency histogram.
    pub stats: IngestStats,
}

/// A type-erased control command. The queues carry the erased form so
/// [`Shared`] stays untyped; the typed [`IngestHandle::control`] builds the
/// closure from a concrete `FnOnce(&mut E)`, and the worker hands it
/// `&mut E` as `&mut dyn Any` (the downcast cannot fail: handles are only
/// minted by an `IngestFrontDoor<E>` of the same `E`).
type ControlFn = Box<dyn FnOnce(&mut dyn Any) + Send>;

enum Cmd {
    Open {
        outer: u64,
        sd: SdPair,
        start_time: f64,
        outbox: SyncSender<u8>,
    },
    Observe {
        outer: u64,
        segment: SegmentId,
        submitted: Instant,
    },
    Close {
        outer: u64,
        reply: SyncSender<Vec<u8>>,
    },
    /// Engine mutation applied at the worker's next flush boundary.
    Control(ControlFn),
    Shutdown,
}

struct Shared {
    queues: Vec<SyncSender<Cmd>>,
    next_session: AtomicU64,
    closed: AtomicBool,
    /// Producers inside a check-closed + enqueue critical section right
    /// now. `shutdown` waits for this to reach zero after setting `closed`
    /// (a quiescence barrier), so every command whose submit returned `Ok`
    /// — even one racing the shutdown call — is in its queue before the
    /// `Shutdown` markers go out and is therefore drained, never dropped.
    inflight: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    outbox_capacity: usize,
    /// Pre-resolved per-shard telemetry counters (index = shard); inert
    /// no-op handles when the door was built without telemetry.
    obs_submitted: Vec<Counter>,
    obs_rejected: Vec<Counter>,
}

impl Shared {
    /// Fibonacci-hashes a session's raw id onto a shard (the same spread
    /// as [`crate::session::Sharded`]).
    fn shard_of(&self, raw: u64) -> usize {
        let h = raw.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) % self.queues.len() as u64) as usize
    }
}

/// Cheap, cloneable producer handle of an [`IngestFrontDoor<E>`]: any
/// number of threads submit per-point events concurrently; none of the
/// calls blocks on engine work (except [`IngestHandle::submit_blocking`]
/// and [`IngestHandle::control`], which wait for queue space).
///
/// The handle carries the front door's engine type `E` purely at the type
/// level (it stores no engine), so engine-specific control commands —
/// like the RL4OASD model hot-swap, `rl4oasd::SwapModel::swap_model` —
/// are compile-time checked against the engine actually behind the door.
///
/// # Example
///
/// ```
/// use traj::detector::AlwaysNormal;
/// use traj::{IngestConfig, IngestFrontDoor, SdPair, SessionMux};
/// use rnet::SegmentId;
///
/// let door = IngestFrontDoor::build(
///     2,
///     |_| SessionMux::new(AlwaysNormal::default),
///     IngestConfig::default(),
/// );
/// let handle = door.handle();
/// let sd = SdPair { source: SegmentId(0), dest: SegmentId(9) };
/// let (session, labels) = handle.open(sd, 0.0).unwrap();
/// handle.submit(session, SegmentId(3)).unwrap(); // never blocks
/// let finals = handle.close(session).unwrap().wait();
/// assert_eq!(finals, vec![0]);
/// assert_eq!(labels.recv(), Some(0));
/// let report = door.shutdown();
/// assert_eq!(report.stats.flushed_events, 1);
/// ```
pub struct IngestHandle<E> {
    shared: Arc<Shared>,
    /// `fn(&mut E)` keeps the handle `Send + Sync` (and covariant enough)
    /// regardless of `E`, while still naming the engine type.
    _engine: PhantomData<fn(&mut E)>,
}

impl<E> Clone for IngestHandle<E> {
    fn clone(&self) -> Self {
        IngestHandle {
            shared: Arc::clone(&self.shared),
            _engine: PhantomData,
        }
    }
}

/// Whether a queued command counts toward the observe-event tallies.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Tally {
    Observe,
    Control,
}

impl<E> IngestHandle<E> {
    /// The shutdown quiescence barrier, single-sourced for every enqueue
    /// path (`push`, [`IngestHandle::submit_blocking`],
    /// [`IngestHandle::control`]): `inflight` is held across the closed
    /// check, the enqueue *and* the stats tally, so `shutdown` can wait
    /// out every concurrent producer before sealing the queues — any
    /// command whose enqueue returned `Ok` is already in its queue (and
    /// tallied) when the `Shutdown` markers go out, hence drained, never
    /// dropped or under-counted.
    fn with_inflight<T>(
        &self,
        enqueue: impl FnOnce() -> Result<T, SubmitError>,
    ) -> Result<T, SubmitError> {
        self.shared.inflight.fetch_add(1, Ordering::SeqCst);
        let result = if self.shared.closed.load(Ordering::SeqCst) {
            Err(SubmitError::ShutDown)
        } else {
            enqueue()
        };
        self.shared.inflight.fetch_sub(1, Ordering::SeqCst);
        result
    }

    /// Enqueues a command (non-blocking) inside the quiescence barrier.
    fn push(&self, shard: usize, cmd: Cmd, tally: Tally) -> Result<(), SubmitError> {
        self.with_inflight(|| {
            let result = match self.shared.queues[shard].try_send(cmd) {
                Ok(()) => Ok(()),
                Err(TrySendError::Full(_)) => Err(SubmitError::QueueFull),
                Err(TrySendError::Disconnected(_)) => Err(SubmitError::ShutDown),
            };
            if tally == Tally::Observe {
                match result {
                    Ok(()) => {
                        self.shared.accepted.fetch_add(1, Ordering::Relaxed);
                        self.shared.obs_submitted[shard].inc();
                    }
                    Err(SubmitError::QueueFull) => {
                        self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                        self.shared.obs_rejected[shard].inc();
                    }
                    Err(SubmitError::ShutDown) => {}
                }
            }
            result
        })
    }

    /// Opens a session for a trip, returning its handle and the
    /// [`Subscription`] its provisional labels will arrive on.
    ///
    /// The open travels through the session's shard queue like any other
    /// event (FIFO), so events submitted afterwards are guaranteed to be
    /// processed after it.
    pub fn open(
        &self,
        sd: SdPair,
        start_time: f64,
    ) -> Result<(SessionId, Subscription), SubmitError> {
        let raw = self.shared.next_session.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = sync_channel(self.shared.outbox_capacity);
        self.push(
            self.shared.shard_of(raw),
            Cmd::Open {
                outer: raw,
                sd,
                start_time,
                outbox: tx,
            },
            Tally::Control,
        )?;
        Ok((SessionId::from_raw(raw), Subscription { rx }))
    }

    /// Submits the next road segment of an open session. Never blocks: a
    /// full shard queue is reported as [`SubmitError::QueueFull`] and the
    /// event is **not** accepted.
    ///
    /// Submitting to a session that was never opened (or already closed)
    /// is a contract violation and panics the session's shard worker.
    pub fn submit(&self, session: SessionId, segment: SegmentId) -> Result<(), SubmitError> {
        let raw = session.raw();
        self.push(
            self.shared.shard_of(raw),
            Cmd::Observe {
                outer: raw,
                segment,
                submitted: Instant::now(),
            },
            Tally::Observe,
        )
    }

    /// Like [`IngestHandle::submit`], but waits for queue space instead of
    /// reporting [`SubmitError::QueueFull`] — the blocking producer style
    /// for callers that prefer waiting over shedding.
    pub fn submit_blocking(
        &self,
        session: SessionId,
        segment: SegmentId,
    ) -> Result<(), SubmitError> {
        let raw = session.raw();
        let shard = self.shared.shard_of(raw);
        self.with_inflight(|| {
            self.shared.queues[shard]
                .send(Cmd::Observe {
                    outer: raw,
                    segment,
                    submitted: Instant::now(),
                })
                .map_err(|_| SubmitError::ShutDown)
                .map(|()| {
                    self.shared.accepted.fetch_add(1, Ordering::Relaxed);
                    self.shared.obs_submitted[shard].inc();
                })
        })
    }

    /// Requests the session's close. The shard worker first flushes the
    /// session's pending events, then closes it; the final labels arrive
    /// on the returned [`CloseTicket`].
    pub fn close(&self, session: SessionId) -> Result<CloseTicket, SubmitError> {
        let raw = session.raw();
        let (tx, rx) = sync_channel(1);
        self.push(
            self.shared.shard_of(raw),
            Cmd::Close {
                outer: raw,
                reply: tx,
            },
            Tally::Control,
        )?;
        Ok(CloseTicket { rx })
    }

    /// Number of shards (and ingress queues) behind this handle.
    pub fn num_shards(&self) -> usize {
        self.shared.queues.len()
    }

    /// Live count of events accepted by `submit` so far.
    pub fn accepted_events(&self) -> u64 {
        self.shared.accepted.load(Ordering::Relaxed)
    }

    /// Live count of `submit` calls rejected with `QueueFull` so far.
    pub fn rejected_events(&self) -> u64 {
        self.shared.rejected.load(Ordering::Relaxed)
    }
}

impl<E: SessionEngine + 'static> IngestHandle<E> {
    /// Broadcasts an engine mutation to every shard worker, each applying
    /// it at its next **flush boundary**: the worker first flushes its
    /// pending micro-batch (labelled under the pre-command engine state),
    /// then runs `command` on its engine.
    ///
    /// Ordering is per shard queue (FIFO): everything this thread enqueued
    /// before the broadcast is processed before the command, everything
    /// after it (e.g. an `open` issued after `control` returns) is
    /// processed after. Commands from different threads race per shard;
    /// for state-replacing commands like a model swap this is plain
    /// last-writer-wins.
    ///
    /// Unlike [`IngestHandle::submit`], the broadcast **waits for queue
    /// space** instead of reporting [`SubmitError::QueueFull`] — a partial
    /// broadcast (some shards swapped, some not) would be worse than a
    /// short blocking send on queues the workers are actively draining.
    /// Returns [`SubmitError::ShutDown`] if the door is (or becomes)
    /// closed; workers that already exited simply never apply it.
    pub fn control(
        &self,
        command: impl FnOnce(&mut E) + Clone + Send + 'static,
    ) -> Result<(), SubmitError> {
        self.with_inflight(|| {
            for queue in &self.shared.queues {
                let apply = command.clone();
                let erased: ControlFn = Box::new(move |engine: &mut dyn Any| {
                    let engine = engine
                        .downcast_mut::<E>()
                        .expect("front-door engine type matches its handle type");
                    apply(engine);
                });
                if queue.send(Cmd::Control(erased)).is_err() {
                    return Err(SubmitError::ShutDown);
                }
            }
            Ok(())
        })
    }
}

/// Per-worker report handed back on shutdown.
struct WorkerReport<E> {
    engine: E,
    flushed_events: u64,
    flushes: u64,
    max_flush_batch: usize,
    latency: LatencyHistogram,
}

/// One persistent shard worker: owns its engine and its reused batch
/// scratch; drains its ingress queue; flushes micro-batches per the
/// [`FlushPolicy`].
struct Worker<E> {
    engine: E,
    rx: Receiver<Cmd>,
    policy: FlushPolicy,
    /// outer raw id → (shard-local handle, label outbox)
    routes: HashMap<u64, (SessionId, SyncSender<u8>)>,
    /// Pending micro-batch, in shard-local handles (fed to the engine).
    batch: Vec<(SessionId, SegmentId)>,
    /// Outer id + submit time per pending event (for outbox + latency).
    meta: Vec<(u64, Instant)>,
    /// Label output of the last flush (reused allocation).
    out: Vec<u8>,
    report: WorkerReportCounters,
    /// Pre-resolved telemetry handles for this shard; all inert no-ops
    /// when the door was built without telemetry, so the flush path does
    /// no extra clock reads or atomics in that case.
    tele: WorkerTelemetry,
}

/// Per-shard telemetry handles, resolved once at worker construction.
struct WorkerTelemetry {
    /// submit → flush-start wait per event (histogram only, no span
    /// record: millions of events would flood the span ring).
    enqueue_wait: StageHandle,
    /// Whole micro-batch flush (drain + compute + deliver + maintain).
    flush: StageHandle,
    /// The `observe_batch` call.
    batch_compute: StageHandle,
    /// Outbox fan-out of fresh labels.
    label_delivery: StageHandle,
    /// submit→label end-to-end latency (mirror of the per-worker
    /// [`LatencyHistogram`] so snapshots and Prometheus scrapes see it).
    latency: Histo,
    flushed_events: Counter,
    flushes: Counter,
}

impl WorkerTelemetry {
    fn resolve(obs: &Obs, shard: usize) -> Self {
        let shard_label = shard.to_string();
        let labels: &[(&str, &str)] = &[("shard", &shard_label)];
        let shard = shard as u32;
        WorkerTelemetry {
            enqueue_wait: obs.stage(Stage::EnqueueWait, shard),
            flush: obs.stage(Stage::Flush, shard),
            batch_compute: obs.stage(Stage::BatchCompute, shard),
            label_delivery: obs.stage(Stage::LabelDelivery, shard),
            latency: obs.histogram(names::INGEST_LATENCY, labels),
            flushed_events: obs.counter(names::INGEST_FLUSHED, labels),
            flushes: obs.counter(names::INGEST_FLUSHES, labels),
        }
    }
}

#[derive(Default)]
struct WorkerReportCounters {
    flushed_events: u64,
    flushes: u64,
    max_flush_batch: usize,
    latency: LatencyHistogram,
}

enum Control {
    Continue,
    Drain,
}

impl<E: SessionEngine + 'static> Worker<E> {
    fn new(engine: E, rx: Receiver<Cmd>, policy: FlushPolicy, obs: &Obs, shard: usize) -> Self {
        let max_batch = policy.max_batch.max(1);
        Worker {
            engine,
            rx,
            policy: FlushPolicy {
                max_batch,
                max_delay: policy.max_delay,
            },
            routes: HashMap::new(),
            batch: Vec::with_capacity(max_batch),
            meta: Vec::with_capacity(max_batch),
            out: Vec::new(),
            report: WorkerReportCounters::default(),
            tele: WorkerTelemetry::resolve(obs, shard),
        }
    }

    /// Flushes the pending micro-batch into the engine and fans the labels
    /// out to the session outboxes.
    ///
    /// Outbox delivery is blocking (an undrained outbox stalls this
    /// shard's flush — consumer-directed backpressure; a dropped
    /// [`Subscription`] just discards its labels) **except** for the
    /// session named in `closing`: its consumer is, by protocol, already
    /// waiting on the [`CloseTicket`] rather than draining the
    /// subscription, so blocking on its full outbox would deadlock the
    /// shard. Labels that do not fit that outbox are dropped from the
    /// *stream* only — the final labels returned by the close still cover
    /// every accepted event.
    fn flush(&mut self, closing: Option<u64>) {
        if self.batch.is_empty() {
            return;
        }
        // Stage tracing is resolved per shard at construction; with
        // telemetry disabled `t_start` is never read and no extra clock
        // read or atomic happens on this path. With telemetry on the
        // adjacent stages share timestamps (`t_start`, the `done` stamp
        // the latency loop needs anyway, and one read per remaining
        // boundary) — micro-batches are often just a few events, so
        // per-flush clock reads are the dominant telemetry cost.
        let t_start = if self.tele.flush.is_live() {
            Some(Instant::now())
        } else {
            None
        };
        if let Some(t0) = t_start {
            for &(_, submitted) in &self.meta {
                self.tele
                    .enqueue_wait
                    .record_nanos(t0.saturating_duration_since(submitted).as_nanos() as u64);
            }
        }
        self.engine.observe_batch(&self.batch, &mut self.out);
        debug_assert_eq!(self.out.len(), self.batch.len());
        let done = Instant::now();
        if let Some(t0) = t_start {
            // Includes the enqueue-wait bookkeeping above — a handful of
            // atomic adds, noise next to the batched forward pass.
            self.tele.batch_compute.record_span(t0, done);
        }
        self.report.flushes += 1;
        self.report.flushed_events += self.batch.len() as u64;
        self.report.max_flush_batch = self.report.max_flush_batch.max(self.batch.len());
        self.tele.flushes.inc();
        self.tele.flushed_events.add(self.batch.len() as u64);
        for (k, &(outer, submitted)) in self.meta.iter().enumerate() {
            let latency = done.saturating_duration_since(submitted);
            self.report.latency.record(latency);
            self.tele.latency.record(latency);
            if let Some((_, outbox)) = self.routes.get(&outer) {
                if closing == Some(outer) {
                    let _ = outbox.try_send(self.out[k]);
                } else {
                    let _ = outbox.send(self.out[k]);
                }
            }
        }
        if self.tele.label_delivery.is_live() {
            self.tele.label_delivery.record_span(done, Instant::now());
        }
        self.batch.clear();
        self.meta.clear();
        // Flush boundary (the same seam control commands use): let the
        // engine run its background maintenance — e.g. sweeping idle
        // sessions into the hibernated cold tier — where it can never
        // split a micro-batch.
        self.engine.maintain();
        if let Some(t0) = t_start {
            self.tele.flush.record_span(t0, Instant::now());
        }
    }

    fn handle(&mut self, cmd: Cmd, deadline: &mut Instant) -> Control {
        match cmd {
            Cmd::Open {
                outer,
                sd,
                start_time,
                outbox,
            } => {
                let inner = self.engine.open(sd, start_time);
                self.routes.insert(outer, (inner, outbox));
            }
            Cmd::Observe {
                outer,
                segment,
                submitted,
            } => {
                let inner = self
                    .routes
                    .get(&outer)
                    .unwrap_or_else(|| panic!("ingest event for unknown or closed session"))
                    .0;
                if self.batch.is_empty() {
                    // SLO clock starts at submit: queue wait counts.
                    *deadline = submitted + self.policy.max_delay;
                }
                self.batch.push((inner, segment));
                self.meta.push((outer, submitted));
                if self.batch.len() >= self.policy.max_batch {
                    self.flush(None);
                }
            }
            Cmd::Close { outer, reply } => {
                // The session's pending events must land before the close
                // (its own stream delivery downgraded to non-blocking: the
                // closer is waiting on the ticket, not draining).
                self.flush(Some(outer));
                let (inner, outbox) = self
                    .routes
                    .remove(&outer)
                    .unwrap_or_else(|| panic!("ingest close for unknown or closed session"));
                drop(outbox); // disconnects the Subscription once drained
                let labels = self.engine.close(inner);
                let _ = reply.send(labels);
            }
            Cmd::Control(apply) => {
                // Flush boundary: the pending micro-batch is labelled
                // under the pre-command engine state before the command
                // lands, so a control never splits a batch.
                self.flush(None);
                apply(&mut self.engine as &mut dyn Any);
            }
            Cmd::Shutdown => return Control::Drain,
        }
        Control::Continue
    }

    fn run(mut self) -> WorkerReport<E> {
        let mut deadline = Instant::now();
        'serve: loop {
            let cmd = if self.batch.is_empty() {
                // Idle: park until work arrives (or every sender is gone).
                match self.rx.recv() {
                    Ok(cmd) => cmd,
                    Err(_) => break 'serve,
                }
            } else {
                let now = Instant::now();
                if now >= deadline {
                    self.flush(None);
                    continue;
                }
                match self.rx.recv_timeout(deadline - now) {
                    Ok(cmd) => cmd,
                    Err(RecvTimeoutError::Timeout) => {
                        self.flush(None);
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => break 'serve,
                }
            };
            if let Control::Drain = self.handle(cmd, &mut deadline) {
                // Graceful shutdown: everything enqueued before the
                // Shutdown marker has already been received (FIFO); sweep
                // any stragglers that raced the marker, then stop.
                while let Ok(cmd) = self.rx.try_recv() {
                    let _ = self.handle(cmd, &mut deadline);
                }
                break 'serve;
            }
        }
        self.flush(None);
        WorkerReport {
            engine: self.engine,
            flushed_events: self.report.flushed_events,
            flushes: self.report.flushes,
            max_flush_batch: self.report.max_flush_batch,
            latency: self.report.latency,
        }
    }
}

/// The async ingestion front door: one bounded ingress queue + one
/// persistent worker thread per shard, micro-batching per-point arrivals
/// into [`SessionEngine::observe_batch`] ticks under a [`FlushPolicy`].
///
/// See the [module docs](self) for the full contract. Construct with
/// [`IngestFrontDoor::new`] / [`IngestFrontDoor::build`], produce through
/// cloned [`IngestHandle`]s, and finish with [`IngestFrontDoor::shutdown`]
/// to drain in-flight events and recover the shard engines.
pub struct IngestFrontDoor<E> {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<WorkerReport<E>>>,
}

impl<E: SessionEngine + Send + 'static> IngestFrontDoor<E> {
    /// Spawns one persistent worker per pre-built shard engine.
    ///
    /// # Panics
    /// Panics if `shards` is empty or `config.queue_capacity` is zero.
    pub fn new(shards: Vec<E>, config: IngestConfig) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        let num_shards = shards.len();
        let mut queues = Vec::with_capacity(num_shards);
        let mut workers = Vec::with_capacity(num_shards);
        for (i, engine) in shards.into_iter().enumerate() {
            let (tx, rx) = sync_channel(config.queue_capacity);
            queues.push(tx);
            let worker = Worker::new(engine, rx, config.flush, &config.obs, i);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("ingest-shard-{i}"))
                    .spawn(move || worker.run())
                    .expect("spawn ingest worker"),
            );
        }
        let shard_counter = |name: &str| -> Vec<Counter> {
            (0..num_shards)
                .map(|i| config.obs.counter(name, &[("shard", &i.to_string())]))
                .collect()
        };
        IngestFrontDoor {
            shared: Arc::new(Shared {
                queues,
                next_session: AtomicU64::new(0),
                closed: AtomicBool::new(false),
                inflight: AtomicU64::new(0),
                accepted: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                outbox_capacity: config.outbox_capacity.max(1),
                obs_submitted: shard_counter(names::INGEST_SUBMITTED),
                obs_rejected: shard_counter(names::INGEST_REJECTED),
            }),
            workers,
        }
    }

    /// Builds `n` shards from a factory called with each shard index.
    pub fn build(n: usize, mut factory: impl FnMut(usize) -> E, config: IngestConfig) -> Self {
        Self::new((0..n).map(&mut factory).collect(), config)
    }

    /// A cheap, cloneable producer handle, typed by this door's engine.
    pub fn handle(&self) -> IngestHandle<E> {
        IngestHandle {
            shared: Arc::clone(&self.shared),
            _engine: PhantomData,
        }
    }

    /// Number of shards (= ingress queues = worker threads).
    pub fn num_shards(&self) -> usize {
        self.shared.queues.len()
    }

    /// Gracefully shuts down: rejects further submits, drains **every**
    /// event whose `submit` returned `Ok` — including ones racing this
    /// call — flushes, joins the workers and returns the shard engines
    /// plus aggregate [`IngestStats`].
    ///
    /// The drain guarantee is a quiescence barrier, not best-effort: after
    /// sealing the door this method waits for all in-flight producer
    /// enqueues to land before the shutdown markers enter the queues, so
    /// an accepted event is always *ahead of* the marker and gets flushed,
    /// and an accepted close always completes its [`CloseTicket`].
    ///
    /// Sessions still open keep their state inside the returned engines
    /// (their subscriptions disconnect without final labels).
    ///
    /// # Panics
    /// Propagates a worker panic (e.g. from a submit on a closed session).
    pub fn shutdown(mut self) -> ShutdownReport<E> {
        self.shared.closed.store(true, Ordering::SeqCst);
        // Quiescence: wait out producers already past the closed check.
        // Their critical section is a handful of instructions (plus, for
        // `submit_blocking`, a queue wait the draining worker unblocks),
        // so this spin is short-lived by construction.
        while self.shared.inflight.load(Ordering::SeqCst) > 0 {
            std::thread::yield_now();
        }
        for queue in &self.shared.queues {
            // Blocking send is fine: the worker is draining this queue.
            // An already-dead worker returns Err, which is exactly the
            // state Shutdown would have produced.
            let _ = queue.send(Cmd::Shutdown);
        }
        let mut engines = Vec::with_capacity(self.workers.len());
        let mut stats = IngestStats {
            submitted: 0,
            rejected_full: 0,
            flushed_events: 0,
            flushes: 0,
            max_flush_batch: 0,
            latency: LatencyHistogram::new(),
        };
        for worker in std::mem::take(&mut self.workers) {
            match worker.join() {
                Ok(report) => {
                    stats.flushed_events += report.flushed_events;
                    stats.flushes += report.flushes;
                    stats.max_flush_batch = stats.max_flush_batch.max(report.max_flush_batch);
                    stats.latency.merge(&report.latency);
                    engines.push(report.engine);
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        // Read the tallies after the barrier + joins so they cover every
        // producer that got an `Ok` (`submitted == flushed_events` is the
        // graceful-shutdown invariant the tests pin).
        stats.submitted = self.shared.accepted.load(Ordering::SeqCst);
        stats.rejected_full = self.shared.rejected.load(Ordering::SeqCst);
        ShutdownReport { engines, stats }
    }
}

impl<E> Drop for IngestFrontDoor<E> {
    /// Best-effort teardown when dropped without [`IngestFrontDoor::shutdown`]:
    /// flags the door closed and nudges the workers to exit. Does not join
    /// (detached workers exit once their queues disconnect); prefer an
    /// explicit `shutdown` for drain guarantees and stats.
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return; // shutdown already ran
        }
        self.shared.closed.store(true, Ordering::Release);
        for queue in &self.shared.queues {
            let _ = queue.try_send(Cmd::Shutdown);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::OnlineDetector;
    use crate::session::SessionMux;

    fn sd(a: u32, b: u32) -> SdPair {
        SdPair {
            source: SegmentId(a),
            dest: SegmentId(b),
        }
    }

    /// Labels each segment by parity — discriminative enough to catch
    /// routing or ordering mistakes through the queues.
    #[derive(Default)]
    struct Parity {
        labels: Vec<u8>,
    }

    impl OnlineDetector for Parity {
        fn name(&self) -> &'static str {
            "Parity"
        }
        fn begin(&mut self, _sd: SdPair, _start_time: f64) {
            self.labels.clear();
        }
        fn observe(&mut self, segment: SegmentId) -> u8 {
            let label = (segment.0 & 1) as u8;
            self.labels.push(label);
            label
        }
        fn finish(&mut self) -> Vec<u8> {
            std::mem::take(&mut self.labels)
        }
    }

    fn parity_door(
        shards: usize,
        config: IngestConfig,
    ) -> IngestFrontDoor<SessionMux<Parity, fn() -> Parity>> {
        IngestFrontDoor::build(
            shards,
            |_| SessionMux::new(Parity::default as fn() -> Parity),
            config,
        )
    }

    #[test]
    fn submit_labels_flow_back_in_order() {
        let door = parity_door(3, IngestConfig::default());
        let handle = door.handle();
        assert_eq!(handle.num_shards(), 3);
        let (s1, sub1) = handle.open(sd(0, 9), 0.0).unwrap();
        let (s2, sub2) = handle.open(sd(1, 8), 0.0).unwrap();
        for seg in [2u32, 3, 5] {
            handle.submit(s1, SegmentId(seg)).unwrap();
        }
        handle.submit(s2, SegmentId(7)).unwrap();
        let t1 = handle.close(s1).unwrap();
        let t2 = handle.close(s2).unwrap();
        assert_eq!(t1.wait(), vec![0, 1, 1]);
        assert_eq!(t2.wait(), vec![1]);
        // Subscriptions carry the provisional stream, then disconnect.
        let mut got = Vec::new();
        while let Some(l) = sub1.recv() {
            got.push(l);
        }
        assert_eq!(got, vec![0, 1, 1]);
        assert_eq!(sub2.recv(), Some(1));
        assert_eq!(sub2.recv(), None);
        let report = door.shutdown();
        assert_eq!(report.stats.submitted, 4);
        assert_eq!(report.stats.flushed_events, 4);
        assert_eq!(report.stats.rejected_full, 0);
        assert_eq!(report.stats.latency.count(), 4);
        assert_eq!(report.engines.len(), 3);
    }

    #[test]
    fn max_batch_one_flushes_every_event_alone() {
        let door = parity_door(
            1,
            IngestConfig {
                flush: FlushPolicy::immediate(),
                ..Default::default()
            },
        );
        let handle = door.handle();
        let (s, sub) = handle.open(sd(0, 9), 0.0).unwrap();
        for seg in 0..10u32 {
            handle.submit(s, SegmentId(seg)).unwrap();
        }
        handle.close(s).unwrap().wait();
        let mut labels = Vec::new();
        while let Some(l) = sub.recv() {
            labels.push(l);
        }
        assert_eq!(labels, vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1]);
        let report = door.shutdown();
        assert_eq!(report.stats.flushes, 10, "immediate policy batches nothing");
        assert_eq!(report.stats.max_flush_batch, 1);
    }

    #[test]
    fn shutdown_drains_unflushed_batches() {
        // A policy that never flushes on its own within the test window.
        let door = parity_door(
            2,
            IngestConfig {
                flush: FlushPolicy::new(1_000_000, Duration::from_secs(3600)),
                ..Default::default()
            },
        );
        let handle = door.handle();
        let (s, sub) = handle.open(sd(0, 9), 0.0).unwrap();
        for seg in [1u32, 2, 3] {
            handle.submit(s, SegmentId(seg)).unwrap();
        }
        let report = door.shutdown();
        assert_eq!(report.stats.flushed_events, 3, "shutdown flushed the batch");
        let mut labels = Vec::new();
        sub.drain_into(&mut labels);
        assert_eq!(labels, vec![1, 0, 1]);
        // The session never closed: its state is still in the engine.
        let open_sessions: usize = report.engines.iter().map(|e| e.active_sessions()).sum();
        assert_eq!(open_sessions, 1);
        assert!(handle.submit(s, SegmentId(9)).is_err(), "door is closed");
        assert_eq!(handle.submit(s, SegmentId(9)), Err(SubmitError::ShutDown));
    }

    #[test]
    fn handles_are_cloneable_across_threads() {
        let door = parity_door(2, IngestConfig::default());
        let handle = door.handle();
        let mut joins = Vec::new();
        for p in 0..4u32 {
            let h = handle.clone();
            joins.push(std::thread::spawn(move || {
                let (s, _sub) = h.open(sd(p, p + 1), 0.0).unwrap();
                for seg in 0..50u32 {
                    while h.submit(s, SegmentId(seg)) == Err(SubmitError::QueueFull) {
                        std::thread::yield_now();
                    }
                }
                h.close(s).unwrap().wait().len()
            }));
        }
        let total: usize = joins.into_iter().map(|j| j.join().unwrap()).sum();
        assert_eq!(total, 200);
        let report = door.shutdown();
        assert_eq!(report.stats.flushed_events, 200);
    }

    #[test]
    #[should_panic(expected = "need at least one shard")]
    fn zero_shards_rejected() {
        let _ = parity_door(0, IngestConfig::default());
    }

    /// Regression: closing a session whose pending labels exceed the
    /// outbox capacity must not deadlock the shard — the close-triggered
    /// flush downgrades that session's stream delivery to non-blocking,
    /// and the final labels still cover every event.
    #[test]
    fn close_with_overfull_outbox_does_not_deadlock() {
        const OUTBOX: usize = 2;
        const EVENTS: u32 = 10;
        let door = parity_door(
            1,
            IngestConfig {
                // Never flush on its own: everything is pending at close.
                flush: FlushPolicy::new(1_000_000, Duration::from_secs(3600)),
                outbox_capacity: OUTBOX,
                ..Default::default()
            },
        );
        let handle = door.handle();
        let (s, sub) = handle.open(sd(0, 9), 0.0).unwrap();
        for seg in 0..EVENTS {
            handle.submit(s, SegmentId(seg)).unwrap();
        }
        // Close without draining the subscription first — the pattern
        // that would deadlock against a blocking outbox send.
        let finals = handle.close(s).unwrap().wait();
        assert_eq!(finals.len(), EVENTS as usize);
        // The stream got what fit; the rest went only to the finals.
        let mut streamed = Vec::new();
        while let Some(l) = sub.recv() {
            streamed.push(l);
        }
        assert_eq!(streamed.len(), OUTBOX);
        assert_eq!(streamed, finals[..OUTBOX]);
        let report = door.shutdown();
        assert_eq!(report.stats.flushed_events, EVENTS as u64);
    }

    #[test]
    fn histogram_small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for nanos in [1u64, 2, 3, 15] {
            h.record(Duration::from_nanos(nanos));
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.percentile(0.0), Duration::from_nanos(1));
        assert_eq!(h.percentile(1.0), Duration::from_nanos(15));
        assert_eq!(h.max(), Duration::from_nanos(15));
    }

    #[test]
    fn histogram_percentiles_within_bucket_resolution() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record(Duration::from_nanos(i * 1_000)); // 1us..10ms
        }
        for (q, want_nanos) in [(0.5, 5_000_000.0), (0.95, 9_500_000.0), (0.99, 9_900_000.0)] {
            let got = h.percentile(q).as_nanos() as f64;
            let err = (got - want_nanos).abs() / want_nanos;
            assert!(err < 0.08, "p{q}: got {got}, want {want_nanos}, err {err}");
        }
        assert_eq!(h.max(), Duration::from_nanos(10_000_000));
        let mean = h.mean().as_nanos() as f64;
        assert!((mean - 5_000_500.0).abs() < 1_000.0);
    }

    /// A minimal engine with swappable shared state: each session is
    /// stamped with the engine's `current` value at `open` and every one
    /// of its events is labelled with that stamp — a miniature of the
    /// RL4OASD model-epoch hot-swap (new sessions see the new state, open
    /// sessions keep the old).
    struct Stamp {
        current: u8,
        sessions: crate::SessionSlab<(u8, Vec<u8>)>,
    }

    impl SessionEngine for Stamp {
        fn engine_name(&self) -> &'static str {
            "Stamp"
        }
        fn open(&mut self, _sd: SdPair, _start_time: f64) -> SessionId {
            let stamp = self.current;
            self.sessions.insert((stamp, Vec::new()))
        }
        fn observe(&mut self, session: SessionId, _segment: SegmentId) -> u8 {
            let (stamp, history) = self.sessions.get_mut(session);
            history.push(*stamp);
            *stamp
        }
        fn close(&mut self, session: SessionId) -> Vec<u8> {
            self.sessions.remove(session).1
        }
        fn active_sessions(&self) -> usize {
            self.sessions.len()
        }
    }

    /// Control commands are applied at a flush boundary, strictly after
    /// everything enqueued before the broadcast and strictly before
    /// everything enqueued after it — so sessions opened before the
    /// command keep the old engine state and sessions opened after see
    /// the new one, even with a policy that never flushes on its own.
    #[test]
    fn control_applies_at_flush_boundary_between_opens() {
        let door = IngestFrontDoor::build(
            2,
            |_| Stamp {
                current: 0,
                sessions: crate::SessionSlab::new(),
            },
            IngestConfig {
                // Never flush on its own: the command's flush-first step is
                // the only thing that can label the pre-control events.
                flush: FlushPolicy::new(1_000_000, Duration::from_secs(3600)),
                ..Default::default()
            },
        );
        let handle = door.handle();
        let (before, _sub_b) = handle.open(sd(0, 9), 0.0).unwrap();
        for seg in 0..3u32 {
            handle.submit(before, SegmentId(seg)).unwrap();
        }
        handle
            .control(|engine: &mut Stamp| engine.current = 1)
            .unwrap();
        let (after, _sub_a) = handle.open(sd(1, 8), 0.0).unwrap();
        for seg in 0..2u32 {
            handle.submit(after, SegmentId(seg)).unwrap();
            handle.submit(before, SegmentId(seg)).unwrap();
        }
        // Pre-control sessions keep their stamp for their whole life, even
        // for events submitted after the control; post-control sessions
        // carry the new stamp from their first event.
        assert_eq!(handle.close(before).unwrap().wait(), vec![0; 5]);
        assert_eq!(handle.close(after).unwrap().wait(), vec![1; 2]);
        let report = door.shutdown();
        assert_eq!(report.stats.flushed_events, 7);
        // The control's flush-first step ran on the shard that had the
        // pending pre-control batch (the close flushes account for the
        // rest).
        assert!(report.stats.flushes >= 2);
        for engine in &report.engines {
            assert_eq!(engine.current, 1, "every shard applied the control");
        }
    }

    #[test]
    fn control_after_shutdown_reports_shutdown() {
        let door = parity_door(1, IngestConfig::default());
        let handle = door.handle();
        door.shutdown();
        assert_eq!(
            handle.control(|_engine: &mut SessionMux<Parity, fn() -> Parity>| {}),
            Err(SubmitError::ShutDown)
        );
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Duration::from_micros(1000));
    }
}
